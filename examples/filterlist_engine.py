#!/usr/bin/env python
"""Using the Adblock Plus filter engine standalone, plus an oracle ablation.

The filter-list substrate is a complete ABP network-rule engine; this
example exercises it directly (parsing, matching, options, exceptions) and
then re-runs the study with EasyList only vs EasyPrivacy only vs both —
the oracle composition visibly shifts what counts as "tracking".

Run:  python examples/filterlist_engine.py
"""

from repro.core.pipeline import PipelineConfig, TrackerSiftPipeline
from repro.filterlists.matcher import FilterMatcher
from repro.filterlists.oracle import FilterListOracle
from repro.filterlists.parser import parse_filter_list
from repro.filterlists.rules import RequestContext, ResourceType


def engine_tour() -> None:
    print("=== ABP engine tour ===")
    rules = """\
! a tiny list in real Adblock Plus syntax
||tracker.example^
/adframe/*$subdocument
||cdn.example^$script,third-party
@@||tracker.example/consent^
"""
    parsed = parse_filter_list(rules, name="demo")
    print(f"parsed {len(parsed.rules)} network rules "
          f"({len(parsed.exception_rules)} exception)")
    matcher = FilterMatcher.from_lists(parsed)

    checks = [
        RequestContext("https://sub.tracker.example/a.js"),
        RequestContext("https://tracker.example/consent/v2"),
        RequestContext(
            "https://cdn.example/lib.js",
            resource_type=ResourceType.SCRIPT,
            third_party=True,
        ),
        RequestContext(
            "https://cdn.example/lib.js",
            resource_type=ResourceType.SCRIPT,
            third_party=False,
        ),
        RequestContext(
            "https://pub.example/adframe/x.html",
            resource_type=ResourceType.SUBDOCUMENT,
        ),
    ]
    for context in checks:
        result = matcher.match(context)
        verdict = "BLOCK" if result.blocked else "allow"
        why = result.rule.text if result.rule else "-"
        if result.exception:
            why += f" overridden by {result.exception.text}"
        print(f"  {verdict:5}  {context.url}  ({why})")


def oracle_ablation() -> None:
    print("\n=== Oracle ablation: which list does the labeling? ===")
    from repro.filterlists.lists import load_easylist, load_easyprivacy

    config = PipelineConfig(sites=400, seed=7)
    web = TrackerSiftPipeline(config).generate()

    for name, lists in (
        ("EasyList only", (load_easylist(),)),
        ("EasyPrivacy only", (load_easyprivacy(),)),
        ("EasyList + EasyPrivacy (paper)", (load_easylist(), load_easyprivacy())),
    ):
        pipeline = TrackerSiftPipeline(config, oracle=FilterListOracle(*lists))
        result = pipeline.run(web)
        labeled = result.labeled
        print(
            f"  {name:32} tracking={labeled.tracking_count:6,}  "
            f"functional={labeled.functional_count:6,}  "
            f"final separation={result.report.final_separation:.1%}"
        )
    print("\nA single list misses part of the tracking population, so more")
    print("of it hides inside 'functional' — the paper combines both.")


if __name__ == "__main__":
    engine_tour()
    oracle_ablation()
