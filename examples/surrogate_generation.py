#!/usr/bin/env python
"""Automatic surrogate-script generation, end to end (paper §5 and §7).

"TrackerSift can help scale up the process of generating surrogate scripts
by automatically detecting and removing tracking methods in mixed scripts."

This example runs the full chain on real study output:

1. run the measurement study;
2. pick a mixed script the sift found;
3. render its JavaScript source;
4. generate the surrogate source (tracking methods stubbed);
5. statically verify the surrogate (no network calls left in stubs);
6. dynamically validate it (replay the page: tracking gone, page works);
7. emit the deployable filter-list recommendation.

Run:  python examples/surrogate_generation.py
"""

from repro.core.classifier import ResourceClass
from repro.core.pipeline import PipelineConfig, TrackerSiftPipeline
from repro.core.rulegen import generate_recommendation
from repro.core.surrogate import generate_surrogate, validate_surrogate
from repro.jsgen import (
    analyze_source,
    generate_surrogate_source,
    script_to_source,
    verify_surrogate_source,
)


def main() -> None:
    print("Running the study ...")
    result = TrackerSiftPipeline(PipelineConfig(sites=600, seed=7)).run()

    mixed_urls = {
        key
        for key, res in result.report.script.resources.items()
        if res.resource_class is ResourceClass.MIXED
    }
    site, script = next(
        (site, script)
        for site in result.web.websites
        for script in site.scripts
        if script.url in mixed_urls
        and not generate_surrogate(script, result.report).is_noop
    )
    name = script.url.rsplit("/", 1)[-1]
    print(f"\nMixed script under repair: {name} on {site.url}")

    surrogate = generate_surrogate(script, result.report)
    print(f"  methods to remove: {surrogate.removed_methods}")
    print(f"  methods to keep:   {surrogate.kept_methods}")

    source = script_to_source(script)
    original_analysis = analyze_source(source)
    print(f"\nOriginal source: {len(source.splitlines())} lines, "
          f"{len(original_analysis.all_network_urls())} network call sites")

    shim = generate_surrogate_source(source, surrogate.removed_methods)
    assert shim.complete
    verified = verify_surrogate_source(shim, original_analysis)
    print(f"Surrogate source: stubbed {shim.stubbed}; static verification: "
          f"{'PASS' if verified else 'FAIL'}")
    print("\n--- surrogate file (first 25 lines) ---")
    print("\n".join(shim.source.splitlines()[:25]))
    print("--- end ---")

    outcome = validate_surrogate(site, script, surrogate)
    print(
        f"\nDynamic validation: tracking removed={outcome.tracking_removed}, "
        f"functional removed={outcome.functional_removed}, "
        f"breakage={outcome.breakage.value}"
    )

    rec = generate_recommendation(result.report)
    print(
        f"\nDeployable recommendation from this crawl: "
        f"{len(rec.domain_rules)} domain rules, "
        f"{len(rec.hostname_rules)} hostname rules, "
        f"{len(rec.script_rules)} script rules, "
        f"{len(rec.surrogates)} surrogate directives"
    )
    print("\nFilter-list preview:")
    print("\n".join(rec.to_filter_list().splitlines()[:12]))


if __name__ == "__main__":
    main()
