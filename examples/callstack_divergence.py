#!/usr/bin/env python
"""Figure 5 walk-through: call-stack analysis of a mixed method.

First reproduces the paper's exact example (``clone.js@m2()`` initiating
``ads-2`` and ``nonads-2``), then runs the divergence search over every
residual mixed method of a real study and summarises how many are
separable by removing an upstream tracking-only caller.

Run:  python examples/callstack_divergence.py
"""

from repro.core.callstack_analysis import analyze_mixed_method
from repro.core.classifier import ResourceClass
from repro.core.pipeline import PipelineConfig, TrackerSiftPipeline
from repro.filterlists.oracle import Label
from repro.labeling.labeler import AnalyzedRequest

CLONE = "https://test.com/clone.js"
TRACK = "https://ads.com/track.js"
USER = "https://test.com/user.js"
GET = "https://test.com/get.js"


def paper_example() -> None:
    print("=== The paper's Figure 5 example ===")

    def request(url, frames, tracking):
        return AnalyzedRequest(
            url=url,
            label=Label.TRACKING if tracking else Label.FUNCTIONAL,
            domain="google.com",
            hostname="cdn.google.com",
            script=frames[0][0],
            method=frames[0][1],
            page="https://test.com/",
            resource_type="script",
            ancestry=tuple(dict.fromkeys(f[0] for f in frames)),
            frames=tuple(frames),
        )

    requests = [
        request("https://cdn.google.com/ads-2", [(CLONE, "m2"), (TRACK, "t")], True),
        request(
            "https://cdn.google.com/nonads-2",
            [(CLONE, "m2"), (USER, "k"), (GET, "a")],
            False,
        ),
    ]
    result = analyze_mixed_method(requests, CLONE, "m2")
    graph = result.graph
    print(f"  traces merged: {graph.tracking_traces} tracking, "
          f"{graph.functional_traces} functional")
    for node in sorted(graph.nodes):
        t, f = graph.participation(node)
        colour = "yellow" if t and f else ("red" if t else "green")
        print(f"  node {node[0].rsplit('/', 1)[-1]}@{node[1]}(): "
              f"T={t} F={f} [{colour}]")
    script, method = result.point_of_divergence
    print(f"  point of divergence: {script.rsplit('/', 1)[-1]}@{method}() "
          "(paper: track.js t)")
    print("  removing it breaks the chain that invokes the tracking request\n")


def study_wide() -> None:
    print("=== Divergence search over a real study's residual mixed methods ===")
    result = TrackerSiftPipeline(PipelineConfig(sites=600, seed=7)).run()
    mixed_keys = [
        key
        for key, res in result.report.method.resources.items()
        if res.resource_class is ResourceClass.MIXED
    ]
    print(f"  residual mixed methods: {len(mixed_keys)}")
    separable = []
    for key in mixed_keys:
        script, _, method = key.rpartition("@")
        analysis = analyze_mixed_method(result.labeled.requests, script, method)
        if analysis.separable:
            separable.append(analysis)
    print(f"  separable via an upstream tracking-only caller: "
          f"{len(separable)} ({len(separable) / len(mixed_keys):.0%})")
    for analysis in separable[:5]:
        script, method = analysis.method
        div_script, div_method = analysis.point_of_divergence
        print(
            f"    {script.rsplit('/', 1)[-1]}@{method}() -> remove "
            f"{div_script.rsplit('/', 1)[-1]}@{div_method}()"
        )


if __name__ == "__main__":
    paper_example()
    study_wide()
