#!/usr/bin/env python
"""Breakage analysis (paper §5, Table 3) plus the blocking-strategy ladder.

Runs the treatment/control comparison on a sample of sites that host
TrackerSift-classified mixed scripts, then contrasts three blocking
strategies on the same sites:

* **block the script**  — what a filter rule does today,
* **surrogate script**  — remove only the tracking methods,
* **guards**            — veto only tracking *invocations* of mixed methods.

Run:  python examples/breakage_analysis.py
"""

from repro.analysis.report import render_table3
from repro.analysis.tables import build_table3
from repro.browser.breakage import BreakageLevel, assess_breakage
from repro.core.classifier import ResourceClass
from repro.core.guards import collect_observations, evaluate_guard, infer_guard
from repro.core.pipeline import PipelineConfig, TrackerSiftPipeline
from repro.core.surrogate import generate_surrogate, validate_surrogate
from repro.webmodel.resources import Category


def main() -> None:
    config = PipelineConfig(sites=800, seed=11)
    print(f"Running the study on {config.sites} sites ...")
    result = TrackerSiftPipeline(config).run()

    print("\nTable 3 — blocking mixed scripts on 10 random sites:")
    rows = build_table3(result.web, result.report, sample_size=10, seed=2021)
    print(render_table3(rows))
    broken = sum(1 for r in rows if r.breakage != "None")
    print(f"{broken}/10 sites break (paper: 9/10) — mixed scripts cannot be"
          " safely blocked.\n")

    print("=== Strategy comparison on the same mixed scripts ===")
    mixed_urls = {
        key
        for key, res in result.report.script.resources.items()
        if res.resource_class is ResourceClass.MIXED
    }
    cases = [
        (site, script)
        for site in result.web.websites
        for script in site.scripts
        if script.url in mixed_urls
    ][:20]

    block_breaks = surrogate_breaks = 0
    tracking_via_surrogate = 0
    for site, script in cases:
        block_breaks += (
            assess_breakage(site, frozenset({script.url})).level
            is not BreakageLevel.NONE
        )
        surrogate = generate_surrogate(script, result.report)
        outcome = validate_surrogate(site, script, surrogate)
        surrogate_breaks += outcome.breakage is not BreakageLevel.NONE
        tracking_via_surrogate += outcome.tracking_removed

    print(f"  sites analysed:                  {len(cases)}")
    print(f"  broken by blocking the script:   {block_breaks}/{len(cases)}")
    print(f"  broken by installing surrogates: {surrogate_breaks}/{len(cases)}")
    print(f"  tracking requests surrogates removed: {tracking_via_surrogate}")

    print("\n=== Guards for residual mixed methods ===")
    shown = 0
    for script in result.web.scripts:
        for method in script.methods:
            if method.category is not Category.MIXED or len(method.invocations) < 8:
                continue
            observations = collect_observations(result.web, script.url, method.name)
            guard = infer_guard(script.url, method.name, observations)
            if guard.vacuous:
                continue
            evaluation = evaluate_guard(guard, observations)
            name = script.url.rsplit("/", 1)[-1]
            print(
                f"  {name}@{method.name}(): invariant keys="
                f"{sorted(guard.arg_invariants)} "
                f"precision={evaluation.precision:.0%} "
                f"recall={evaluation.recall:.0%}"
            )
            shown += 1
            if shown >= 5:
                break
        if shown >= 5:
            break


if __name__ == "__main__":
    main()
