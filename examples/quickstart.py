#!/usr/bin/env python
"""Quickstart: run the TrackerSift study end to end at a small scale.

This is the paper's whole pipeline in five steps — generate a calibrated
synthetic web (the 100K-crawl stand-in), crawl it with the instrumented
browser cluster, label every script-initiated request with the
EasyList/EasyPrivacy oracle, sift hierarchically, and print the paper's
Tables 1-2 plus the Figure 1 walk-through for one real mixed chain.

The batch pipeline below materializes every stage.  The same study also
runs through the streaming engine, which shards the crawl, labels through
a memoized oracle, never materializes the request database, and can
checkpoint/resume per shard — and fan the shards out to parallel worker
processes, with results identical for every worker count::

    from repro import PipelineConfig, StreamingPipeline

    engine = StreamingPipeline(
        PipelineConfig(sites=2_000, seed=7),
        shards=13,                       # any count; results are identical
        workers=4,                       # crawl shards on 4 processes
        checkpoint_dir="checkpoints/",   # optional: resumable per shard
    )
    result = engine.run()
    print(f"separation {result.report.final_separation:.1%}, "
          f"label cache hit rate {result.notes['label_cache_hit_rate']:.1%}")

(or on the command line: ``trackersift sift --streaming --shards 13
--workers 4``).  This script demonstrates both doors and checks they
agree — including a parallel run.

The study's oracle also deploys as a long-lived **online service**
(``trackersift serve --port 8377 --threads 8``): blocking decisions over
a threaded JSON API, answered from an atomically swappable snapshot that
hot-reloads new list versions without dropping a request::

    curl -s -X POST localhost:8377/v1/decide \
        -d '{"url": "https://doubleclick.net/pixel.gif"}'
    curl -s -X POST localhost:8377/v1/reload \
        -d '{"lists": [{"name": "hotfix", "text": "||evil.example^"}]}'
    curl -s localhost:8377/metrics

At deployment scale the same oracle serves from N processes sharing one
memory-mapped compiled image (``trackersift compile --out
rules.tsoracle`` then ``trackersift serve --workers 4 --artifact
rules.tsoracle``): each forked worker runs an asyncio server on the
shared port (``SO_REUSEPORT`` where available, an inherited listening
socket otherwise), reloads are coordinated across the whole fleet by
the supervisor (``SIGHUP``), and an extra worker costs a thin private
skeleton rather than another oracle copy.

The tail of this script runs the same loops in-process: start a server
on an ephemeral port, decide, hot-reload a hotfix rule, decide again —
then a 2-worker supervisor over a compiled artifact, with a coordinated
reload and merged cross-worker metrics.

Run:  python examples/quickstart.py
"""

from repro.analysis.report import render_table1, render_table2
from repro.analysis.tables import build_table1, build_table2
from repro.core.classifier import ResourceClass
from repro.core.engine import StreamingPipeline
from repro.core.pipeline import PipelineConfig, TrackerSiftPipeline


def main() -> None:
    config = PipelineConfig(sites=500, seed=7)
    print(f"Running TrackerSift on {config.sites} synthetic landing pages ...")
    result = TrackerSiftPipeline(config).run()

    print(
        f"\nCrawled {result.pages_crawled} pages, captured "
        f"{len(result.database):,} events, labeled "
        f"{result.total_script_requests:,} script-initiated requests "
        f"({result.labeled.excluded_non_script:,} non-script requests excluded)."
    )

    print("\nTable 1 — requests classified at each granularity:")
    print(render_table1(build_table1(result.report)))

    print("\nTable 2 — unique resources classified at each granularity:")
    print(render_table2(build_table2(result.report)))

    print(
        f"\nFinal separation factor: {result.report.final_separation:.1%} "
        "(paper: 98%)"
    )

    # The same study through the streaming engine: sharded, memoized,
    # nothing materialized — and the report is identical by construction.
    streamed = StreamingPipeline(config, shards=13).run(result.web)
    assert streamed.report.summary() == result.report.summary()
    print(
        f"\nStreaming engine agrees across 13 shards; label cache: "
        f"{int(streamed.notes['label_cache_hits']):,} hits / "
        f"{int(streamed.notes['label_cache_misses']):,} misses "
        f"({streamed.notes['label_cache_hit_rate']:.1%} hit rate)"
    )

    # And once more with parallel shard workers: each worker crawls,
    # labels and accumulates its shards in its own process, the parent
    # merges — the report stays identical for every worker count.
    parallel = StreamingPipeline(config, shards=13, workers=2).run(result.web)
    assert parallel.report.summary() == result.report.summary()
    print(
        f"Parallel engine agrees across {int(parallel.notes['workers'])} "
        f"workers x 13 shards."
    )

    # Figure 1, on live data: follow one mixed domain down the hierarchy.
    report = result.report
    mixed_domain = next(iter(sorted(report.domain.mixed_keys())))
    domain_result = report.domain.resources[mixed_domain]
    print(f"\nFigure 1 walk-through for mixed domain {mixed_domain!r}:")
    print(
        f"  domain   {mixed_domain}: T={domain_result.counts.tracking} "
        f"F={domain_result.counts.functional} -> {domain_result.resource_class.value}"
    )
    hosts = [
        h for h in report.hostname.resources.values()
        if h.key == mixed_domain or h.key.endswith("." + mixed_domain)
    ]
    for host in hosts[:4]:
        print(
            f"  hostname {host.key}: T={host.counts.tracking} "
            f"F={host.counts.functional} -> {host.resource_class.value}"
        )
    mixed_hosts = [h.key for h in hosts if h.resource_class is ResourceClass.MIXED]
    if mixed_hosts:
        scripts = {
            r.script
            for r in result.labeled.requests
            if r.hostname in set(mixed_hosts)
        }
        for script in sorted(scripts)[:3]:
            res = report.script.resources.get(script)
            if res is None:
                continue
            name = script.rsplit("/", 1)[-1]
            print(
                f"  script   {name}: T={res.counts.tracking} "
                f"F={res.counts.functional} -> {res.resource_class.value}"
            )

    # The oracle, served online: decide over HTTP, hot-reload a hotfix
    # list, and watch the snapshot revision advance — in-flight requests
    # always finish on the snapshot they started with.
    from repro.serve import BlockingClient, BlockingServer

    with BlockingServer(port=0, threads=4) as server:
        client = BlockingClient(server.host, server.port)
        decision = client.decide("https://doubleclick.net/pixel/42.gif")
        print(
            f"\nServing on {server.url}: {decision['url']} -> "
            f"{decision['label']} (rule {decision['matched_rule']}, "
            f"snapshot revision {decision['revision']})"
        )
        assert not client.decide("https://cdn.flaky.example/app.js")["blocked"]
        report = client.reload(lists=[("hotfix", "||cdn.flaky.example^\n")])
        print(
            f"Hot reload -> revision {report['revision']}, rule churn "
            f"{report['churn']['summary']}"
        )
        assert client.decide("https://cdn.flaky.example/app.js")["blocked"]
        metrics = client.metrics()
        print(
            f"Metrics: {metrics['decisions']['served']} decisions served, "
            f"cache hit rate {metrics['cache']['hit_rate']:.0%}, "
            f"p99 latency {metrics['latency']['p99_ms']:.3f} ms"
        )
        client.close()

    # Deployment scale: compile the oracle once, fork 2 asyncio workers
    # over the memory-mapped image, reload the whole fleet in one
    # coordinated swap, and read the merged cross-worker metrics.
    import tempfile
    from pathlib import Path

    from repro.filterlists.compile import compile_lists
    from repro.filterlists.parser import parse_filter_list
    from repro.serve import ServeSupervisor
    from repro.serve.service import default_lists

    with tempfile.TemporaryDirectory(prefix="trackersift-quickstart-") as tmp:
        boot = Path(tmp) / "rules.tsoracle"
        compile_lists(boot, *default_lists())
        hotfix = Path(tmp) / "hotfix.tsoracle"
        compile_lists(
            hotfix,
            *default_lists(),
            parse_filter_list("||cdn.flaky.example^\n", name="hotfix"),
        )
        supervisor = ServeSupervisor(boot, workers=2).start()
        try:
            client = BlockingClient(supervisor.host, supervisor.port)
            decision = client.decide("https://doubleclick.net/pixel.gif")
            print(
                f"\n2 workers on :{supervisor.port} "
                f"({supervisor.strategy}): worker {decision['worker']} -> "
                f"{decision['label']} at revision {decision['revision']}"
            )
            report = supervisor.reload(hotfix)
            print(
                f"Coordinated reload -> revision {report['revision']} "
                f"acknowledged by {len(report['workers'])} workers"
            )
            assert client.decide("https://cdn.flaky.example/app.js")["blocked"]
            merged = supervisor.metrics()
            print(
                f"Merged metrics: pids {sorted(merged['worker_pids'])}, "
                f"revision_consistent={merged['revision_consistent']}"
            )
            client.close()
        finally:
            codes = supervisor.shutdown()
        assert codes == [0, 0], codes

    # Every execution path above (batch, streaming, fan-out, compiled
    # artifacts, the service) must produce the same decisions on *any*
    # workload — the scenario conformance matrix proves it per named
    # pack (cloaking, churn storms, token drift, ...), pinned by the
    # committed golden manifests.  `trackersift scenario run --matrix`
    # runs everything; one pack here keeps the demo quick.
    from repro.scenarios import ScenarioRunner

    outcome = ScenarioRunner().run("tiny-and-huge-mix")
    assert outcome.ok, outcome.problems()
    print(
        f"\nScenario 'tiny-and-huge-mix': {len(outcome.paths)} execution "
        f"paths, {outcome.labeled_requests:,} labeled requests — "
        "byte-identical across every path (golden-pinned)"
    )


if __name__ == "__main__":
    main()
