#!/usr/bin/env python
"""Circumvention case study: script inlining and bundling (paper §5).

Builds the paper's two motivating scenarios by hand and shows why script-
level blocking fails on them while TrackerSift's method level succeeds:

1. **Inlining** — a Facebook-pixel-style tracking snippet is inlined into
   the publisher's page, so its initiator URL *is* the page.  Blocking
   that "script" means blocking the page's own inline code.
2. **Bundling** — a webpack bundle (the paper's pressl.co example:
   ``app.9115af433836fd824ec7.js``) intertwines the pixel with first-party
   functional code in one URL.  The bundle classifies as mixed; its
   methods still separate cleanly.

Run:  python examples/circumvention_study.py
"""

import random

from repro.browser.engine import BrowserEngine
from repro.core.hierarchy import sift_requests
from repro.core.surrogate import generate_surrogate, validate_surrogate
from repro.crawler.storage import RequestDatabase
from repro.labeling.labeler import RequestLabeler
from repro.webmodel.bundler import bundle_scripts, inline_script
from repro.webmodel.resources import (
    Category,
    Frame,
    Invocation,
    MethodSpec,
    PlannedRequest,
    ScriptSpec,
)
from repro.webmodel.website import Functionality, FunctionalityTier, Website

PAGE = "https://pressl.co/"


def tracking_method(name: str, count: int) -> MethodSpec:
    return MethodSpec(
        name=name,
        category=Category.TRACKING,
        invocations=[
            Invocation(
                site=PAGE,
                requests=[
                    PlannedRequest(
                        url=f"https://i0.wp.com/pixel/{i}.gif",
                        tracking=True,
                        resource_type="image",
                    )
                ],
                caller_chain=(Frame(f"{PAGE}#inline-0", "main"),),
                args={"event": "imp", "dest": "i0.wp.com"},
            )
            for i in range(count)
        ],
    )


def functional_method(name: str, count: int) -> MethodSpec:
    return MethodSpec(
        name=name,
        category=Category.FUNCTIONAL,
        invocations=[
            Invocation(
                site=PAGE,
                requests=[
                    PlannedRequest(
                        url=f"https://i0.wp.com/img/photo-{i}.jpg",
                        tracking=False,
                        resource_type="image",
                    )
                ],
                caller_chain=(Frame(f"{PAGE}#inline-0", "main"),),
                args={"event": "load", "dest": "i0.wp.com"},
            )
            for i in range(count)
        ],
    )


def classify_page(website: Website) -> None:
    page = BrowserEngine().load(website)
    database = RequestDatabase.from_events(page.requests, page.responses)
    labeled = RequestLabeler().label_crawl(database)
    report = sift_requests(labeled.requests)
    print(f"  script-initiated requests: {len(labeled.requests)}")
    for key, result in report.script.resources.items():
        name = key.rsplit("/", 1)[-1] if "#" not in key else key
        print(
            f"  script {name}: T={result.counts.tracking} "
            f"F={result.counts.functional} -> {result.resource_class.value}"
        )
    if report.levels[-1].granularity == "method":
        for key, result in report.method.resources.items():
            print(
                f"    method {key.split('@')[-1]}(): "
                f"T={result.counts.tracking} F={result.counts.functional} "
                f"-> {result.resource_class.value}"
            )
    return report


def main() -> None:
    pixel = ScriptSpec(
        url="https://connect.facebook.net/fbevents.js",
        category=Category.TRACKING,
        methods=[tracking_method("pxl", 6)],
        sites=[PAGE],
    )
    app = ScriptSpec(
        url=f"{PAGE}assets/app-src.js",
        category=Category.FUNCTIONAL,
        methods=[functional_method("render", 6)],
        sites=[PAGE],
    )

    print("=== Scenario 1: separate external scripts (easy case) ===")
    site = Website(url=PAGE, rank=1, scripts=[pixel, app])
    classify_page(site)
    print("Script-level blocking works here: fbevents.js is purely tracking.\n")

    print("=== Scenario 2: the pixel is INLINED into the page ===")
    inlined_pixel = inline_script(pixel, PAGE, index=1)
    site = Website(url=PAGE, rank=1, scripts=[inlined_pixel, app])
    classify_page(site)
    print(
        "The tracking 'script' is now the page itself "
        f"({inlined_pixel.url}) — a filter rule against it would block "
        "first-party code.\n"
    )

    print("=== Scenario 3: pixel BUNDLED with functional code (pressl.co) ===")
    bundle = bundle_scripts(
        [pixel, app],
        f"{PAGE}assets/app.9115af433836fd824ec7.js",
        site=PAGE,
        rng=random.Random(0),
    )
    site = Website(url=PAGE, rank=1, scripts=[bundle])
    site.functionalities = [
        Functionality(
            name="images",
            tier=FunctionalityTier.CORE,
            required_methods=frozenset({(bundle.url, "render")}),
        )
    ]
    report = classify_page(site)
    print(
        "The bundle is MIXED at script level — blocking it breaks the "
        "page; not blocking it lets the pixel through."
    )

    print("\n=== TrackerSift's way out: a surrogate for the bundle ===")
    surrogate = generate_surrogate(bundle, report)
    print(f"  removed methods: {surrogate.removed_methods}")
    print(f"  kept methods:    {surrogate.kept_methods}")
    outcome = validate_surrogate(site, bundle, surrogate)
    print(
        f"  replay: tracking removed={outcome.tracking_removed}, "
        f"functional removed={outcome.functional_removed}, "
        f"breakage={outcome.breakage.value}"
    )
    assert outcome.safe, "surrogate should be collateral-free here"
    print("  -> the pixel is gone, the page still renders.")


if __name__ == "__main__":
    main()
