"""Memoized filter-match decisions — the labeling hot path, cached.

A study-scale crawl labels every script-initiated request by consulting
the ABP matcher, and the same third-party resources recur across
thousands of sites (the paper's premise: trackers are *shared*
infrastructure).  The raw matcher re-runs its regex candidates for every
occurrence; this module adds a decision cache in front of
:meth:`FilterMatcher.match` so each distinct request shape is decided
once.

Correctness before speed: the cache key covers **every** context field the
rules can read —

* the request URL (pattern matching),
* the resource type (``$script`` / ``$image`` … options),
* the third-party bit (``$third-party`` and its negation),
* the page host, *only when* some loaded rule carries ``domain=`` options
  (:attr:`FilterMatcher.domain_sensitive`).  Without such rules the
  decision provably never reads the page host, and dropping it from the
  key is what turns "script X on site k" into a cross-site cache hit.

``tests/test_filterlists_cache_properties.py`` holds the Hypothesis proof
obligation: over randomized rule sets (including ``domain=`` rules) and
randomized request contexts, the cached matcher is observationally
equivalent to the uncached one.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from .matcher import FilterMatcher, MatchResult
from .rules import RequestContext

__all__ = ["CacheStats", "CachedMatcher", "normalize_url_key"]

_DIGIT_RUN_RE = re.compile(r"[0-9]+")


def normalize_url_key(url: str) -> str:
    """Collapse digit runs in the path/query to a canonical ``0``.

    ``https://cdn.example/pixel/207.gif?uid=93`` and
    ``https://cdn.example/pixel/501.gif?uid=11`` normalize to the same
    key, turning per-occurrence URLs (cache-busting counters, session ids)
    into one decision.  The authority is left untouched — rule host
    anchors live there — and callers must first establish, via
    :meth:`FilterMatcher.digit_runs_irrelevant_for`, that no loaded rule
    can tell the collapsed URLs apart.
    """
    scheme_end = url.find("://")
    if scheme_end < 0:
        # No scheme — the authority (if any, e.g. scheme-relative ``//h``)
        # cannot be located reliably, so never rewrite: collapsing host
        # digits would merge decisions across different hosts.
        return url
    path_start = url.find("/", scheme_end + 3)
    if path_start < 0:
        return url
    return url[:path_start] + _DIGIT_RUN_RE.sub("0", url[path_start:])


@dataclass
class CacheStats:
    """Hit/miss accounting, surfaced in ``PipelineResult.notes``."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups


class CachedMatcher:
    """A :class:`FilterMatcher` front-end that memoizes match decisions.

    Exposes the matcher's full query interface (``match`` /
    ``should_block`` / ``should_block_url`` plus introspection), so it can
    stand in anywhere a matcher is consulted.  Rule additions through the
    *wrapped* matcher are detected via :attr:`FilterMatcher.revision` and
    invalidate the cache on the next lookup; :meth:`add_list` /
    :meth:`add_rules` here invalidate immediately.
    """

    def __init__(self, matcher: FilterMatcher, *, max_entries: int = 1_000_000) -> None:
        self._matcher = matcher
        self._max_entries = max_entries
        self._decisions: dict[tuple, MatchResult] = {}
        self._revision = matcher.revision
        self.stats = CacheStats()

    # -- construction pass-throughs (cache-invalidating) -------------------
    def add_list(self, parsed) -> None:
        self._matcher.add_list(parsed)
        self._revision = self._matcher.revision
        self.clear()

    def add_rules(self, rules) -> None:
        self._matcher.add_rules(rules)
        self._revision = self._matcher.revision
        self.clear()

    def clear(self) -> None:
        self._decisions.clear()

    # -- introspection ------------------------------------------------------
    @property
    def wrapped(self) -> FilterMatcher:
        return self._matcher

    @property
    def list_names(self) -> tuple[str, ...]:
        return self._matcher.list_names

    @property
    def rule_count(self) -> int:
        return self._matcher.rule_count

    @property
    def domain_sensitive(self) -> bool:
        return self._matcher.domain_sensitive

    def __len__(self) -> int:
        return len(self._decisions)

    # -- matching ------------------------------------------------------------
    def _key(self, context: RequestContext) -> tuple:
        url = context.url
        if self._matcher.digit_runs_irrelevant_for(url):
            url = normalize_url_key(url)
        # The page host participates in the decision only through
        # ``domain=`` options; leaving it out otherwise is what makes the
        # same resource a hit across every site that loads it.
        if self._matcher.domain_sensitive:
            return (url, context.resource_type, context.third_party, context.page_host)
        return (url, context.resource_type, context.third_party)

    def match(self, context: RequestContext) -> MatchResult:
        if self._matcher.revision != self._revision:
            # The wrapped matcher gained rules behind our back; decisions
            # made under the old rule set must not survive.
            self.clear()
            self._revision = self._matcher.revision
        key = self._key(context)
        cached = self._decisions.get(key)
        if cached is not None:
            self.stats.hits += 1
            return cached
        result = self._matcher.match(context)
        if len(self._decisions) < self._max_entries:
            self._decisions[key] = result
        self.stats.misses += 1
        return result

    def should_block(self, context: RequestContext) -> bool:
        return self.match(context).blocked

    def should_block_url(self, url: str) -> bool:
        return self.match(RequestContext(url=url)).blocked
