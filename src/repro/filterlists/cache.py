"""Memoized filter-match decisions — the labeling hot path, cached.

A study-scale crawl labels every script-initiated request by consulting
the ABP matcher, and the same third-party resources recur across
thousands of sites (the paper's premise: trackers are *shared*
infrastructure).  The raw matcher re-runs its regex candidates for every
occurrence; this module adds a decision cache in front of
:meth:`FilterMatcher.match` so each distinct request shape is decided
once.

Correctness before speed: the cache key covers **every** context field the
rules can read —

* the request URL (pattern matching),
* the resource type (``$script`` / ``$image`` … options),
* the third-party bit (``$third-party`` and its negation),
* the page host, *only when* some loaded rule carries ``domain=`` options
  (:attr:`FilterMatcher.domain_sensitive`).  Without such rules the
  decision provably never reads the page host, and dropping it from the
  key is what turns "script X on site k" into a cross-site cache hit.

``tests/test_filterlists_cache_properties.py`` holds the Hypothesis proof
obligation: over randomized rule sets (including ``domain=`` rules) and
randomized request contexts, the cached matcher is observationally
equivalent to the uncached one.

**Thread safety.**  The cache is shared across server threads by the
online blocking service (:mod:`repro.serve`), so the decision store and
its counters live in :class:`DecisionCache`, which serializes every
compound operation on one lock.  The wrapped
:class:`~repro.filterlists.matcher.FilterMatcher` itself is safe for
concurrent *reads*: matching only reads the indexes, and the lazy
per-rule regex compilation is an idempotent publish (two racing threads
compile the same pattern and one result wins).  Concurrent rule
*additions* are serialized against the cache — a decision computed under
an older rule set is never inserted after the rules changed
(``tests/test_filterlists_cache_concurrency.py`` stresses both claims).
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass

from .matcher import FilterMatcher, MatchResult
from .rules import RequestContext

__all__ = ["CacheStats", "DecisionCache", "CachedMatcher", "normalize_url_key"]

_DIGIT_RUN_RE = re.compile(r"[0-9]+")


def normalize_url_key(url: str) -> str:
    """Collapse digit runs in the path/query to a canonical ``0``.

    ``https://cdn.example/pixel/207.gif?uid=93`` and
    ``https://cdn.example/pixel/501.gif?uid=11`` normalize to the same
    key, turning per-occurrence URLs (cache-busting counters, session ids)
    into one decision.  The authority is left untouched — rule host
    anchors live there — and callers must first establish, via
    :meth:`FilterMatcher.digit_runs_irrelevant_for`, that no loaded rule
    can tell the collapsed URLs apart.
    """
    scheme_end = url.find("://")
    if scheme_end < 0:
        # No scheme — the authority (if any, e.g. scheme-relative ``//h``)
        # cannot be located reliably, so never rewrite: collapsing host
        # digits would merge decisions across different hosts.
        return url
    path_start = url.find("/", scheme_end + 3)
    if path_start < 0:
        return url
    return url[:path_start] + _DIGIT_RUN_RE.sub("0", url[path_start:])


@dataclass
class CacheStats:
    """Hit/miss accounting, surfaced in ``PipelineResult.notes``."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups


class DecisionCache:
    """Thread-safe store of memoized match decisions plus counters.

    One re-entrant lock guards the entry dict and the
    :class:`CacheStats` counters, so concurrent server threads can never
    lose an increment or observe a half-applied invalidation.  Callers
    needing a compound read-modify-write (e.g. :class:`CachedMatcher`'s
    revision-guarded lookup) hold :attr:`lock` around the whole sequence;
    the re-entrant lock makes the individual operations nest freely.
    """

    __slots__ = ("lock", "stats", "_entries", "_max_entries")

    def __init__(self, max_entries: int = 1_000_000) -> None:
        self.lock = threading.RLock()
        self.stats = CacheStats()
        self._entries: dict[tuple, MatchResult] = {}
        self._max_entries = max_entries

    @property
    def max_entries(self) -> int:
        return self._max_entries

    def __getstate__(self) -> dict:
        # Locks cannot cross process boundaries, but warm caches must: the
        # parallel shard workers (core/parallel.py) ship a cached oracle to
        # each worker via pickle.  Snapshot the entries under the lock and
        # rebuild a fresh lock on the other side.
        with self.lock:
            return {
                "stats": CacheStats(self.stats.hits, self.stats.misses),
                "entries": dict(self._entries),
                "max_entries": self._max_entries,
            }

    def __setstate__(self, state: dict) -> None:
        self.lock = threading.RLock()
        self.stats = state["stats"]
        self._entries = state["entries"]
        self._max_entries = state["max_entries"]

    def lookup(self, key: tuple) -> MatchResult | None:
        """The cached decision for ``key`` (counted as a hit), or ``None``."""
        with self.lock:
            result = self._entries.get(key)
            if result is not None:
                self.stats.hits += 1
            return result

    def store(self, key: tuple, result: MatchResult, *, insert: bool = True) -> bool:
        """Count a miss; insert the decision unless ``insert`` is False
        (the caller observed a concurrent rule change) or the cache is
        full.  Returns whether the entry was actually inserted, so batch
        callers can tell a memoized decision from a merely served one."""
        with self.lock:
            self.stats.misses += 1
            if insert and len(self._entries) < self._max_entries:
                self._entries[key] = result
                return True
            return False

    def clear(self) -> None:
        with self.lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self.lock:
            return len(self._entries)


class CachedMatcher:
    """A :class:`FilterMatcher` front-end that memoizes match decisions.

    Exposes the matcher's full query interface (``match`` /
    ``should_block`` / ``should_block_url`` plus introspection), so it can
    stand in anywhere a matcher is consulted.  Rule additions through the
    *wrapped* matcher are detected via :attr:`FilterMatcher.revision` and
    invalidate the cache on the next lookup; :meth:`add_list` /
    :meth:`add_rules` here invalidate immediately.

    Safe to share across threads: the decision store is a
    :class:`DecisionCache`, underlying matches run outside its lock (reads
    of the wrapped matcher are concurrency-safe), and a decision computed
    concurrently with a rule change is served but never cached.
    """

    def __init__(self, matcher: FilterMatcher, *, max_entries: int = 1_000_000) -> None:
        self._matcher = matcher
        self._cache = DecisionCache(max_entries=max_entries)
        self._revision = matcher.revision

    # -- construction pass-throughs (cache-invalidating) -------------------
    def add_list(self, parsed) -> None:
        with self._cache.lock:
            self._matcher.add_list(parsed)
            self._revision = self._matcher.revision
            self._cache.clear()

    def add_rules(self, rules) -> None:
        with self._cache.lock:
            self._matcher.add_rules(rules)
            self._revision = self._matcher.revision
            self._cache.clear()

    def clear(self) -> None:
        self._cache.clear()

    # -- introspection ------------------------------------------------------
    @property
    def stats(self) -> CacheStats:
        return self._cache.stats

    @property
    def decision_cache(self) -> DecisionCache:
        return self._cache

    @property
    def wrapped(self) -> FilterMatcher:
        return self._matcher

    @property
    def list_names(self) -> tuple[str, ...]:
        return self._matcher.list_names

    @property
    def rule_count(self) -> int:
        return self._matcher.rule_count

    @property
    def domain_sensitive(self) -> bool:
        return self._matcher.domain_sensitive

    @property
    def unsupported_counts(self) -> dict[str, int]:
        return self._matcher.unsupported_counts

    @property
    def unsupported_rule_count(self) -> int:
        return self._matcher.unsupported_rule_count

    def __len__(self) -> int:
        return len(self._cache)

    # -- matching ------------------------------------------------------------
    def _key(self, context: RequestContext) -> tuple:
        url = context.url
        if self._matcher.digit_runs_irrelevant_for(url):
            url = normalize_url_key(url)
        # The page host participates in the decision only through
        # ``domain=`` options; leaving it out otherwise is what makes the
        # same resource a hit across every site that loads it.
        if self._matcher.domain_sensitive:
            return (url, context.resource_type, context.third_party, context.page_host)
        return (url, context.resource_type, context.third_party)

    def match(self, context: RequestContext) -> MatchResult:
        cache = self._cache
        with cache.lock:
            if self._matcher.revision != self._revision:
                # The wrapped matcher gained rules behind our back;
                # decisions made under the old rule set must not survive.
                cache.clear()
                self._revision = self._matcher.revision
            # The key derives from matcher state (digit-run safety, domain
            # sensitivity), so it is computed under the same lock that
            # synchronized the revision — a key built against stale rules
            # could alias decisions across rule sets.
            revision = self._revision
            key = self._key(context)
            cached = cache.lookup(key)
        if cached is not None:
            return cached
        result = self._matcher.match(context)
        # Insert only when no rule change raced the match; every clear and
        # insert runs under the cache lock, so a stale decision can never
        # land after the invalidating clear.
        with cache.lock:
            cache.store(key, result, insert=self._matcher.revision == revision)
        return result

    def match_many(self, contexts) -> list[MatchResult]:
        """Batch :meth:`match`: one result per context, same order.

        One lock acquisition covers the whole batch (versus two per
        decision when looping :meth:`match`), which is where the batch
        path's throughput win over looped singles comes from at the
        service layer.  Hit/miss accounting is *exactly* the sequential
        loop's: a key seen twice in one batch is a miss then a hit (the
        first occurrence's decision is memoized before the second is
        looked up), so cache-stats fields in pipeline notes and scenario
        goldens are byte-identical either way.  The whole batch decides
        against one rule revision; a revision change racing the batch
        suppresses inserts (never a stale entry), exactly like the
        per-call guard.
        """
        cache = self._cache
        matcher = self._matcher
        results: list[MatchResult] = []
        append = results.append
        with cache.lock:
            if matcher.revision != self._revision:
                cache.clear()
                self._revision = matcher.revision
            revision = self._revision
            for context in contexts:
                key = self._key(context)
                cached = cache.lookup(key)
                if cached is not None:
                    append(cached)
                    continue
                result = matcher.match(context)
                cache.store(key, result, insert=matcher.revision == revision)
                append(result)
        return results

    def decide_many(self, urls) -> list[MatchResult]:
        """Batch URL-only decisions (default request context per URL)."""
        return self.match_many([RequestContext(url=url) for url in urls])

    def should_block(self, context: RequestContext) -> bool:
        return self.match(context).blocked

    def should_block_url(self, url: str) -> bool:
        return self.match(RequestContext(url=url)).blocked
