"""Compiled oracle artifacts: build the matcher once, load it anywhere.

Parsing EasyList-scale text and constructing the token/host indexes is the
dominant cost of getting an oracle ready — and before this module, every
consumer paid it: each parallel shard worker, every service cold-start,
every hot reload.  A *compiled artifact* (``.tsoracle``) materializes a
fully built :class:`~repro.filterlists.matcher.FilterMatcher` — token
buckets, host-suffix dict, lazily-compiled rules — so loading skips both
parsing and index construction entirely.  The lazy-regex invariant is
preserved across serialization: :class:`NetworkRule` drops its compiled
pattern when pickled, so a loaded artifact is exactly as lazy as a freshly
built matcher (``benchmarks/bench_artifacts.py`` gates the load speedup).

On-disk layout (all integers big-endian)::

    MAGIC (8)  "TSORACLE"
    version    u16     ARTIFACT_VERSION
    meta_len   u32     length of the JSON metadata block
    data_len   u64     length of the pickled payload
    image_len  u64     length of the mmap-ready oracle image
    sha256     32      digest over metadata + payload + image
    meta       JSON    {"rule_count", "lists", "revision", "format",
                        "automaton_keys", "unsupported", "unsupported_rules",
                        "image_bytes"}
    payload    pickle  {"matcher": FilterMatcher, "lists": (ParsedList, ...)}
    image      binary  flat oracle image (see repro.filterlists.image)

Since version 2 the pickled matcher carries its candidate-generation
:class:`~repro.filterlists.matcher.TokenAutomaton` (vocabulary only — the
compiled scan patterns follow the same lazy invariant as per-rule regexes
and never serialize), so loaded oracles scan URLs the same way freshly
built ones do.  Version 3 appends the *oracle image*: a flat,
pickle-free encoding of the same matcher that serving workers ``mmap``
read-only via :func:`open_image`, so N worker processes share one
page-cache-resident copy of the rule data instead of holding N unpickled
oracles (:mod:`repro.filterlists.image` documents the layout and the
identity argument).  Older artifacts are rejected with
:class:`ArtifactError`, never half-loaded — recompile from list text.

Every load verifies magic, version, lengths and checksum before touching
the pickle, so a truncated or corrupted artifact (or one written by a
different format version) is rejected with :class:`ArtifactError` instead
of being half-loaded.  ``lists`` carries the parsed provenance when the
artifact was compiled from lists — that is what lets the serving layer
(:meth:`repro.serve.service.Snapshot.from_artifact`) diff rule churn on a
reload without re-parsing anything; pickle's shared-object dedup makes
storing both the matcher and its lists nearly free.

The artifact is an internal transport format (pickle inside): treat it
like a cache you rebuild from list text, not like an interchange format,
and only load artifacts you compiled.
"""

from __future__ import annotations

import gc
import hashlib
import json
import pickle
import struct
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

from ..obs.trace import span
from .cache import CachedMatcher
from .image import ImageMatcher, build_image
from .matcher import FilterMatcher
from .parser import ParsedList

__all__ = [
    "ARTIFACT_VERSION",
    "ArtifactError",
    "OracleArtifact",
    "dumps_artifact",
    "loads_artifact",
    "compile_matcher",
    "compile_lists",
    "load_artifact",
    "load_matcher",
    "open_image",
    "read_artifact_meta",
    "gc_paused",
]


@contextmanager
def gc_paused():
    """Pause the generational GC for a mass-unpickle, restore on exit.

    Unpickling an artifact (or a shard slice — :mod:`repro.core.parallel`
    shares this helper) allocates tens of thousands of long-lived
    objects; letting the GC run mid-load costs ~25% of load time for
    zero reclaim, since nothing built during a load is garbage.  Only
    re-enables collection if it was enabled on entry, so nested or
    caller-disabled GC states are preserved.
    """
    was_collecting = gc.isenabled()
    if was_collecting:
        gc.disable()
    try:
        yield
    finally:
        if was_collecting:
            gc.enable()

MAGIC = b"TSORACLE"
# Version history:
#   1 — token/host-bucket matcher, lazy per-rule regexes.
#   2 — matcher carries its TokenAutomaton (candidate generation by one
#       automaton scan instead of tokenize-then-probe) and per-reason
#       unsupported-rule accounting; version-1 artifacts predate both and
#       are rejected loudly — recompile from list text.
#   3 — appends the mmap-ready oracle image (repro.filterlists.image):
#       the header grows an image_len field and the checksum covers all
#       three sections.  Version-2 artifacts carry no image for serving
#       workers to share and are rejected loudly — recompile.
ARTIFACT_VERSION = 3
_HEADER = struct.Struct(">8sHIQQ32s")
# Magic + version prefix, validated before the full header so an
# old-format artifact (whose header is a different size) reports a
# version mismatch instead of a confusing truncation error.
_PREFIX = struct.Struct(">8sH")


class ArtifactError(ValueError):
    """A ``.tsoracle`` artifact failed validation (magic, version,
    truncation, checksum) or carries the wrong content for the caller."""


@dataclass(frozen=True)
class OracleArtifact:
    """A decoded artifact: the ready matcher plus its provenance."""

    matcher: FilterMatcher
    lists: tuple[ParsedList, ...]
    meta: dict

    @property
    def rule_count(self) -> int:
        return self.matcher.rule_count


def _unwrap(matcher: FilterMatcher | CachedMatcher) -> FilterMatcher:
    return matcher.wrapped if isinstance(matcher, CachedMatcher) else matcher


def _encode(
    matcher: FilterMatcher | CachedMatcher,
    lists: tuple[ParsedList, ...],
) -> tuple[bytes, dict]:
    """Encode a built matcher; returns ``(artifact bytes, metadata)``."""
    plain = _unwrap(matcher)
    payload = pickle.dumps(
        {"matcher": plain, "lists": tuple(lists)},
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    image = build_image(plain)
    automaton = plain.automaton
    meta = {
        "format": "tsoracle",
        "version": ARTIFACT_VERSION,
        "rule_count": plain.rule_count,
        "lists": list(plain.list_names),
        "revision": plain.revision,
        "automaton_keys": automaton.vocabulary_size if automaton else 0,
        "unsupported": plain.unsupported_counts,
        "unsupported_rules": plain.unsupported_rule_count,
        "image_bytes": len(image),
    }
    meta_bytes = json.dumps(meta, sort_keys=True).encode("utf-8")
    digest = hashlib.sha256(meta_bytes + payload + image).digest()
    header = _HEADER.pack(
        MAGIC, ARTIFACT_VERSION, len(meta_bytes), len(payload), len(image),
        digest,
    )
    return header + meta_bytes + payload + image, meta


def dumps_artifact(
    matcher: FilterMatcher | CachedMatcher,
    lists: tuple[ParsedList, ...] = (),
) -> bytes:
    """Encode a built matcher (and optional list provenance) to bytes."""
    return _encode(matcher, lists)[0]


def _read_header(data) -> tuple[int, int, int, bytes]:
    """Validate magic/version/lengths; returns ``(meta_len, data_len,
    image_len, digest)``.  Magic and version are checked before the full
    header is unpacked, so an artifact written by an older format version
    (whose header has a different size) is reported as a version
    mismatch, never as truncation."""
    if len(data) < _PREFIX.size:
        raise ArtifactError(
            f"artifact truncated: {len(data)} bytes is shorter than the "
            f"{_PREFIX.size}-byte magic/version prefix"
        )
    magic, version = _PREFIX.unpack_from(data)
    if magic != MAGIC:
        raise ArtifactError(
            f"not a .tsoracle artifact (bad magic {magic!r})"
        )
    if version != ARTIFACT_VERSION:
        raise ArtifactError(
            f"artifact format version {version} is not the supported "
            f"version {ARTIFACT_VERSION}; recompile from list text"
        )
    if len(data) < _HEADER.size:
        raise ArtifactError(
            f"artifact truncated: {len(data)} bytes is shorter than the "
            f"{_HEADER.size}-byte header"
        )
    _, _, meta_len, data_len, image_len, digest = _HEADER.unpack_from(data)
    expected = _HEADER.size + meta_len + data_len + image_len
    if len(data) != expected:
        raise ArtifactError(
            f"artifact truncated or padded: header promises {expected} "
            f"bytes, file holds {len(data)}"
        )
    return meta_len, data_len, image_len, digest


def _verified_sections(data) -> tuple[bytes, "memoryview", "memoryview"]:
    """Checksum-validated ``(meta bytes, payload view, image view)``."""
    meta_len, data_len, _, digest = _read_header(data)
    # Views, not copies: hashing, unpickling and mmap consumption all
    # accept buffers, and a list-scale artifact is megabytes — slice
    # copies would cost more than the checksum itself.
    body = memoryview(data)[_HEADER.size :]
    if hashlib.sha256(body).digest() != digest:
        raise ArtifactError(
            "artifact checksum mismatch: content was corrupted after compile"
        )
    return (
        bytes(body[:meta_len]),
        body[meta_len : meta_len + data_len],
        body[meta_len + data_len :],
    )


def loads_artifact(data: bytes) -> OracleArtifact:
    """Decode and validate artifact bytes (see module docstring)."""
    meta_bytes, payload, _ = _verified_sections(data)
    meta = json.loads(meta_bytes.decode("utf-8"))
    with gc_paused():
        record = pickle.loads(payload)
    matcher = record["matcher"]
    if not isinstance(matcher, FilterMatcher):
        raise ArtifactError(
            f"artifact payload holds {type(matcher).__name__}, "
            "expected FilterMatcher"
        )
    return OracleArtifact(
        matcher=matcher, lists=tuple(record.get("lists", ())), meta=meta
    )


def compile_matcher(
    matcher: FilterMatcher | CachedMatcher,
    path: str | Path,
    lists: tuple[ParsedList, ...] = (),
) -> dict:
    """Write a built matcher to ``path`` atomically and durably;
    returns the metadata."""
    from ..durable import atomic_write_bytes

    with span("artifact.compile", path=str(path)):
        data, meta = _encode(matcher, lists)
        atomic_write_bytes(Path(path), data)
    meta["bytes"] = len(data)
    return meta


def compile_lists(path: str | Path, *lists: ParsedList) -> dict:
    """Build a matcher from parsed lists and compile it with provenance.

    This is the ``trackersift compile`` entry point: the stored lists are
    what a serving-layer reload diffs churn against.
    """
    matcher = FilterMatcher.from_lists(*lists)
    return compile_matcher(matcher, path, lists=tuple(lists))


def _read_bytes(path: str | Path) -> bytes:
    try:
        return Path(path).read_bytes()
    except OSError as error:
        raise ArtifactError(f"cannot read artifact {path}: {error}") from error


def load_artifact(path: str | Path) -> OracleArtifact:
    """Load and validate a compiled artifact from disk."""
    with span("artifact.load", path=str(path)):
        return loads_artifact(_read_bytes(path))


def load_matcher(path: str | Path) -> FilterMatcher:
    """The fast path consumers want: a ready matcher, no parsing, no
    index construction — just validation plus unpickling."""
    return load_artifact(path).matcher


def open_image(path: str | Path) -> ImageMatcher:
    """Map an artifact's oracle image read-only and return its matcher.

    The multi-worker serving path: the file is ``mmap``-ed (never read
    into a private buffer), the whole-artifact checksum is verified over
    the map — faulting the pages into the kernel page cache, where every
    worker mapping the same file shares them — and the image section is
    handed to :class:`~repro.filterlists.image.ImageMatcher`.  Rule data
    stays in the shared map; each process privately holds only the bucket
    directory skeleton and whatever rules its traffic materializes.
    Raises :class:`ArtifactError` for a missing, truncated, corrupt,
    version-mismatched or image-less artifact.
    """
    import mmap

    path = Path(path)
    with span("artifact.map", path=str(path)):
        return _open_image(path, mmap)


def _open_image(path: Path, mmap) -> ImageMatcher:
    try:
        handle = open(path, "rb")
    except OSError as error:
        raise ArtifactError(f"cannot read artifact {path}: {error}") from error
    try:
        mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
    except (OSError, ValueError) as error:
        handle.close()
        raise ArtifactError(f"cannot map artifact {path}: {error}") from error
    try:
        data = memoryview(mapped)
        _, _, image = _verified_sections(data)
        if len(image) == 0:
            raise ArtifactError(
                f"artifact {path} carries no oracle image; recompile"
            )
        # Closers run in order on ImageMatcher.close(): parent view first
        # (exported sub-views are dropped by the matcher itself), then the
        # map, then the file.
        return ImageMatcher(
            image, closers=(data.release, mapped.close, handle.close)
        )
    except BaseException:
        # Error path: close only the file handle eagerly.  The map (and
        # any buffer views a partially-built matcher exported) is released
        # by garbage collection — mmap.close() would raise BufferError
        # while traceback frames keep those views alive.
        handle.close()
        raise


def read_artifact_meta(path: str | Path) -> dict:
    """Header introspection without unpickling the payload.

    Cheap enough for tooling (``trackersift compile`` prints it); the
    checksum is still verified so a corrupt file never reports healthy
    metadata.
    """
    data = _read_bytes(path)
    meta_bytes, _, _ = _verified_sections(data)
    meta = json.loads(meta_bytes.decode("utf-8"))
    meta["bytes"] = len(data)
    return meta
