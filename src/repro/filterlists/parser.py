"""Filter-list text parser.

Turns EasyList/EasyPrivacy-style text into :class:`NetworkRule` objects.
Comment lines (``!``), metadata (``[Adblock Plus 2.0]`` headers) and cosmetic
rules (``##``, ``#@#``, ``#?#`` …) are recognised and skipped — TrackerSift
only consumes *network* rules, because its oracle labels network requests.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from .rules import NetworkRule, ResourceType, RuleOptions, RuleParseError

__all__ = ["ParsedList", "parse_filter_list", "parse_rule_line"]

_SUPPORTED_FLAGS = {
    "third-party": ("third_party", True),
    "3p": ("third_party", True),
    "~third-party": ("third_party", False),
    "first-party": ("third_party", False),
    "1p": ("third_party", False),
    "~first-party": ("third_party", True),
}

_COSMETIC_MARKERS = ("##", "#@#", "#?#", "#$#", "#%#")


@dataclass
class ParsedList:
    """The result of parsing one filter list."""

    name: str
    rules: list[NetworkRule] = field(default_factory=list)
    comment_count: int = 0
    cosmetic_count: int = 0
    error_lines: list[str] = field(default_factory=list)

    @property
    def blocking_rules(self) -> list[NetworkRule]:
        return [r for r in self.rules if not r.is_exception]

    @property
    def exception_rules(self) -> list[NetworkRule]:
        return [r for r in self.rules if r.is_exception]

    @property
    def unsupported_counts(self) -> dict[str, int]:
        """Rules the matcher will skip, counted per unsupported reason.

        A rule carrying several unsupported markers counts once per
        reason.  Surfacing this here (and in ``FilterMatcher``,
        ``trackersift compile`` and the serve ``/metrics`` payload) is
        what keeps dropped rules from becoming a silent coverage gap.
        """
        counts: dict[str, int] = {}
        for rule in self.rules:
            for reason in rule.options.unsupported:
                counts[reason] = counts.get(reason, 0) + 1
        return counts

    @property
    def unsupported_rule_count(self) -> int:
        """How many parsed rules the matcher will skip (deduplicated)."""
        return sum(1 for rule in self.rules if not rule.supported)


def _split_options(line: str) -> tuple[str, str | None]:
    """Split ``pattern$options`` at the *last* unescaped ``$``.

    ABP defines the options separator as the last ``$`` that is followed by
    valid option syntax; patterns may legitimately contain ``$`` (rare) and
    regex rules start with ``/``, which we treat as unsupported.
    """
    idx = line.rfind("$")
    if idx < 0 or idx == len(line) - 1:
        return line, None
    options = line[idx + 1 :]
    # Heuristic from real parsers: an options blob is a comma list of
    # [~]name or name=value items without URL-ish characters.
    for item in options.split(","):
        item = item.strip()
        if not item:
            return line, None
        name = item.lstrip("~").split("=", 1)[0]
        if not name.replace("-", "").replace("_", "").isalnum():
            return line, None
    return line[:idx], options


# Interned options: rules overwhelmingly repeat a handful of option blobs
# (or carry none at all), so sharing one frozen RuleOptions per distinct
# blob makes pickled matchers (worker transfer, compiled artifacts) store
# each options object once instead of once per rule.  Value-equal and
# immutable, so sharing is unobservable.
_DEFAULT_OPTIONS = RuleOptions()
_OPTIONS_CACHE: dict[str, RuleOptions] = {}
_OPTIONS_CACHE_MAX = 4096


def _parse_options(options_text: str) -> RuleOptions:
    cached = _OPTIONS_CACHE.get(options_text)
    if cached is None:
        cached = _build_options(options_text)
        if len(_OPTIONS_CACHE) < _OPTIONS_CACHE_MAX:
            _OPTIONS_CACHE[options_text] = cached
    return cached


def _build_options(options_text: str) -> RuleOptions:
    include_types: set[ResourceType] = set()
    exclude_types: set[ResourceType] = set()
    third_party: bool | None = None
    include_domains: list[str] = []
    exclude_domains: list[str] = []
    match_case = False
    unsupported: list[str] = []

    for raw in options_text.split(","):
        item = raw.strip().lower()
        if not item:
            continue
        if item in _SUPPORTED_FLAGS:
            _, value = _SUPPORTED_FLAGS[item]
            third_party = value
            continue
        if item == "match-case":
            match_case = True
            continue
        if item.startswith("domain="):
            for dom in item[len("domain=") :].split("|"):
                dom = dom.strip()
                if not dom:
                    continue
                if dom.startswith("~"):
                    exclude_domains.append(dom[1:])
                else:
                    include_domains.append(dom)
            continue
        negated = item.startswith("~")
        type_name = item[1:] if negated else item
        resource = ResourceType.from_option(type_name)
        if resource is not None:
            (exclude_types if negated else include_types).add(resource)
            continue
        unsupported.append(item)

    return RuleOptions(
        include_types=frozenset(include_types),
        exclude_types=frozenset(exclude_types),
        third_party=third_party,
        include_domains=tuple(sorted(include_domains)),
        exclude_domains=tuple(sorted(exclude_domains)),
        match_case=match_case,
        unsupported=tuple(unsupported),
    )


def parse_rule_line(line: str, list_name: str = "") -> NetworkRule | None:
    """Parse a single line; returns ``None`` for comments/cosmetics/blanks.

    Raises :class:`RuleParseError` for lines that are clearly intended as
    network rules but are malformed (e.g. empty pattern after options).
    """
    line = line.strip()
    if not line or line.startswith("!") or line.startswith("["):
        return None
    if any(marker in line for marker in _COSMETIC_MARKERS):
        return None

    text = line
    is_exception = line.startswith("@@")
    if is_exception:
        line = line[2:]

    pattern, options_text = _split_options(line)
    options = _parse_options(options_text) if options_text else _DEFAULT_OPTIONS

    if pattern.startswith("/") and pattern.endswith("/") and len(pattern) > 2:
        # Raw-regex rules exist in EasyList; we record them as unsupported
        # so the matcher never silently mis-handles them.  The pattern text
        # keeps its ``/…/`` delimiters: stripping them would leave a
        # misleading substring pattern (``/track/v1/`` is a regex, not the
        # literal ``track/v1``) in every introspection surface downstream.
        options = dataclasses.replace(
            options, unsupported=("regex-rule",) + options.unsupported
        )

    if not pattern:
        raise RuleParseError(f"empty pattern in rule: {text!r}")
    return NetworkRule(
        text=text,
        pattern=pattern,
        is_exception=is_exception,
        options=options,
        list_name=list_name,
    )


def parse_filter_list(data: str, name: str = "") -> ParsedList:
    """Parse a full filter-list document, tolerating bad lines.

    Mirrors real content blockers: one malformed community rule must not
    take down the whole list, so parse errors are collected, not raised.
    """
    parsed = ParsedList(name=name)
    for line in data.splitlines():
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith("!") or stripped.startswith("["):
            parsed.comment_count += 1
            continue
        if any(marker in stripped for marker in _COSMETIC_MARKERS):
            parsed.cosmetic_count += 1
            continue
        try:
            rule = parse_rule_line(stripped, list_name=name)
        except RuleParseError:
            parsed.error_lines.append(stripped)
            continue
        if rule is not None:
            parsed.rules.append(rule)
    return parsed
