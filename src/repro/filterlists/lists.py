"""Embedded EasyList- and EasyPrivacy-style snapshots.

The real study applies EasyList (advertising) and EasyPrivacy (tracking) to
each crawled request.  We embed compact snapshots written in genuine
Adblock Plus syntax.  Two kinds of rules are included:

* **well-known tracker rules** — real-world domains the paper itself names
  (google-analytics.com, doubleclick.net, googleadservices.com, ...), so the
  paper's anecdotes replay verbatim;
* **pattern rules** — path markers (``/ads/``, ``/pixel``, ``/track`` ...)
  that catch tracking endpoints on otherwise-functional hosts, which is what
  produces *mixed* resources.

``TRACKER_DOMAINS`` and ``TRACKER_PATH_MARKERS`` are exported because the
synthetic-web generator (``repro.webmodel``) builds its tracker population
from the same vocabulary: the generator decides *intent* (a tracking
request), the oracle independently *recovers* the label from the URL, and
the TrackerSift pipeline only ever sees the oracle's labels.
"""

from __future__ import annotations

from .parser import ParsedList, parse_filter_list

__all__ = [
    "TRACKER_DOMAINS",
    "ADVERTISING_DOMAINS",
    "TRACKER_PATH_MARKERS",
    "AD_PATH_MARKERS",
    "EASYLIST_SNAPSHOT",
    "EASYPRIVACY_SNAPSHOT",
    "load_easylist",
    "load_easyprivacy",
    "default_lists",
]

#: Domains whose every request is advertising (EasyList-style coverage).
ADVERTISING_DOMAINS: tuple[str, ...] = (
    "doubleclick.net",
    "googleadservices.com",
    "googlesyndication.com",
    "adnxs.com",
    "adsrvr.org",
    "amazon-adsystem.com",
    "criteo.com",
    "taboola.com",
    "outbrain.com",
    "rubiconproject.com",
    "pubmatic.com",
    "openx.net",
    "adform.net",
    "bidswitch.net",
    "yieldmo.com",
    "ads-pixel.net",
    "popadnetwork.xyz",
    "bannerwave.io",
)

#: Domains whose every request is tracking/analytics (EasyPrivacy-style).
TRACKER_DOMAINS: tuple[str, ...] = (
    "google-analytics.com",
    "scorecardresearch.com",
    "quantserve.com",
    "hotjar.com",
    "mixpanel.com",
    "segment.io",
    "chartbeat.com",
    "newrelic.com",
    "bugsnag.com",
    "fullstory.com",
    "mouseflow.com",
    "crazyegg.com",
    "clicktale.net",
    "statcounter.com",
    "telemetrybeam.io",
    "metricshark.net",
    "pixelforge.dev",
    "beaconline.co",
)

#: Path substrings that mark a request as advertising on any host.
AD_PATH_MARKERS: tuple[str, ...] = (
    "/ads/",
    "/adserver/",
    "/banners/",
    "/sponsored/",
    "/prebid/",
    "/adframe/",
)

#: Path substrings that mark a request as tracking on any host.
TRACKER_PATH_MARKERS: tuple[str, ...] = (
    "/pixel",
    "/track/",
    "/beacon",
    "/telemetry/",
    "/collect?",
    "/analytics/",
    "/fingerprint/",
    "/impression?",
)


def _domain_rules(domains: tuple[str, ...]) -> str:
    return "\n".join(f"||{domain}^" for domain in domains)


def _marker_rules(markers: tuple[str, ...]) -> str:
    lines = []
    for marker in markers:
        # A bare ``/xxx/`` line would parse as a raw-regex rule in ABP; real
        # lists write such path markers as ``/xxx/*`` (same match semantics).
        if marker.startswith("/") and marker.endswith("/"):
            marker += "*"
        lines.append(marker)
    return "\n".join(lines)


EASYLIST_SNAPSHOT = f"""\
[Adblock Plus 2.0]
! Title: EasyList (embedded reproduction snapshot)
! Expires: never (offline snapshot)
! Homepage: https://easylist.to/
{_domain_rules(ADVERTISING_DOMAINS)}
{_marker_rules(AD_PATH_MARKERS)}
! option-bearing rules exercised by the matcher tests
||bing.com/aclick$third-party
||ads.*.example-exchange.com^$script
/adsbygoogle.js
/show_ads_impl_
-advert-loader.
_adrotate.
! exception rules (ABP semantics: @@ overrides blocks)
@@||news-statics.org/ads/disclosure-banner.png$image
@@||pressroom.example/adserver/policy.html$subdocument
! cosmetic rules are parsed and skipped by the network matcher
example.com###ad-sidebar
~example.org##.sponsored-links
"""

EASYPRIVACY_SNAPSHOT = f"""\
[Adblock Plus 2.0]
! Title: EasyPrivacy (embedded reproduction snapshot)
! Expires: never (offline snapshot)
! Homepage: https://easylist.to/
{_domain_rules(TRACKER_DOMAINS)}
{_marker_rules(TRACKER_PATH_MARKERS)}
! well-known hostname-scoped trackers on mixed first parties (paper §4)
||pixel.wp.com^
||stats.wp.com^
||facebook.com/tr^
||facebook.net/signals/
||bing.com/p/insights/
! option-bearing rules
||cdn.branch.io/branch-latest.min.js$script,third-party
.com/stats.php?$xmlhttprequest
! exceptions
@@||weather-widgets.net/collect?opt_out=1
example.org#@#.tracking-consent
"""


def load_easylist() -> ParsedList:
    """Parse the embedded EasyList snapshot."""
    return parse_filter_list(EASYLIST_SNAPSHOT, name="easylist")


def load_easyprivacy() -> ParsedList:
    """Parse the embedded EasyPrivacy snapshot."""
    return parse_filter_list(EASYPRIVACY_SNAPSHOT, name="easyprivacy")


def default_lists() -> tuple[ParsedList, ParsedList]:
    """The (EasyList, EasyPrivacy) pair used by the paper's oracle."""
    return load_easylist(), load_easyprivacy()
