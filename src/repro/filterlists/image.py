"""Memory-mapped oracle images: N serving processes, one oracle in RAM.

A compiled ``.tsoracle`` artifact (format version 3 — see
:mod:`repro.filterlists.compile`) carries, alongside the pickled matcher,
a flat *image* section designed to be consumed through a read-only
``mmap``.  The pickled payload is the single-process fast path: one
validated load materializes every :class:`NetworkRule` as Python objects.
That is exactly the wrong shape for a multi-process server — N workers
would each hold a full private copy of an oracle whose rules are
identical, so resident memory scales with worker count.

The image section inverts that: rule *data* (source lines, bucket
membership, list provenance) **and the bucket directories themselves**
live in the artifact file, the workers map it read-only, and the
kernel's page cache keeps one physical copy no matter how many processes
map it.  Per worker, only a thin skeleton is private:

* the :class:`~repro.filterlists.matcher.TokenAutomaton` vocabulary
  (derived from the directory keys, so it is the same automaton the
  pickled matcher carries),
* a per-key cache of materialized buckets — key lookups bisect the
  sorted key tables *in the mapped file* (no per-worker ``dict`` of
  12K span entries, no JSON-decoded directory: decoding one in every
  worker was measured to dirty ~3 MB of private arena pages per
  process for a 12K-rule oracle, most of the cost this layout exists
  to avoid),
* and a lazily-populated cache of :class:`NetworkRule` objects,
  materialized per bucket on first traffic by re-parsing the stored rule
  line with :func:`repro.filterlists.parser.parse_rule_line`.

Cold RSS per additional worker is therefore the skeleton, not the oracle
(``benchmarks/bench_artifacts.py`` gates it below 25% of a full unpickled
copy), and a worker that only ever sees a slice of the URL space only
ever materializes the buckets that slice touches.

Image layout (offsets relative to the image section; integers
big-endian)::

    header_len  u32
    header      JSON   {"rule_count", "revision", "lists", "list_pool",
                        "domain_sensitive", "digit_anywhere",
                        "unsupported", "unsupported_rules",
                        "blocking", "exceptions", "sections"}
    sections    binary rule_ids          u32[total bucket entries]
                       line_offsets      u32[rule_count + 1]
                       line_blob         utf-8 rule lines, concatenated
                       rule_lists        u16[rule_count] (→ list_pool)
                       blocking_hosts    key table (below)
                       blocking_buckets  key table
                       exceptions_hosts  key table
                       exceptions_buckets key table
                       digit_hosts       utf-8 hosts, newline-joined

Each *key table* is a bisectable directory mapping key → ``[start,
count]`` span into ``rule_ids``, kept entirely inside the map::

    count        u32
    key_offsets  u32[count + 1]   (into key_blob)
    spans        u32[2 * count]   (start, count — key_offsets order)
    key_blob     utf-8 keys, concatenated, bytewise-sorted

Keys are stored bytewise-sorted; UTF-8 byte order equals code-point
order, so a binary search over encoded probe keys is exact.

``blocking`` / ``exceptions`` in the JSON header carry only what cannot
stay in the map: the ``catch_all`` span and the tier's ``rules`` /
``host_rules`` totals.  :class:`ImageMatcher` walks hosts, catch-all,
then token buckets in the exact candidate order the in-memory
:class:`~repro.filterlists.matcher._RuleIndex` uses, so decisions *and
rule attribution* are bit-identical to the pickled matcher's
(``tests/test_filterlists_image.py`` holds the two together).  Section
offsets in ``sections`` are relative to the first byte after the
header.

Build with :func:`build_image` (called by the compiler), consume with
:func:`repro.filterlists.compile.open_image`, which validates the
artifact checksum before handing the mapped section to
:class:`ImageMatcher`.
"""

from __future__ import annotations

import json
import struct
from dataclasses import replace
from typing import Iterable

import re

from .matcher import (
    _NO_MATCH,
    _trie_pattern,
    FilterMatcher,
    MatchResult,
    RequestShape,
    TokenAutomaton,
)
from .parser import parse_rule_line
from .rules import NetworkRule, RequestContext

__all__ = ["build_image", "ImageMatcher"]

_U32 = struct.Struct(">I")
_U32X2 = struct.Struct(">2I")
_SECTION_ORDER = (
    "rule_ids",
    "line_offsets",
    "line_blob",
    "rule_lists",
    "blocking_hosts",
    "blocking_buckets",
    "exceptions_hosts",
    "exceptions_buckets",
    "digit_hosts",
)
_UNPROBED = object()  # cache sentinel: key never looked up in the map yet


def _image_error(message: str) -> Exception:
    # ArtifactError lives in compile.py, which imports this module; the
    # lazy import keeps the dependency one-directional at import time.
    from .compile import ArtifactError

    return ArtifactError(message)


def build_image(matcher: FilterMatcher) -> bytes:
    """Encode a built matcher's index skeleton + rule lines as an image.

    Every indexed rule must round-trip through
    :func:`~repro.filterlists.parser.parse_rule_line` — the image stores
    source lines, not pickles, so lazy materialization re-parses them.
    Rules constructed programmatically with a ``text`` that does not
    re-parse to the same rule are rejected at compile time rather than
    silently drifting at serve time.
    """
    rules: list[NetworkRule] = []
    interned: dict[int, int] = {}
    ids: list[int] = []

    def intern(rule: NetworkRule) -> int:
        index = interned.get(id(rule))
        if index is None:
            reparsed = parse_rule_line(rule.text, rule.list_name)
            if reparsed != rule:
                raise _image_error(
                    f"rule {rule.text!r} does not round-trip through the "
                    "parser; oracle images store source lines and cannot "
                    "carry it — compile from parsed list text"
                )
            index = len(rules)
            rules.append(rule)
            interned[id(rule)] = index
        return index

    def span(bucket: Iterable[NetworkRule]) -> list[int]:
        start = len(ids)
        ids.extend(intern(rule) for rule in bucket)
        return [start, len(ids) - start]

    def key_table(spans: dict[str, list[int]]) -> bytes:
        # Bytewise-sorted keys: UTF-8 byte order equals code-point order,
        # so ImageMatcher's encoded-probe bisect is exact.
        keys = sorted(spans)
        blob = bytearray()
        offsets = [0]
        flat: list[int] = []
        for key in keys:
            blob += key.encode("utf-8")
            offsets.append(len(blob))
            flat.extend(spans[key])
        return (
            _U32.pack(len(keys))
            + struct.pack(f">{len(offsets)}I", *offsets)
            + struct.pack(f">{len(flat)}I", *flat)
            + bytes(blob)
        )

    def encode_index(index) -> dict:
        return {
            "hosts": {key: span(b) for key, b in index._hosts.items()},
            "buckets": {key: span(b) for key, b in index._buckets.items()},
            "catch_all": span(index._catch_all),
        }

    blocking = encode_index(matcher._blocking)
    exceptions = encode_index(matcher._exceptions)

    def index_header(encoded: dict) -> dict:
        host_rules = sum(s[1] for s in encoded["hosts"].values())
        bucket_rules = sum(s[1] for s in encoded["buckets"].values())
        return {
            "catch_all": encoded["catch_all"],
            "rules": host_rules + bucket_rules + encoded["catch_all"][1],
            "host_rules": host_rules,
        }

    list_pool: list[str] = []
    pool_index: dict[str, int] = {}
    rule_lists: list[int] = []
    for rule in rules:
        index = pool_index.get(rule.list_name)
        if index is None:
            index = len(list_pool)
            list_pool.append(rule.list_name)
            pool_index[rule.list_name] = index
        rule_lists.append(index)
    if len(list_pool) > 0xFFFF:
        raise _image_error("oracle images support at most 65535 list names")

    line_blob = bytearray()
    line_offsets = [0]
    for rule in rules:
        line_blob += rule.text.encode("utf-8")
        line_offsets.append(len(line_blob))

    sections = {
        "rule_ids": struct.pack(f">{len(ids)}I", *ids),
        "line_offsets": struct.pack(f">{len(line_offsets)}I", *line_offsets),
        "line_blob": bytes(line_blob),
        "rule_lists": struct.pack(f">{len(rule_lists)}H", *rule_lists),
        "blocking_hosts": key_table(blocking["hosts"]),
        "blocking_buckets": key_table(blocking["buckets"]),
        "exceptions_hosts": key_table(exceptions["hosts"]),
        "exceptions_buckets": key_table(exceptions["buckets"]),
        "digit_hosts": "\n".join(sorted(matcher._digit_hosts)).encode("utf-8"),
    }
    table: dict[str, list[int]] = {}
    offset = 0
    for name in _SECTION_ORDER:
        table[name] = [offset, len(sections[name])]
        offset += len(sections[name])

    header = {
        "rule_count": len(rules),
        "revision": matcher.revision,
        "lists": list(matcher.list_names),
        "list_pool": list_pool,
        "domain_sensitive": matcher._domain_sensitive,
        "digit_anywhere": matcher._digit_anywhere,
        "unsupported": matcher.unsupported_counts,
        "unsupported_rules": matcher.unsupported_rule_count,
        "blocking": index_header(blocking),
        "exceptions": index_header(exceptions),
        "sections": table,
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    return (
        _U32.pack(len(header_bytes))
        + header_bytes
        + b"".join(sections[name] for name in _SECTION_ORDER)
    )


class _KeyTable:
    """A sorted key → span directory resolved *inside* the mapped file.

    Holds only three buffer views into the image (offsets, spans, key
    blob); a lookup encodes the probe key and bisects the blob, so the
    per-worker footprint of a 12K-entry directory is three memoryviews,
    not a 12K-entry dict.  UTF-8 byte order equals code-point order,
    which makes the encoded-probe comparison exact for any key the
    compiler can emit.
    """

    __slots__ = ("_count", "_offsets", "_spans", "_blob")

    def __init__(self, section) -> None:
        if len(section) < _U32.size:
            raise _image_error("oracle image key-table section truncated")
        (count,) = _U32.unpack_from(section)
        offsets_end = _U32.size + 4 * (count + 1)
        spans_end = offsets_end + 8 * count
        if len(section) < spans_end:
            raise _image_error(
                f"oracle image key-table section too short for {count} keys"
            )
        self._count = count
        self._offsets = section[_U32.size : offsets_end]
        self._spans = section[offsets_end:spans_end]
        self._blob = section[spans_end:]
        (blob_len,) = _U32.unpack_from(self._offsets, 4 * count)
        if blob_len != len(self._blob):
            raise _image_error(
                "oracle image key-table blob does not match its offsets"
            )

    def __len__(self) -> int:
        return self._count

    def lookup(self, key: str) -> tuple[int, int] | None:
        """The span for ``key``, or ``None`` — one bisect over the map."""
        blob = self._blob
        if blob is None:
            raise _image_error(
                "oracle image is closed; cannot materialize more rules"
            )
        probe = key.encode("utf-8")
        offsets = self._offsets
        lo, hi = 0, self._count
        while lo < hi:
            mid = (lo + hi) >> 1
            start, end = _U32X2.unpack_from(offsets, 4 * mid)
            current = bytes(blob[start:end])
            if current < probe:
                lo = mid + 1
            elif current > probe:
                hi = mid
            else:
                return _U32X2.unpack_from(self._spans, 8 * mid)
        return None

    def keys(self):
        """Decode every key (automaton vocabulary construction only)."""
        blob = self._blob
        if blob is None:
            raise _image_error(
                "oracle image is closed; cannot materialize more rules"
            )
        offsets = self._offsets
        for index in range(self._count):
            start, end = _U32X2.unpack_from(offsets, 4 * index)
            yield bytes(blob[start:end]).decode("utf-8")

    def close(self) -> None:
        self._offsets = self._spans = self._blob = None


class _TableMembership:
    """``in``-only view over mapped key tables (the automaton host tier).

    :meth:`TokenAutomaton.scan` consults its host table exclusively via
    ``__contains__``; satisfying that with bisects over the map keeps the
    8K-entry host vocabulary out of every worker's private heap."""

    __slots__ = ("_tables",)

    def __init__(self, tables: tuple[_KeyTable, ...]) -> None:
        self._tables = tables

    def __contains__(self, key: str) -> bool:
        for table in self._tables:
            if table.lookup(key) is not None:
                return True
        return False


class _MappedVocabulary(TokenAutomaton):
    """A :class:`TokenAutomaton` whose vocabulary stays in the map.

    Scans the same language as the automaton the pickled matcher
    carries — the key tables hold exactly the vocabulary ``build_image``
    serialized from it — but the host tier probes the mapped tables
    directly and the token tier decodes its keys only transiently, while
    compiling the scan regex.  A worker's private share of a 12K-key
    vocabulary is then the compiled pattern (which every process pays,
    pickled or mapped), not 12K heap strings plus a frozenset.
    """

    __slots__ = ("_host_tables", "_token_tables")

    def __init__(
        self,
        host_tables: tuple[_KeyTable, ...],
        token_tables: tuple[_KeyTable, ...],
    ) -> None:
        TokenAutomaton.__init__(self)
        self._host_tables = host_tables
        self._token_tables = token_tables

    def _compile(self) -> tuple:
        host_table = (
            _TableMembership(self._host_tables)
            if any(len(table) for table in self._host_tables)
            else None
        )
        tokens = sorted(
            {key for table in self._token_tables for key in table.keys()}
        )
        token_pattern = (
            re.compile(
                r"(?<![a-z0-9])(?:%s)(?![a-z0-9])" % _trie_pattern(tokens)
            )
            if tokens
            else None
        )
        self._scanners = (host_table, token_pattern)
        return self._scanners

    @property
    def host_key_count(self) -> int:
        return sum(len(table) for table in self._host_tables)

    @property
    def token_key_count(self) -> int:
        return len({key for table in self._token_tables for key in table.keys()})

    def __getstate__(self) -> tuple:
        raise TypeError(
            "a mapped vocabulary is not picklable: it reads a process-local "
            "mmap; open_image() the artifact in the target process instead"
        )


class _ImageIndex:
    """One tier table of an image: mapped directories in, buckets out.

    Mirrors :class:`~repro.filterlists.matcher._RuleIndex` exactly —
    candidate order is host-directory hits in URL order (pattern
    prechecked by the key lookup), then catch-all, then token buckets in
    URL order, insertion order within a bucket — so attribution cannot
    drift between the pickled and the mapped form of the same oracle.
    Key lookups bisect the mapped :class:`_KeyTable`; each probed key is
    cached (bucket tuple, or ``None`` for a miss) so steady-state
    traffic costs one dict hit, exactly like the in-memory index.  The
    key-space is the automaton vocabulary, so the caches are bounded.
    """

    __slots__ = (
        "_image",
        "_hosts",
        "_buckets",
        "_host_cache",
        "_bucket_cache",
        "_catch_all",
        "_count",
        "_host_rules",
    )

    def __init__(
        self,
        image: "ImageMatcher",
        spec: dict,
        hosts: _KeyTable,
        buckets: _KeyTable,
    ) -> None:
        self._image = image
        self._hosts = hosts
        self._buckets = buckets
        self._host_cache: dict = {}
        self._bucket_cache: dict = {}
        self._catch_all: object = [int(spec["catch_all"][0]), int(spec["catch_all"][1])]
        self._count = int(spec["rules"])
        self._host_rules = int(spec["host_rules"])

    def __len__(self) -> int:
        return self._count

    @property
    def catch_all_empty(self) -> bool:
        catch_all = self._catch_all
        return (catch_all[1] if type(catch_all) is list else len(catch_all)) == 0

    @property
    def host_rule_count(self) -> int:
        return self._host_rules

    def _catch_all_rules(self) -> tuple:
        catch_all = self._catch_all
        if type(catch_all) is list:
            catch_all = self._image._span_rules(catch_all)
            self._catch_all = catch_all
        return catch_all

    def first_match(
        self, context: RequestContext, shape: RequestShape
    ) -> NetworkRule | None:
        cache = self._host_cache
        table = self._hosts
        image = self._image
        for key in shape.host_keys:
            bucket = cache.get(key, _UNPROBED)
            if bucket is _UNPROBED:
                span = table.lookup(key)
                bucket = None if span is None else image._span_rules(span)
                cache[key] = bucket
            if bucket is not None:
                for rule in bucket:
                    if rule.options.permits(context):
                        return rule
        for rule in self._catch_all_rules():
            if rule.matches(context):
                return rule
        cache = self._bucket_cache
        table = self._buckets
        for token in shape.tokens:
            bucket = cache.get(token, _UNPROBED)
            if bucket is _UNPROBED:
                span = table.lookup(token)
                bucket = None if span is None else image._span_rules(span)
                cache[token] = bucket
            if bucket is not None:
                for rule in bucket:
                    if rule.matches(context):
                        return rule
        return None

    def close(self) -> None:
        self._hosts.close()
        self._buckets.close()


class ImageMatcher:
    """A matcher over a memory-mapped oracle image.

    Decision- and attribution-identical to the
    :class:`~repro.filterlists.matcher.FilterMatcher` the image was built
    from, but rules stay in the mapped file until traffic touches their
    bucket.  Duck-types the matcher protocol the serving stack consumes
    (:class:`~repro.filterlists.cache.CachedMatcher`,
    :meth:`~repro.filterlists.oracle.FilterListOracle.from_matcher`),
    with one deliberate exception: images are immutable, so
    ``add_list``/``add_rules`` raise — mutate list text and recompile.

    Construct via :func:`repro.filterlists.compile.open_image`, which
    validates the artifact checksum first; the matcher owns the map and
    releases it on :meth:`close` (or context-manager exit).
    """

    def __init__(self, view, *, closers: tuple = ()) -> None:
        self._closers = closers
        self._closed = False
        view = memoryview(view)
        if len(view) < _U32.size:
            raise _image_error("oracle image truncated before its header")
        (header_len,) = _U32.unpack_from(view)
        base = _U32.size + header_len
        if len(view) < base:
            raise _image_error("oracle image truncated inside its header")
        try:
            header = json.loads(bytes(view[_U32.size : base]).decode("utf-8"))
            sections = header["sections"]
            body = view[base:]
            self._rule_ids = body[slice(*_section_bounds(sections["rule_ids"], len(body)))]
            self._line_offsets = body[
                slice(*_section_bounds(sections["line_offsets"], len(body)))
            ]
            self._line_blob = body[
                slice(*_section_bounds(sections["line_blob"], len(body)))
            ]
            self._rule_lists = body[
                slice(*_section_bounds(sections["rule_lists"], len(body)))
            ]
            self._rule_count = int(header["rule_count"])
            self._revision = int(header["revision"])
            self._lists = tuple(header["lists"])
            self._list_pool = tuple(header["list_pool"])
            self._domain_sensitive = bool(header["domain_sensitive"])
            self._digit_anywhere = bool(header["digit_anywhere"])
            self._digit_blob = body[
                slice(*_section_bounds(sections["digit_hosts"], len(body)))
            ]
            self._digit_hosts: tuple[str, ...] | None = None  # decoded lazily
            self._unsupported_counts = dict(header["unsupported"])
            self._unsupported_rules = int(header["unsupported_rules"])
            tables = {
                name: _KeyTable(
                    body[slice(*_section_bounds(sections[name], len(body)))]
                )
                for name in (
                    "blocking_hosts",
                    "blocking_buckets",
                    "exceptions_hosts",
                    "exceptions_buckets",
                )
            }
            self._blocking = _ImageIndex(
                self,
                header["blocking"],
                tables["blocking_hosts"],
                tables["blocking_buckets"],
            )
            self._exceptions = _ImageIndex(
                self,
                header["exceptions"],
                tables["exceptions_hosts"],
                tables["exceptions_buckets"],
            )
        except (KeyError, TypeError, ValueError, json.JSONDecodeError) as error:
            raise _image_error(f"oracle image header is malformed: {error}") from None
        if len(self._line_offsets) != 4 * (self._rule_count + 1):
            raise _image_error(
                "oracle image line-offset table does not cover its rules"
            )
        if len(self._rule_lists) != 2 * self._rule_count:
            raise _image_error(
                "oracle image list-provenance table does not cover its rules"
            )
        self._rules: dict[int, NetworkRule] = {}
        self._automaton = _MappedVocabulary(
            host_tables=(self._blocking._hosts, self._exceptions._hosts),
            token_tables=(self._blocking._buckets, self._exceptions._buckets),
        )

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Release the underlying map/file handles (idempotent).  Rules
        already materialized stay valid; further cold-bucket traffic on a
        closed image raises."""
        if self._closed:
            return
        self._closed = True
        # Drop buffer views before the mmap closes — an exported
        # memoryview keeps mmap.close() from releasing the map.
        self._rule_ids = self._line_offsets = self._line_blob = None
        self._rule_lists = self._digit_blob = None
        self._blocking.close()
        self._exceptions.close()
        for closer in self._closers:
            closer()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "ImageMatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __reduce__(self):
        raise TypeError(
            "ImageMatcher is not picklable: it wraps a process-local mmap; "
            "ship the artifact path and open_image() it in the target process"
        )

    # -- materialization ---------------------------------------------------
    def _span_rules(self, span) -> tuple[NetworkRule, ...]:
        if self._closed:
            raise _image_error(
                "oracle image is closed; cannot materialize more rules"
            )
        start, count = span
        ids = struct.unpack_from(f">{count}I", self._rule_ids, 4 * start)
        rules = self._rules
        out = []
        for index in ids:
            rule = rules.get(index)
            if rule is None:
                rule = self._materialize(index)
                rules[index] = rule
            out.append(rule)
        return tuple(out)

    def _materialize(self, index: int) -> NetworkRule:
        if not 0 <= index < self._rule_count:
            raise _image_error(
                f"oracle image references rule {index} outside its "
                f"{self._rule_count}-rule table"
            )
        low, high = struct.unpack_from(">2I", self._line_offsets, 4 * index)
        line = bytes(self._line_blob[low:high]).decode("utf-8")
        (pool,) = struct.unpack_from(">H", self._rule_lists, 2 * index)
        rule = parse_rule_line(line, self._list_pool[pool])
        if rule is None or not rule.supported:
            raise _image_error(
                f"oracle image rule {index} ({line!r}) no longer parses to "
                "a supported rule; the image is corrupt — recompile"
            )
        return rule

    # -- introspection (FilterMatcher protocol) ----------------------------
    @property
    def list_names(self) -> tuple[str, ...]:
        return self._lists

    @property
    def rule_count(self) -> int:
        return self._rule_count

    @property
    def materialized_rule_count(self) -> int:
        """How many rules traffic has pulled out of the map so far."""
        return len(self._rules)

    @property
    def revision(self) -> int:
        return self._revision

    @property
    def fast_path_rule_count(self) -> int:
        return (
            self._blocking.host_rule_count + self._exceptions.host_rule_count
        )

    @property
    def automaton(self) -> TokenAutomaton:
        return self._automaton

    @property
    def automaton_enabled(self) -> bool:
        return True

    @property
    def unsupported_counts(self) -> dict[str, int]:
        return dict(self._unsupported_counts)

    @property
    def unsupported_rule_count(self) -> int:
        return self._unsupported_rules

    @property
    def domain_sensitive(self) -> bool:
        return self._domain_sensitive

    def digit_runs_irrelevant_for(self, url: str) -> bool:
        if self._digit_anywhere:
            return False
        hosts = self._digit_hosts
        if hosts is None:
            # First use: decode the host list out of the map.  Keeping it
            # out of the cold skeleton matters — for host-heavy oracles
            # it is the same order of magnitude as the key vocabulary.
            blob = self._digit_blob
            if blob is None:
                raise _image_error(
                    "oracle image is closed; cannot decode its digit hosts"
                )
            text = bytes(blob).decode("utf-8")
            hosts = self._digit_hosts = tuple(text.split("\n")) if text else ()
        if not hosts:
            return True
        lowered = url.lower()
        return not any(host in lowered for host in hosts)

    # -- mutation is a compile-time activity -------------------------------
    def add_list(self, parsed) -> None:
        raise _image_error(
            "oracle images are immutable: update the list text and "
            "recompile the artifact instead of mutating a mapped matcher"
        )

    def add_rules(self, rules) -> None:
        self.add_list(rules)

    # -- matching (same decision path as FilterMatcher) --------------------
    def match(self, context: RequestContext) -> MatchResult:
        shape = RequestShape(context.url, self._automaton)
        if shape.match_url is not context.url:
            context = replace(context, url=shape.match_url)
        blocking = self._blocking.first_match(context, shape)
        if blocking is None:
            return _NO_MATCH
        exception = self._exceptions.first_match(context, shape)
        if exception is not None:
            return MatchResult(blocked=False, rule=blocking, exception=exception)
        return MatchResult(blocked=True, rule=blocking)

    def match_many(
        self, contexts: Iterable[RequestContext]
    ) -> list[MatchResult]:
        automaton = self._automaton
        blocking_index = self._blocking
        exception_index = self._exceptions
        results: list[MatchResult] = []
        append = results.append
        for context in contexts:
            shape = RequestShape(context.url, automaton)
            if shape.match_url is not context.url:
                context = replace(context, url=shape.match_url)
            blocking = blocking_index.first_match(context, shape)
            if blocking is None:
                append(_NO_MATCH)
                continue
            exception = exception_index.first_match(context, shape)
            if exception is not None:
                append(
                    MatchResult(
                        blocked=False, rule=blocking, exception=exception
                    )
                )
                continue
            append(MatchResult(blocked=True, rule=blocking))
        return results

    def decide_many(self, urls: Iterable[str]) -> list[MatchResult]:
        automaton = self._automaton
        blocking_index = self._blocking
        exception_index = self._exceptions
        no_catch_all = blocking_index.catch_all_empty
        results: list[MatchResult] = []
        append = results.append
        for url in urls:
            shape = RequestShape(url, automaton)
            if no_catch_all and not shape.host_keys and not shape.tokens:
                append(_NO_MATCH)
                continue
            context = RequestContext(url=shape.match_url)
            blocking = blocking_index.first_match(context, shape)
            if blocking is None:
                append(_NO_MATCH)
                continue
            exception = exception_index.first_match(context, shape)
            if exception is not None:
                append(
                    MatchResult(
                        blocked=False, rule=blocking, exception=exception
                    )
                )
                continue
            append(MatchResult(blocked=True, rule=blocking))
        return results

    def should_block(self, context: RequestContext) -> bool:
        return self.match(context).blocked

    def should_block_url(self, url: str) -> bool:
        return self.match(RequestContext(url=url)).blocked


def _section_bounds(span, body_len: int) -> tuple[int, int]:
    offset, length = int(span[0]), int(span[1])
    if offset < 0 or length < 0 or offset + length > body_len:
        raise _image_error(
            f"oracle image section [{offset}, {length}] escapes the "
            f"{body_len}-byte section body"
        )
    return offset, offset + length
