"""The TrackerSift test oracle: filter lists label each request.

Section 3 of the paper: "network requests that match EasyList or
EasyPrivacy are classified as tracking, otherwise they are classified as
functional."  The oracle wraps a :class:`FilterMatcher` built from both
lists and returns a :class:`Label` plus provenance (which list / rule
matched) for measurement purposes.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable

from ..urlkit import hostname, is_third_party
from .cache import CachedMatcher, CacheStats
from .lists import default_lists
from .matcher import FilterMatcher, MatchResult
from .parser import ParsedList
from .rules import RequestContext, ResourceType

__all__ = ["Label", "LabeledRequest", "FilterListOracle"]


class Label(str, Enum):
    """The two behaviours TrackerSift distinguishes."""

    TRACKING = "tracking"
    FUNCTIONAL = "functional"

    @property
    def is_tracking(self) -> bool:
        return self is Label.TRACKING


@dataclass(frozen=True, slots=True)
class LabeledRequest:
    """A request URL together with the oracle's verdict and provenance."""

    url: str
    label: Label
    matched_rule: str = ""
    matched_list: str = ""


class FilterListOracle:
    """Labels network requests as tracking or functional.

    By default it combines the embedded EasyList and EasyPrivacy snapshots,
    mirroring the paper's setup.  Custom :class:`ParsedList` instances can
    be supplied (e.g. regional lists, or a single list for ablations).
    """

    def __init__(self, *lists: ParsedList, cache: bool = False) -> None:
        if not lists:
            lists = default_lists()
        self._matcher: FilterMatcher | CachedMatcher = FilterMatcher.from_lists(
            *lists
        )
        # Lazily-built decision cache backing the URL-only convenience
        # queries on an otherwise uncached oracle (see _decision_matcher).
        self._convenience: CachedMatcher | None = None
        if cache:
            self.enable_cache()

    @classmethod
    def from_matcher(
        cls, matcher: FilterMatcher, *, cache: bool = False
    ) -> "FilterListOracle":
        """An oracle over an already-built matcher (no parsing, no index
        construction) — the adoption path for compiled artifacts."""
        oracle = cls.__new__(cls)
        oracle._matcher = matcher
        oracle._convenience = None
        if cache:
            oracle.enable_cache()
        return oracle

    @classmethod
    def from_artifact(
        cls, path: "str | Path", *, cache: bool = False
    ) -> "FilterListOracle":
        """Load a compiled ``.tsoracle`` artifact into a ready oracle.

        This is the fast path the parallel shard workers and the serving
        layer use: validation plus unpickling, with list parsing and
        token/host index construction skipped entirely
        (:mod:`repro.filterlists.compile` defines the format and gates).
        Raises :class:`~repro.filterlists.compile.ArtifactError` for a
        missing, truncated, corrupt or version-mismatched artifact.
        """
        from .compile import load_matcher

        return cls.from_matcher(load_matcher(path), cache=cache)

    def enable_cache(self) -> "FilterListOracle":
        """Memoize match decisions (idempotent); returns ``self``.

        See :mod:`repro.filterlists.cache` for the exactness argument.
        """
        if not isinstance(self._matcher, CachedMatcher):
            self._matcher = CachedMatcher(self._matcher)
            self._convenience = None  # superseded by the main cache
        return self

    def cached_view(self) -> "FilterListOracle":
        """A caching oracle over this oracle's rules, without mutating it.

        The streaming engine labels through a view of whatever oracle it
        is handed, so repeated resources across sites are decided once
        while the caller's oracle keeps its uncached matcher (and its
        mutability) untouched.  An already-cached oracle is shared as-is.
        """
        if isinstance(self._matcher, CachedMatcher):
            return self
        import copy

        view = copy.copy(self)  # keeps subclass identity and all state
        view._matcher = CachedMatcher(self._matcher)
        view._convenience = None  # the view's main matcher now caches
        return view

    def _decision_matcher(self) -> CachedMatcher:
        """The decision cache every convenience query routes through.

        A cache-enabled oracle's own matcher already memoizes; an uncached
        oracle gets a lazily-built side cache over its live rule set, so
        ``should_block_url``-style calls enjoy the same memoization the
        streaming engine's :meth:`cached_view` provides — and, because the
        cache key is the same normalized request shape, repeated URL-only
        lookups collapse exactly like the streaming path's do.  The side
        cache is rebuilt when the underlying matcher was swapped; in-place
        rule additions are caught by :class:`CachedMatcher` itself (it
        watches :attr:`FilterMatcher.revision`), so convenience answers
        always reflect the live rule set.
        """
        if isinstance(self._matcher, CachedMatcher):
            return self._matcher
        if self._convenience is None or self._convenience.wrapped is not self._matcher:
            self._convenience = CachedMatcher(self._matcher)
        return self._convenience

    @property
    def cache_stats(self) -> CacheStats | None:
        """Hit/miss counters when caching is enabled, else ``None``."""
        if isinstance(self._matcher, CachedMatcher):
            return self._matcher.stats
        return None

    @property
    def matcher(self) -> FilterMatcher | CachedMatcher:
        return self._matcher

    @property
    def rule_count(self) -> int:
        return self._matcher.rule_count

    @property
    def unsupported_counts(self) -> dict[str, int]:
        """Rules skipped at indexing time, per unsupported reason — the
        oracle's coverage-gap ledger (surfaced by ``/metrics``)."""
        return self._matcher.unsupported_counts

    @property
    def unsupported_rule_count(self) -> int:
        return self._matcher.unsupported_rule_count

    def _context(
        self,
        url: str,
        resource_type: ResourceType,
        page_url: str,
    ) -> RequestContext:
        page_host = ""
        third_party = True
        if page_url:
            try:
                page_host = hostname(page_url)
                third_party = is_third_party(url, page_url)
            except ValueError:
                page_host = ""
        return RequestContext(
            url=url,
            resource_type=resource_type,
            page_host=page_host,
            third_party=third_party,
        )

    def match(
        self,
        url: str,
        resource_type: ResourceType = ResourceType.OTHER,
        page_url: str = "",
    ) -> MatchResult:
        """Raw ABP match decision for one request."""
        return self._matcher.match(self._context(url, resource_type, page_url))

    def should_block_url(
        self,
        url: str,
        resource_type: ResourceType = ResourceType.OTHER,
        page_url: str = "",
    ) -> bool:
        """URL-only blocking decision, always served through the decision
        cache — a repeated lookup is a cache hit whether or not the oracle
        itself was built with ``cache=True``."""
        return self._decision_matcher().match(
            self._context(url, resource_type, page_url)
        ).blocked

    def label(
        self,
        url: str,
        resource_type: ResourceType = ResourceType.OTHER,
        page_url: str = "",
    ) -> Label:
        """The paper's labeling function: matched => tracking."""
        result = self.match(url, resource_type, page_url)
        return Label.TRACKING if result.blocked else Label.FUNCTIONAL

    def label_request(
        self,
        url: str,
        resource_type: ResourceType = ResourceType.OTHER,
        page_url: str = "",
    ) -> LabeledRequest:
        """Label a request and keep the matched rule for reporting."""
        result = self.match(url, resource_type, page_url)
        return self._to_labeled(url, result)

    @staticmethod
    def _to_labeled(url: str, result: MatchResult) -> LabeledRequest:
        label = Label.TRACKING if result.blocked else Label.FUNCTIONAL
        rule = result.rule
        return LabeledRequest(
            url=url,
            label=label,
            matched_rule=rule.text if rule is not None and result.blocked else "",
            matched_list=rule.list_name if rule is not None and result.blocked else "",
        )

    def decide_many(
        self,
        urls: "Iterable[str]",
        resource_type: ResourceType = ResourceType.OTHER,
        page_url: str = "",
    ) -> list[MatchResult]:
        """Batch :meth:`match` over URLs sharing one request context shape.

        The page context is resolved once for the batch, and the decision
        layer underneath (cached or raw) amortizes its per-call overhead —
        one lock round for a cached oracle instead of two per URL.
        Decision-identical to looping :meth:`match`, including cache
        hit/miss accounting (see :meth:`CachedMatcher.match_many`).
        Subclasses that override :meth:`match` keep their semantics: the
        batch short-circuit only engages on the base implementation.
        """
        urls = list(urls)
        if type(self).match is not FilterListOracle.match:
            return [
                self.match(url, resource_type, page_url) for url in urls
            ]
        contexts = [
            self._context(url, resource_type, page_url) for url in urls
        ]
        return self._matcher.match_many(contexts)

    def label_request_many(
        self,
        requests: "Iterable[tuple[str, ResourceType, str]]",
    ) -> list[LabeledRequest]:
        """Batch :meth:`label_request` over ``(url, resource_type,
        page_url)`` triples — the streaming engine's label loop and the
        serve layer's ``decide_batch`` both drain through here.

        Oracle subclasses stay first-class: when :meth:`label_request` or
        :meth:`match` is overridden, the batch devolves to looping the
        per-request method so custom labeling (e.g. test doubles shipped
        to shard workers) is never silently bypassed.
        """
        items = list(requests)
        cls = type(self)
        if (
            cls.label_request is not FilterListOracle.label_request
            or cls.match is not FilterListOracle.match
        ):
            return [
                self.label_request(url, resource_type, page_url)
                for url, resource_type, page_url in items
            ]
        contexts = [
            self._context(url, resource_type, page_url)
            for url, resource_type, page_url in items
        ]
        results = self._matcher.match_many(contexts)
        return [
            self._to_labeled(item[0], result)
            for item, result in zip(items, results)
        ]
