"""Token-indexed filter matching engine.

Real content blockers never test every rule against every request: rules are
bucketed by a distinguishing literal token and only the buckets whose token
appears in the request URL are consulted.  We implement the same scheme,
which keeps labeling ~O(tokens-in-URL) instead of O(rules) and makes the
100K-site-scale labeling pass tractable.

Exception (``@@``) rules override blocking rules, exactly as in ABP: a
request is *blocked* iff at least one blocking rule matches and no exception
rule matches.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable

from .parser import ParsedList, parse_filter_list
from .rules import NetworkRule, RequestContext

__all__ = ["MatchResult", "FilterMatcher"]

_URL_TOKEN_RE = re.compile(r"[a-z0-9]+")


@dataclass(frozen=True, slots=True)
class MatchResult:
    """Outcome of matching one request against a matcher's rules."""

    blocked: bool
    rule: NetworkRule | None = None
    exception: NetworkRule | None = None

    @property
    def matched(self) -> bool:
        """True when *any* rule (blocking or exception) applied."""
        return self.rule is not None


class _RuleIndex:
    """Token -> rules bucket map with a catch-all bucket."""

    def __init__(self) -> None:
        self._buckets: dict[str, list[NetworkRule]] = {}
        self._catch_all: list[NetworkRule] = []
        self._count = 0

    def add(self, rule: NetworkRule) -> None:
        token = rule.token
        # Short tokens appear in nearly every URL; treating them as
        # catch-all avoids giant useless buckets.
        if len(token) >= 3:
            self._buckets.setdefault(token, []).append(rule)
        else:
            self._catch_all.append(rule)
        self._count += 1

    def __len__(self) -> int:
        return self._count

    def candidates(self, url_tokens: set[str]) -> Iterable[NetworkRule]:
        yield from self._catch_all
        for token in url_tokens:
            bucket = self._buckets.get(token)
            if bucket:
                yield from bucket

    def first_match(
        self, context: RequestContext, url_tokens: set[str]
    ) -> NetworkRule | None:
        for rule in self.candidates(url_tokens):
            if rule.matches(context):
                return rule
        return None


def _url_tokens(url: str) -> set[str]:
    return set(_URL_TOKEN_RE.findall(url.lower()))


class FilterMatcher:
    """Matches requests against one or more parsed filter lists.

    >>> matcher = FilterMatcher.from_text("||tracker.example^", name="mini")
    >>> matcher.match(RequestContext("https://tracker.example/p.js")).blocked
    True
    """

    def __init__(self, rules: Iterable[NetworkRule] = ()) -> None:
        self._blocking = _RuleIndex()
        self._exceptions = _RuleIndex()
        self._lists: list[str] = []
        self.add_rules(rules)

    # -- construction -----------------------------------------------------
    @classmethod
    def from_text(cls, data: str, name: str = "") -> "FilterMatcher":
        matcher = cls()
        matcher.add_list(parse_filter_list(data, name=name))
        return matcher

    @classmethod
    def from_lists(cls, *lists: ParsedList) -> "FilterMatcher":
        matcher = cls()
        for parsed in lists:
            matcher.add_list(parsed)
        return matcher

    def add_list(self, parsed: ParsedList) -> None:
        if parsed.name:
            self._lists.append(parsed.name)
        self.add_rules(parsed.rules)

    def add_rules(self, rules: Iterable[NetworkRule]) -> None:
        for rule in rules:
            if not rule.supported:
                continue
            if rule.is_exception:
                self._exceptions.add(rule)
            else:
                self._blocking.add(rule)

    # -- introspection ----------------------------------------------------
    @property
    def list_names(self) -> tuple[str, ...]:
        return tuple(self._lists)

    @property
    def rule_count(self) -> int:
        return len(self._blocking) + len(self._exceptions)

    # -- matching ----------------------------------------------------------
    def match(self, context: RequestContext) -> MatchResult:
        """Full ABP decision: blocking rule minus exception override."""
        tokens = _url_tokens(context.url)
        blocking = self._blocking.first_match(context, tokens)
        if blocking is None:
            return MatchResult(blocked=False)
        exception = self._exceptions.first_match(context, tokens)
        if exception is not None:
            return MatchResult(blocked=False, rule=blocking, exception=exception)
        return MatchResult(blocked=True, rule=blocking)

    def should_block(self, context: RequestContext) -> bool:
        return self.match(context).blocked

    def should_block_url(self, url: str) -> bool:
        """Convenience wrapper for URL-only matching (default context)."""
        return self.match(RequestContext(url=url)).blocked
