"""Token-automaton filter matching engine.

Real content blockers never test every rule against every request: rules
are bucketed by a distinguishing literal, and only the buckets whose
literal occurs in the request URL are consulted.  Earlier revisions of
this engine found those buckets by *tokenize-then-probe*: split the URL
into maximal alphanumeric runs, then hash-probe the bucket dict once per
run (and once per authority dot-suffix for ``||host^`` rules).  That walk
was the per-decision floor — ~70% of a decision's time was spent
enumerating and probing keys that select no bucket at all.

This revision replaces the walk with a precompiled **Aho-Corasick token
automaton** (:class:`TokenAutomaton`) over the rule corpus's literals:

* **Vocabulary.**  Every token-bucket key (the delimited literal a rule is
  indexed under) plus every pure ``||host^`` literal, across the blocking
  *and* exception indexes.
* **Anchored keys, trivial failure function.**  Every key in the
  vocabulary is boundary-delimited by construction: a bucket token is only
  index-safe when it matches a *whole* alphanumeric run of the URL (see
  :func:`repro.filterlists.rules._extract_token`), and a host literal can
  only match starting at the authority or immediately after a ``.``,
  ending where its non-separator run ends (see :func:`_host_anchor_keys`).
  A mismatch therefore never restarts mid-key — the Aho-Corasick failure
  function collapses to the root — so the goto function alone decides
  membership, and each tier executes it in its cheapest form.  The token
  tier (anchors at every alphanumeric-run boundary) runs the goto trie at
  C speed as a trie-structured regex (one state per trie node,
  alternation = branch, ``?`` = accepting interior node) with the
  boundary conditions expressed as lookaround assertions.  The host tier
  has only a handful of anchors (authority start + one per dot), so it
  resolves each anchor with one hash probe of the key table — anchored
  keys make a probe equivalent to a full trie walk.
* **One scan, candidate buckets out.**  :meth:`TokenAutomaton.scan` makes
  a single pass over the lowered URL and returns exactly the host keys and
  tokens that select a bucket, already deduplicated in URL order.  The
  per-*token* dict probes of the old walk — the expensive part, one per
  alphanumeric run against mostly-absent keys — are gone from the
  per-decision path.

The automaton is constructed when rules are indexed and travels inside
compiled ``.tsoracle`` artifacts (``ARTIFACT_VERSION`` 2 — see
:mod:`repro.filterlists.compile`; older artifacts are rejected loudly).
Its compiled scan patterns follow the same lazy invariant as per-rule
regexes: derived state never serializes, and the patterns materialize on
the first scan in each process.

Candidate iteration is deterministic: host keys and tokens are consulted
in URL order (deduplicated), never in set-hash order, so which rule a
:class:`MatchResult` attributes a block to is stable across interpreter
runs regardless of ``PYTHONHASHSEED``.  The automaton preserves this
bit-for-bit: its hits are reported in ascending match position, which is
provably the same order the tokenize-then-probe walk produced (every
valid key starts at a run boundary, and at most one vocabulary key can be
valid per start position).  The legacy walk is retained behind
``FilterMatcher(automaton=False)`` as the reference implementation; the
equivalence property tests and ``scripts/matcher_smoke.py`` hold the two
decision-identical.

Batch decisions go through :meth:`FilterMatcher.match_many` /
:meth:`FilterMatcher.decide_many`, which amortize per-call overhead
(shape construction stays per-URL, but attribute lookups, result
assembly, and — one layer up — cache lock acquisitions are paid once per
batch).  Quickstart::

    >>> from repro.filterlists.matcher import FilterMatcher
    >>> matcher = FilterMatcher.from_text("||tracker.example^\\n/pixel/*")
    >>> [r.blocked for r in matcher.decide_many([
    ...     "https://tracker.example/a.js",
    ...     "https://safe.example/app.js",
    ...     "https://safe.example/pixel/1.gif",
    ... ])]
    [True, False, True]

Request URLs are matched through a normalized view of their authority
(:class:`RequestShape` strips trailing dots and IDNA-encodes the host,
exactly like :func:`repro.urlkit.url.normalize_host`), so the oracle
agrees with the crawler about which host a request targets —
``||tracker.com^`` blocks ``http://tracker.com./x`` and
``||xn--bcher-kva.example^`` blocks ``http://bücher.example/x``.

Exception (``@@``) rules override blocking rules, exactly as in ABP: a
request is *blocked* iff at least one blocking rule matches and no
exception rule matches.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from typing import Iterable, Iterator, Sequence

from ..urlkit.url import URLError, normalize_host
from .parser import ParsedList, parse_filter_list
from .rules import NetworkRule, RequestContext

__all__ = [
    "MatchResult",
    "FilterMatcher",
    "RequestShape",
    "TokenAutomaton",
]

_URL_TOKEN_RE = re.compile(r"[a-z0-9]+")
# The scheme prefix ``||`` anchors under (lowercased form of _HOST_ANCHOR).
_SCHEME_RE = re.compile(r"^[a-z][a-z0-9.+-]*://")
# First character that ends the authority.
_AUTH_DELIM_RE = re.compile(r"[/?#]")
# Scheme prefix and authority span in one anchored pass — group 1 is the
# authority.  Functionally _SCHEME_RE + _AUTH_DELIM_RE, fused because the
# hot path locates the authority once per decision.
_AUTH_SPAN_RE = re.compile(r"[a-z][a-z0-9.+-]*://([^/?#]*)")
# Maximal runs of non-separator characters inside an authority; the
# complement of the ABP separator class, minus ``/?#`` which end the
# authority (the lowercased view of the class in ``rules._SEPARATOR``).
_AUTH_RUN_RE = re.compile(r"[a-z0-9_\-.%]+")
# Patterns eligible for the host-anchor dict: ``||host^`` with a literal
# hostname body (no wildcards, anchors or separators beyond the trailing one).
_PURE_HOST_RULE_RE = re.compile(r"^\|\|([a-z0-9_\-.%]+)\^$")


def _url_tokens(lowered_url: str) -> tuple[str, ...]:
    """Maximal alphanumeric runs of a *pre-lowercased* URL, deduplicated,
    in URL order — *never* set order, so candidate iteration (and
    therefore rule attribution) is hash-seed independent.  This is the
    reference tokenizer for the ``automaton=False`` walk; the automaton
    path never materializes tokens that select no bucket."""
    seen: set[str] = set()
    ordered: list[str] = []
    for match in _URL_TOKEN_RE.finditer(lowered_url):
        token = match.group()
        if token not in seen:
            seen.add(token)
            ordered.append(token)
    return tuple(ordered)


def _host_anchor_keys(lowered_url: str) -> tuple[str, ...]:
    """Every host literal ``h`` for which ``||h^`` matches this URL.

    Derivation from the compiled form (``rules._HOST_ANCHOR`` + literal +
    ``rules._SEPARATOR``): the match must start right after
    ``scheme://(junk-without-/?#-ending-in-dot)?``, so ``h`` begins at the
    authority's first character or immediately after a ``.``; and the
    character after ``h`` must be a separator or the end, so ``h`` ends
    exactly where a maximal non-separator run ends (hostname characters are
    all non-separators, so ``h`` can never stop mid-run).  The keys are
    therefore: the authority's leading run, plus every dot-suffix of every
    run.  Hash-looking authorities (``user@host``, ports) fall out
    correctly because runs are split on the same separator class the regex
    uses.

    This is the reference enumeration for the ``automaton=False`` walk;
    :meth:`TokenAutomaton.scan` applies the same positional argument as
    lookaround assertions and yields only the keys with a bucket behind
    them.
    """
    scheme = _SCHEME_RE.match(lowered_url)
    if scheme is None:
        return ()
    start = scheme.end()
    delim = _AUTH_DELIM_RE.search(lowered_url, start)
    end = delim.start() if delim is not None else len(lowered_url)
    authority = lowered_url[start:end]
    seen: set[str] = set()
    keys: list[str] = []
    for run_match in _AUTH_RUN_RE.finditer(authority):
        run = run_match.group()
        if run_match.start() == 0 and run not in seen:
            seen.add(run)
            keys.append(run)
        dot = run.find(".")
        while dot != -1:
            suffix = run[dot + 1 :]
            if suffix and suffix not in seen:
                seen.add(suffix)
                keys.append(suffix)
            dot = run.find(".", dot + 1)
    return tuple(keys)


def _trie_pattern(words: Sequence[str]) -> str:
    """A trie-structured regex source matching exactly ``words``.

    The emitted pattern is the automaton's goto function: one nesting
    level per trie node, an alternation per branch, a ``?`` suffix per
    accepting interior node.  Children are emitted in sorted order, so the
    pattern (and everything derived from it) is byte-stable across
    interpreter runs and hash seeds.  Correctness does not depend on
    alternation order: the caller anchors every match with boundary
    lookarounds, and at most one vocabulary word can satisfy them per
    start position, so the engine's backtracking always converges on that
    word when it is present.
    """
    trie: dict = {}
    for word in words:
        node = trie
        for ch in word:
            node = node.setdefault(ch, {})
        node[""] = None  # accepting mark

    def emit(node: dict) -> str:
        accepting = "" in node
        branches: list[str] = []
        leaf_chars: list[str] = []
        for ch in sorted(key for key in node if key != ""):
            sub = emit(node[ch])
            if sub == "":
                leaf_chars.append(re.escape(ch))
            else:
                branches.append(re.escape(ch) + sub)
        if not branches and not leaf_chars:
            return ""  # accepting leaf
        if leaf_chars:
            branches.append(
                leaf_chars[0]
                if len(leaf_chars) == 1
                else "[" + "".join(leaf_chars) + "]"
            )
        body = branches[0] if len(branches) == 1 else "(?:" + "|".join(branches) + ")"
        if accepting:
            return "(?:" + body + ")?"
        return body

    return emit(trie)


class TokenAutomaton:
    """Aho-Corasick automaton over a matcher's rule literals.

    Holds the matcher-wide vocabulary — token-bucket keys and pure-host
    literals from both indexes — as sorted tuples (deterministic
    serialization), and scans a lowered URL in one pass for every
    vocabulary key that is *valid* at its position:

    * a token key must cover a whole maximal alphanumeric run
      (``(?<![a-z0-9])key(?![a-z0-9])``), because that is the only way a
      bucket token can correspond to a URL token;
    * a host key must start at the authority's first character or right
      after a ``.``, and must run to the end of its non-separator run —
      the exact positional characterization of ``||key^`` matching the
      URL, evaluated only over the authority span.  Nested suffix keys
      (``a.b.c`` and ``b.c`` and ``c``) are all reported.

    Because every key is anchored this way, the automaton's failure
    function is trivial (a mismatch can only restart at the next boundary,
    never mid-key), so the goto function alone decides membership — and
    each tier executes it in the form that is cheapest for its anchor
    density.  Token anchors are plentiful (every alphanumeric-run
    boundary), so the token tier runs the goto trie as a trie-structured
    regex at C speed.  Host anchors are scarce and fully enumerable (the
    authority's leading run plus one anchor per ``.`` — never more than a
    handful), so the host tier resolves each anchor with a single hash
    probe of the key table: the anchored-key property means a probe *is*
    a complete trie walk.  Both tiers accept exactly the same language as
    the reference walk.  Hits come back in ascending start position —
    identical to the order the tokenize-then-probe walk consulted buckets
    in, so rule attribution is unchanged bit for bit.

    The compiled scan patterns are derived state: they are dropped on
    pickling (``.tsoracle`` artifacts stay lean and loads stay fast) and
    rebuilt lazily on the first scan in each process, mirroring the lazy
    per-rule regex invariant.
    """

    __slots__ = ("_hosts", "_tokens", "_scanners")

    def __init__(
        self, hosts: Iterable[str] = (), tokens: Iterable[str] = ()
    ) -> None:
        self._hosts: tuple[str, ...] = tuple(sorted(set(hosts)))
        self._tokens: tuple[str, ...] = tuple(sorted(set(tokens)))
        self._scanners: tuple | None = None

    def __getstate__(self) -> tuple:
        # Compiled patterns never travel: like per-rule regexes they are
        # derived state, rebuilt lazily per process.
        return (self._hosts, self._tokens)

    def __setstate__(self, state: tuple) -> None:
        self._hosts, self._tokens = state
        self._scanners = None

    # -- introspection -----------------------------------------------------
    @property
    def host_key_count(self) -> int:
        return len(self._hosts)

    @property
    def token_key_count(self) -> int:
        return len(self._tokens)

    @property
    def vocabulary_size(self) -> int:
        return len(self._hosts) + len(self._tokens)

    @property
    def compiled(self) -> bool:
        """Whether the lazy scan patterns have materialized."""
        return self._scanners is not None

    # -- scanning ----------------------------------------------------------
    def _compile(self) -> tuple:
        # Host tier: the anchored-key property makes one hash probe per
        # anchor a complete goto walk, so the "compiled" form is simply
        # the key table.  Token tier: goto trie as a trie regex.
        host_table = frozenset(self._hosts) if self._hosts else None
        token_pattern = (
            re.compile(
                r"(?<![a-z0-9])(?:%s)(?![a-z0-9])" % _trie_pattern(self._tokens)
            )
            if self._tokens
            else None
        )
        self._scanners = (host_table, token_pattern)
        return self._scanners

    def scan(
        self, lowered_url: str, auth_start: int, auth_end: int
    ) -> tuple[tuple[str, ...], tuple[str, ...]]:
        """One pass over a pre-lowercased URL: ``(host keys, tokens)``.

        ``auth_start``/``auth_end`` delimit the authority (``auth_start``
        < 0 when the URL has no ``scheme://`` and host anchors cannot
        apply).  Both result tuples contain only keys that select a bucket
        in at least one index, deduplicated, in ascending match position —
        the attribution order contract.
        """
        scanners = self._scanners
        if scanners is None:
            scanners = self._compile()
        host_table, token_pattern = scanners
        hosts: tuple[str, ...] = ()
        if auth_start >= 0 and host_table is not None:
            authority = lowered_url[auth_start:auth_end]
            if _AUTH_RUN_RE.fullmatch(authority) is not None:
                # Single-run authority (the overwhelmingly common shape:
                # no userinfo/port/IP-literal): anchors are position 0
                # plus every dot.  Suffixes are distinct by construction.
                hits = [authority] if authority in host_table else []
                dot = authority.find(".")
                while dot != -1:
                    suffix = authority[dot + 1 :]
                    if suffix in host_table:
                        hits.append(suffix)
                    dot = authority.find(".", dot + 1)
                if hits:
                    hosts = tuple(hits)
            else:
                hosts = self._scan_host_runs(authority, host_table)
        tokens: tuple[str, ...] = ()
        if token_pattern is not None:
            found = token_pattern.findall(lowered_url)
            if found:
                tokens = (
                    tuple(found)
                    if len(found) == 1
                    else tuple(dict.fromkeys(found))
                )
        return hosts, tokens

    @staticmethod
    def _scan_host_runs(
        authority: str, host_table: frozenset
    ) -> tuple[str, ...]:
        """Host-anchor probes for authorities with separator characters
        (userinfo, ports, IP literals): the general run-by-run walk of
        :func:`_host_anchor_keys`, filtered through the key table."""
        seen: set[str] = set()
        hits: list[str] = []
        for run_match in _AUTH_RUN_RE.finditer(authority):
            run = run_match.group()
            if run_match.start() == 0 and run in host_table and run not in seen:
                seen.add(run)
                hits.append(run)
            dot = run.find(".")
            while dot != -1:
                suffix = run[dot + 1 :]
                if suffix in host_table and suffix not in seen:
                    seen.add(suffix)
                    hits.append(suffix)
                dot = run.find(".", dot + 1)
        return tuple(hits)


def _normalized_match_url(url: str, lowered: str, start: int, end: int) -> str:
    """The URL as matched: authority host normalized like the crawler's.

    The oracle and the crawler must agree about which host a request
    targets, or rules skew at the boundary: ``urlkit.normalize_host``
    strips trailing dots and IDNA-encodes, so ``||tracker.com^`` must
    block ``http://tracker.com./x`` and ``||xn--bcher-kva.example^`` must
    block ``http://bücher.example/x``.  ``start``/``end`` are the
    authority bounds in ``lowered`` (the caller — :class:`RequestShape` —
    already located them, and has already dismissed the canonical common
    case).  Returns ``url`` itself (identity, so callers can use an
    ``is`` check) when the host turns out canonical after all;
    un-normalizable garbage is matched as-is rather than raising —
    matching never turns a weird URL into an exception.
    """
    if len(lowered) != len(url):
        # Exotic case-folding changed offsets; matching proceeds on the
        # raw URL (the crawler rejects such URLs outright).
        return url
    authority = url[start:end]
    at = authority.rfind("@")
    userinfo, hostport = (
        (authority[: at + 1], authority[at + 1 :]) if at >= 0 else ("", authority)
    )
    host, port = hostport, ""
    if hostport.startswith("["):
        close = hostport.find("]")
        if close >= 0:
            host, port = hostport[: close + 1], hostport[close + 1 :]
    else:
        colon = hostport.rfind(":")
        if colon >= 0 and hostport[colon + 1 :].isdigit():
            host, port = hostport[:colon], hostport[colon:]
    try:
        normalized = normalize_host(host)
    except URLError:
        return url
    if normalized == host:
        return url
    return url[:start] + userinfo + normalized + port + url[end:]


class RequestShape:
    """Per-request view of a URL, computed once and shared by every index.

    Both the blocking and the exception :class:`_RuleIndex` consult the
    same shape, so the URL is normalized, lowercased and scanned exactly
    once per request no matter how many indexes (or lists) the matcher
    holds.  ``match_url`` is the normalized-authority view every pattern
    (host dict, token bucket regex, catch-all) matches against; it *is*
    ``url`` (same object) when the authority was already canonical, so
    callers can detect normalization with an identity check.

    With an ``automaton``, ``host_keys``/``tokens`` hold only the keys
    that select a bucket (one automaton scan); without one they hold the
    full tokenize-then-probe enumeration.  Either way they are
    deduplicated and in URL order — the attribution contract.
    """

    __slots__ = ("url", "match_url", "tokens", "host_keys")

    def __init__(self, url: str, automaton: TokenAutomaton | None = None) -> None:
        self.url = url
        lowered = url.lower()
        span = _AUTH_SPAN_RE.match(lowered)
        if span is None:
            # No scheme: host anchors cannot apply, and there is no
            # authority to normalize.
            self.match_url = url
            auth_start = auth_end = -1
        else:
            auth_start, auth_end = span.span(1)
            # Canonical-authority fast path, all C-level checks: ASCII,
            # no trailing dot anywhere a host could end ("." at authority
            # end or right before a ":port"), and no upper-case authority
            # bytes (whole-string equality first — most URLs are already
            # fully lowercase — slice comparison only as the fallback).
            if (
                lowered.isascii()
                and lowered[auth_end - 1] != "."
                and lowered.find(".:", auth_start, auth_end) < 0
                and (
                    url == lowered
                    or url[auth_start:auth_end] == lowered[auth_start:auth_end]
                )
            ):
                self.match_url = url
            else:
                match_url = _normalized_match_url(
                    url, lowered, auth_start, auth_end
                )
                self.match_url = match_url
                if match_url is not url:
                    # Normalization may shrink the authority (trailing
                    # dots, IDNA): re-derive the lowered view and bounds.
                    lowered = match_url.lower()
                    delim = _AUTH_DELIM_RE.search(lowered, auth_start)
                    auth_end = (
                        delim.start() if delim is not None else len(lowered)
                    )
        if automaton is not None:
            self.host_keys, self.tokens = automaton.scan(
                lowered, auth_start, auth_end
            )
        else:
            self.tokens = _url_tokens(lowered)
            self.host_keys = _host_anchor_keys(lowered)


def _pure_host_literal(rule: NetworkRule) -> str | None:
    """The host literal of a ``||host^`` rule, or ``None`` when the rule
    needs the regex path (wildcards, paths, anchors, ``match-case``)."""
    if rule.options.match_case:
        return None
    match = _PURE_HOST_RULE_RE.match(rule.pattern.lower())
    return match.group(1) if match is not None else None


@dataclass(frozen=True, slots=True)
class MatchResult:
    """Outcome of matching one request against a matcher's rules."""

    blocked: bool
    rule: NetworkRule | None = None
    exception: NetworkRule | None = None

    @property
    def matched(self) -> bool:
        """True when *any* rule (blocking or exception) applied."""
        return self.rule is not None


#: The (immutable) "no rule applied" outcome.  Shared by every miss: the
#: hot path decides far more clean URLs than tracking ones, and a frozen
#: dataclass with all-default fields never needs a fresh allocation.
_NO_MATCH = MatchResult(blocked=False)


class _RuleIndex:
    """Host-literal dict + token buckets + a catch-all bucket.

    Candidate order (and so first-match attribution) is deterministic:
    host-dict hits in the URL's host-key order, then the catch-all bucket,
    then token buckets in URL-token order; insertion order within a bucket.
    The shape's key tuples honour that order whether they came from the
    automaton scan (pre-filtered) or the reference tokenizer (every key),
    so the index itself is agnostic to how candidates were generated.
    """

    def __init__(self) -> None:
        self._hosts: dict[str, list[NetworkRule]] = {}
        self._buckets: dict[str, list[NetworkRule]] = {}
        self._catch_all: list[NetworkRule] = []
        self._count = 0

    def add(self, rule: NetworkRule) -> None:
        host = _pure_host_literal(rule)
        token = rule.token
        if host is not None:
            self._hosts.setdefault(host, []).append(rule)
        # Short tokens appear in nearly every URL; treating them as
        # catch-all avoids giant useless buckets.
        elif len(token) >= 3:
            self._buckets.setdefault(token, []).append(rule)
        else:
            self._catch_all.append(rule)
        self._count += 1

    def __len__(self) -> int:
        return self._count

    @property
    def host_rule_count(self) -> int:
        """Rules served by the host-anchor fast path (introspection)."""
        return sum(len(bucket) for bucket in self._hosts.values())

    def _tiers(
        self, shape: RequestShape
    ) -> Iterator[tuple[list[NetworkRule], bool]]:
        """The single definition of candidate order: ``(bucket,
        pattern_prechecked)`` per tier.  Host-dict hits have their pattern
        match established by the key lookup itself (see
        :func:`_host_anchor_keys`), so only their options remain to check.
        Both :meth:`candidates` and :meth:`first_match` consume this, so
        the deterministic attribution order cannot drift between them.
        """
        for key in shape.host_keys:
            bucket = self._hosts.get(key)
            if bucket:
                yield bucket, True
        if self._catch_all:
            yield self._catch_all, False
        for token in shape.tokens:
            bucket = self._buckets.get(token)
            if bucket:
                yield bucket, False

    def candidates(self, shape: RequestShape) -> Iterator[NetworkRule]:
        for bucket, _ in self._tiers(shape):
            yield from bucket

    def first_match(
        self, context: RequestContext, shape: RequestShape
    ) -> NetworkRule | None:
        hosts = self._hosts
        for key in shape.host_keys:
            bucket = hosts.get(key)
            if bucket:
                for rule in bucket:
                    if rule.options.permits(context):
                        return rule
        for rule in self._catch_all:
            if rule.matches(context):
                return rule
        buckets = self._buckets
        for token in shape.tokens:
            bucket = buckets.get(token)
            if bucket:
                for rule in bucket:
                    if rule.matches(context):
                        return rule
        return None


def _digit_segment(pattern: str) -> str | None:
    """Where this pattern's digits could bite outside a URL's host.

    Returns ``None`` when the pattern has no digits that can match in the
    path/query (digit-run normalization is safe around this rule), the
    anchored host segment when digits appear beyond it in a ``||`` rule
    (normalization is safe except for URLs carrying that host), or ``""``
    when digits can match anywhere (normalization never safe).

    Rationale: a ``||`` rule's host segment — the pattern up to the first
    ``/ ? ^ *`` — can only ever match inside the URL authority, which a
    path-digit normalizer leaves untouched.
    """
    if pattern.startswith("||"):
        body = pattern[2:]
        cut = len(body)
        for index, ch in enumerate(body):
            if ch in "/?^*":
                cut = index
                break
        if any(c.isdigit() for c in body[cut:]):
            host = body[:cut].lower()
            return host if host else ""
        return None
    if any(c.isdigit() for c in pattern.lstrip("|")):
        return ""
    return None


class FilterMatcher:
    """Matches requests against one or more parsed filter lists.

    >>> matcher = FilterMatcher.from_text("||tracker.example^", name="mini")
    >>> matcher.match(RequestContext("https://tracker.example/p.js")).blocked
    True

    ``automaton=False`` keeps the tokenize-then-probe walk as the decision
    path — the reference implementation the automaton is benchmarked and
    property-tested against.  Both modes are decision- and
    attribution-identical by construction.
    """

    def __init__(
        self, rules: Iterable[NetworkRule] = (), *, automaton: bool = True
    ) -> None:
        self._blocking = _RuleIndex()
        self._exceptions = _RuleIndex()
        self._lists: list[str] = []
        self._domain_sensitive = False
        self._digit_anywhere = False
        self._digit_hosts: set[str] = set()
        self._revision = 0
        self._automaton_enabled = automaton
        self._automaton: TokenAutomaton | None = None
        self._unsupported_counts: dict[str, int] = {}
        self._unsupported_rules = 0
        self.add_rules(rules)

    # -- construction -----------------------------------------------------
    @classmethod
    def from_text(
        cls, data: str, name: str = "", *, automaton: bool = True
    ) -> "FilterMatcher":
        matcher = cls(automaton=automaton)
        matcher.add_list(parse_filter_list(data, name=name))
        return matcher

    @classmethod
    def from_lists(
        cls, *lists: ParsedList, automaton: bool = True
    ) -> "FilterMatcher":
        matcher = cls(automaton=automaton)
        for parsed in lists:
            matcher.add_list(parsed)
        return matcher

    def add_list(self, parsed: ParsedList) -> None:
        if parsed.name:
            self._lists.append(parsed.name)
        self.add_rules(parsed.rules)

    def add_rules(self, rules: Iterable[NetworkRule]) -> None:
        self._revision += 1
        unsupported = self._unsupported_counts
        for rule in rules:
            if not rule.supported:
                # Skipped, exactly like real blockers skip options they do
                # not implement — but never silently: every skip is
                # accounted per reason (see ``unsupported_counts``).
                self._unsupported_rules += 1
                for reason in rule.options.unsupported:
                    unsupported[reason] = unsupported.get(reason, 0) + 1
                continue
            if rule.options.include_domains or rule.options.exclude_domains:
                self._domain_sensitive = True
            segment = _digit_segment(rule.pattern)
            if segment == "":
                self._digit_anywhere = True
            elif segment is not None:
                self._digit_hosts.add(segment)
            if rule.is_exception:
                self._exceptions.add(rule)
            else:
                self._blocking.add(rule)
        if self._automaton_enabled:
            self._automaton = TokenAutomaton(
                hosts=list(self._blocking._hosts) + list(self._exceptions._hosts),
                tokens=list(self._blocking._buckets)
                + list(self._exceptions._buckets),
            )

    # -- introspection ----------------------------------------------------
    @property
    def list_names(self) -> tuple[str, ...]:
        return tuple(self._lists)

    @property
    def rule_count(self) -> int:
        return len(self._blocking) + len(self._exceptions)

    @property
    def revision(self) -> int:
        """Bumped on every rule addition — lets external decision caches
        (e.g. the oracle's URL-only convenience cache) detect in-place
        mutation and invalidate themselves."""
        return self._revision

    @property
    def fast_path_rule_count(self) -> int:
        """Rules matched via the host-anchor dict, never by regex."""
        return (
            self._blocking.host_rule_count + self._exceptions.host_rule_count
        )

    @property
    def automaton(self) -> TokenAutomaton | None:
        """The candidate-generation automaton (``None`` in walk mode)."""
        return self._automaton

    @property
    def automaton_enabled(self) -> bool:
        return self._automaton_enabled

    @property
    def unsupported_counts(self) -> dict[str, int]:
        """Rules skipped at indexing time, counted per unsupported reason.

        A rule carrying several unsupported markers counts once per
        reason; ``unsupported_rule_count`` is the per-rule total.  This is
        the coverage-gap ledger surfaced by ``ParsedList``, ``trackersift
        compile`` and the serve ``/metrics`` payload — silent rule drops
        are how oracles quietly under-block.
        """
        return dict(self._unsupported_counts)

    @property
    def unsupported_rule_count(self) -> int:
        """How many rules were skipped as unsupported (deduplicated)."""
        return self._unsupported_rules

    @property
    def domain_sensitive(self) -> bool:
        """True when any loaded rule carries ``domain=`` options.

        When False, the match decision provably ignores
        ``RequestContext.page_host`` (it is only ever read by the
        ``domain=`` checks in :meth:`RuleOptions.permits`), so a decision
        cache may drop the page host from its key — the property the
        memoized labeling path (:mod:`repro.filterlists.cache`) relies on
        for cross-site hits.
        """
        return self._domain_sensitive

    def digit_runs_irrelevant_for(self, url: str) -> bool:
        """May a cache collapse digit runs in this URL's path and query?

        True when no loaded rule's decision on ``url`` can depend on which
        digits its path carries: digit runs are never ABP separators, a
        digit-free literal cannot overlap one, and the only rules with
        path-reachable digits are host-anchored ones whose host segment
        does not occur in ``url``.  :mod:`repro.filterlists.cache` uses
        this to merge e.g. ``/pixel/207.gif`` and ``/pixel/501.gif`` into
        one memoized decision.
        """
        if self._digit_anywhere:
            return False
        if not self._digit_hosts:
            return True
        lowered = url.lower()
        return not any(host in lowered for host in self._digit_hosts)

    # -- matching ----------------------------------------------------------
    def match(self, context: RequestContext) -> MatchResult:
        """Full ABP decision: blocking rule minus exception override."""
        shape = RequestShape(context.url, self._automaton)
        if shape.match_url is not context.url:
            # Authority normalization changed the URL: every pattern
            # (including per-rule regexes) must see the normalized view.
            context = replace(context, url=shape.match_url)
        blocking = self._blocking.first_match(context, shape)
        if blocking is None:
            return _NO_MATCH
        exception = self._exceptions.first_match(context, shape)
        if exception is not None:
            return MatchResult(blocked=False, rule=blocking, exception=exception)
        return MatchResult(blocked=True, rule=blocking)

    def match_many(
        self, contexts: Iterable[RequestContext]
    ) -> list[MatchResult]:
        """Batch :meth:`match`: one result per context, same order.

        Decision-identical to looping :meth:`match`; per-call overhead
        (attribute lookups, automaton/index binding) is paid once for the
        whole batch.  This is the layer :class:`~repro.filterlists.cache.
        CachedMatcher` and the oracle's ``decide_many`` build on.
        """
        automaton = self._automaton
        blocking_index = self._blocking
        exception_index = self._exceptions
        results: list[MatchResult] = []
        append = results.append
        for context in contexts:
            shape = RequestShape(context.url, automaton)
            if shape.match_url is not context.url:
                context = replace(context, url=shape.match_url)
            blocking = blocking_index.first_match(context, shape)
            if blocking is None:
                append(_NO_MATCH)
                continue
            exception = exception_index.first_match(context, shape)
            if exception is not None:
                append(
                    MatchResult(
                        blocked=False, rule=blocking, exception=exception
                    )
                )
                continue
            append(MatchResult(blocked=True, rule=blocking))
        return results

    def decide_many(self, urls: Iterable[str]) -> list[MatchResult]:
        """Batch URL-only decisions (default request context per URL).

        Beyond :meth:`match_many`'s amortization this path skips
        :class:`RequestContext` construction — and the index walks
        entirely — for URLs whose automaton scan produced no candidate
        keys at all.  With an empty catch-all tier such a URL cannot
        match *any* blocking rule (every bucket the walk would visit is
        absent), so the decision is ``_NO_MATCH`` by construction;
        exceptions never matter when no blocking rule fires.
        """
        automaton = self._automaton
        blocking_index = self._blocking
        exception_index = self._exceptions
        no_catch_all = not blocking_index._catch_all
        results: list[MatchResult] = []
        append = results.append
        for url in urls:
            shape = RequestShape(url, automaton)
            if no_catch_all and not shape.host_keys and not shape.tokens:
                append(_NO_MATCH)
                continue
            context = RequestContext(url=shape.match_url)
            blocking = blocking_index.first_match(context, shape)
            if blocking is None:
                append(_NO_MATCH)
                continue
            exception = exception_index.first_match(context, shape)
            if exception is not None:
                append(
                    MatchResult(
                        blocked=False, rule=blocking, exception=exception
                    )
                )
                continue
            append(MatchResult(blocked=True, rule=blocking))
        return results

    def should_block(self, context: RequestContext) -> bool:
        return self.match(context).blocked

    def should_block_url(self, url: str) -> bool:
        """Convenience wrapper for URL-only matching (default context)."""
        return self.match(RequestContext(url=url)).blocked
