"""Token-indexed filter matching engine.

Real content blockers never test every rule against every request: rules are
bucketed by a distinguishing literal token and only the buckets whose token
appears in the request URL are consulted.  We implement the same scheme,
which keeps labeling ~O(tokens-in-URL) instead of O(rules) and makes the
100K-site-scale labeling pass tractable.

Exception (``@@``) rules override blocking rules, exactly as in ABP: a
request is *blocked* iff at least one blocking rule matches and no exception
rule matches.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable

from .parser import ParsedList, parse_filter_list
from .rules import NetworkRule, RequestContext

__all__ = ["MatchResult", "FilterMatcher"]

_URL_TOKEN_RE = re.compile(r"[a-z0-9]+")


@dataclass(frozen=True, slots=True)
class MatchResult:
    """Outcome of matching one request against a matcher's rules."""

    blocked: bool
    rule: NetworkRule | None = None
    exception: NetworkRule | None = None

    @property
    def matched(self) -> bool:
        """True when *any* rule (blocking or exception) applied."""
        return self.rule is not None


class _RuleIndex:
    """Token -> rules bucket map with a catch-all bucket."""

    def __init__(self) -> None:
        self._buckets: dict[str, list[NetworkRule]] = {}
        self._catch_all: list[NetworkRule] = []
        self._count = 0

    def add(self, rule: NetworkRule) -> None:
        token = rule.token
        # Short tokens appear in nearly every URL; treating them as
        # catch-all avoids giant useless buckets.
        if len(token) >= 3:
            self._buckets.setdefault(token, []).append(rule)
        else:
            self._catch_all.append(rule)
        self._count += 1

    def __len__(self) -> int:
        return self._count

    def candidates(self, url_tokens: set[str]) -> Iterable[NetworkRule]:
        yield from self._catch_all
        for token in url_tokens:
            bucket = self._buckets.get(token)
            if bucket:
                yield from bucket

    def first_match(
        self, context: RequestContext, url_tokens: set[str]
    ) -> NetworkRule | None:
        for rule in self.candidates(url_tokens):
            if rule.matches(context):
                return rule
        return None


def _url_tokens(url: str) -> set[str]:
    return set(_URL_TOKEN_RE.findall(url.lower()))


def _digit_segment(pattern: str) -> str | None:
    """Where this pattern's digits could bite outside a URL's host.

    Returns ``None`` when the pattern has no digits that can match in the
    path/query (digit-run normalization is safe around this rule), the
    anchored host segment when digits appear beyond it in a ``||`` rule
    (normalization is safe except for URLs carrying that host), or ``""``
    when digits can match anywhere (normalization never safe).

    Rationale: a ``||`` rule's host segment — the pattern up to the first
    ``/ ? ^ *`` — can only ever match inside the URL authority, which a
    path-digit normalizer leaves untouched.
    """
    if pattern.startswith("||"):
        body = pattern[2:]
        cut = len(body)
        for index, ch in enumerate(body):
            if ch in "/?^*":
                cut = index
                break
        if any(c.isdigit() for c in body[cut:]):
            host = body[:cut].lower()
            return host if host else ""
        return None
    if any(c.isdigit() for c in pattern.lstrip("|")):
        return ""
    return None


class FilterMatcher:
    """Matches requests against one or more parsed filter lists.

    >>> matcher = FilterMatcher.from_text("||tracker.example^", name="mini")
    >>> matcher.match(RequestContext("https://tracker.example/p.js")).blocked
    True
    """

    def __init__(self, rules: Iterable[NetworkRule] = ()) -> None:
        self._blocking = _RuleIndex()
        self._exceptions = _RuleIndex()
        self._lists: list[str] = []
        self._domain_sensitive = False
        self._digit_anywhere = False
        self._digit_hosts: set[str] = set()
        self.add_rules(rules)

    # -- construction -----------------------------------------------------
    @classmethod
    def from_text(cls, data: str, name: str = "") -> "FilterMatcher":
        matcher = cls()
        matcher.add_list(parse_filter_list(data, name=name))
        return matcher

    @classmethod
    def from_lists(cls, *lists: ParsedList) -> "FilterMatcher":
        matcher = cls()
        for parsed in lists:
            matcher.add_list(parsed)
        return matcher

    def add_list(self, parsed: ParsedList) -> None:
        if parsed.name:
            self._lists.append(parsed.name)
        self.add_rules(parsed.rules)

    def add_rules(self, rules: Iterable[NetworkRule]) -> None:
        for rule in rules:
            if not rule.supported:
                continue
            if rule.options.include_domains or rule.options.exclude_domains:
                self._domain_sensitive = True
            segment = _digit_segment(rule.pattern)
            if segment == "":
                self._digit_anywhere = True
            elif segment is not None:
                self._digit_hosts.add(segment)
            if rule.is_exception:
                self._exceptions.add(rule)
            else:
                self._blocking.add(rule)

    # -- introspection ----------------------------------------------------
    @property
    def list_names(self) -> tuple[str, ...]:
        return tuple(self._lists)

    @property
    def rule_count(self) -> int:
        return len(self._blocking) + len(self._exceptions)

    @property
    def domain_sensitive(self) -> bool:
        """True when any loaded rule carries ``domain=`` options.

        When False, the match decision provably ignores
        ``RequestContext.page_host`` (it is only ever read by the
        ``domain=`` checks in :meth:`RuleOptions.permits`), so a decision
        cache may drop the page host from its key — the property the
        memoized labeling path (:mod:`repro.filterlists.cache`) relies on
        for cross-site hits.
        """
        return self._domain_sensitive

    def digit_runs_irrelevant_for(self, url: str) -> bool:
        """May a cache collapse digit runs in this URL's path and query?

        True when no loaded rule's decision on ``url`` can depend on which
        digits its path carries: digit runs are never ABP separators, a
        digit-free literal cannot overlap one, and the only rules with
        path-reachable digits are host-anchored ones whose host segment
        does not occur in ``url``.  :mod:`repro.filterlists.cache` uses
        this to merge e.g. ``/pixel/207.gif`` and ``/pixel/501.gif`` into
        one memoized decision.
        """
        if self._digit_anywhere:
            return False
        if not self._digit_hosts:
            return True
        lowered = url.lower()
        return not any(host in lowered for host in self._digit_hosts)

    # -- matching ----------------------------------------------------------
    def match(self, context: RequestContext) -> MatchResult:
        """Full ABP decision: blocking rule minus exception override."""
        tokens = _url_tokens(context.url)
        blocking = self._blocking.first_match(context, tokens)
        if blocking is None:
            return MatchResult(blocked=False)
        exception = self._exceptions.first_match(context, tokens)
        if exception is not None:
            return MatchResult(blocked=False, rule=blocking, exception=exception)
        return MatchResult(blocked=True, rule=blocking)

    def should_block(self, context: RequestContext) -> bool:
        return self.match(context).blocked

    def should_block_url(self, url: str) -> bool:
        """Convenience wrapper for URL-only matching (default context)."""
        return self.match(RequestContext(url=url)).blocked
