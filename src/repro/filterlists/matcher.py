"""Token-indexed filter matching engine.

Real content blockers never test every rule against every request: rules are
bucketed by a distinguishing literal token and only the buckets whose token
appears in the request URL are consulted.  We implement the same scheme,
which keeps labeling ~O(tokens-in-URL) instead of O(rules) and makes the
100K-site-scale labeling pass tractable.

Two fast paths sit on top of the token index:

* **Host-anchor dict.**  Pure ``||host^`` rules — the bulk of a real list —
  are matched by hash lookup on the URL's host-anchor keys instead of by
  regex (see :func:`_host_anchor_keys` for the exact-equivalence argument),
  so they never compile or run a regex at all.
* **Per-request shape reuse.**  The URL's tokens and host keys are computed
  once per request (:class:`RequestShape`) and shared by the blocking and
  exception indexes, instead of being re-derived per index.

Candidate iteration is deterministic: host keys and tokens are consulted in
URL order (deduplicated), never in set-hash order, so which rule a
:class:`MatchResult` attributes a block to is stable across interpreter
runs regardless of ``PYTHONHASHSEED`` — the same guarantee the simulation
seeds give (``repro.stablehash``).

Exception (``@@``) rules override blocking rules, exactly as in ABP: a
request is *blocked* iff at least one blocking rule matches and no exception
rule matches.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Iterator

from .parser import ParsedList, parse_filter_list
from .rules import NetworkRule, RequestContext

__all__ = ["MatchResult", "FilterMatcher", "RequestShape"]

_URL_TOKEN_RE = re.compile(r"[a-z0-9]+")
# The scheme prefix ``||`` anchors under (lowercased form of _HOST_ANCHOR).
_SCHEME_RE = re.compile(r"^[a-z][a-z0-9.+-]*://")
# Maximal runs of non-separator characters inside an authority; the
# complement of the ABP separator class, minus ``/?#`` which end the
# authority (the lowercased view of the class in ``rules._SEPARATOR``).
_AUTH_RUN_RE = re.compile(r"[a-z0-9_\-.%]+")
# Patterns eligible for the host-anchor dict: ``||host^`` with a literal
# hostname body (no wildcards, anchors or separators beyond the trailing one).
_PURE_HOST_RULE_RE = re.compile(r"^\|\|([a-z0-9_\-.%]+)\^$")


def _url_tokens(lowered_url: str) -> tuple[str, ...]:
    """Maximal alphanumeric runs of a *pre-lowercased* URL, deduplicated,
    in URL order — *never* set order, so candidate iteration (and
    therefore rule attribution) is hash-seed independent.  The caller
    lowers once (:class:`RequestShape`); this is the labeling hot path,
    so no second copy is made here."""
    seen: set[str] = set()
    ordered: list[str] = []
    for match in _URL_TOKEN_RE.finditer(lowered_url):
        token = match.group()
        if token not in seen:
            seen.add(token)
            ordered.append(token)
    return tuple(ordered)


def _host_anchor_keys(lowered_url: str) -> tuple[str, ...]:
    """Every host literal ``h`` for which ``||h^`` matches this URL.

    Derivation from the compiled form (``rules._HOST_ANCHOR`` + literal +
    ``rules._SEPARATOR``): the match must start right after
    ``scheme://(junk-without-/?#-ending-in-dot)?``, so ``h`` begins at the
    authority's first character or immediately after a ``.``; and the
    character after ``h`` must be a separator or the end, so ``h`` ends
    exactly where a maximal non-separator run ends (hostname characters are
    all non-separators, so ``h`` can never stop mid-run).  The keys are
    therefore: the authority's leading run, plus every dot-suffix of every
    run.  Hash-looking authorities (``user@host``, ports) fall out
    correctly because runs are split on the same separator class the regex
    uses.
    """
    scheme = _SCHEME_RE.match(lowered_url)
    if scheme is None:
        return ()
    start = scheme.end()
    end = len(lowered_url)
    for index in range(start, len(lowered_url)):
        if lowered_url[index] in "/?#":
            end = index
            break
    authority = lowered_url[start:end]
    seen: set[str] = set()
    keys: list[str] = []
    for run_match in _AUTH_RUN_RE.finditer(authority):
        run = run_match.group()
        if run_match.start() == 0 and run not in seen:
            seen.add(run)
            keys.append(run)
        dot = run.find(".")
        while dot != -1:
            suffix = run[dot + 1 :]
            if suffix and suffix not in seen:
                seen.add(suffix)
                keys.append(suffix)
            dot = run.find(".", dot + 1)
    return tuple(keys)


class RequestShape:
    """Per-request view of a URL, computed once and shared by every index.

    Both the blocking and the exception :class:`_RuleIndex` consult the same
    shape, so the URL is lowercased and tokenized exactly once per request
    no matter how many indexes (or lists) the matcher holds.
    """

    __slots__ = ("url", "tokens", "host_keys")

    def __init__(self, url: str) -> None:
        lowered = url.lower()
        self.url = url
        self.tokens = _url_tokens(lowered)
        self.host_keys = _host_anchor_keys(lowered)


def _pure_host_literal(rule: NetworkRule) -> str | None:
    """The host literal of a ``||host^`` rule, or ``None`` when the rule
    needs the regex path (wildcards, paths, anchors, ``match-case``)."""
    if rule.options.match_case:
        return None
    match = _PURE_HOST_RULE_RE.match(rule.pattern.lower())
    return match.group(1) if match is not None else None


@dataclass(frozen=True, slots=True)
class MatchResult:
    """Outcome of matching one request against a matcher's rules."""

    blocked: bool
    rule: NetworkRule | None = None
    exception: NetworkRule | None = None

    @property
    def matched(self) -> bool:
        """True when *any* rule (blocking or exception) applied."""
        return self.rule is not None


class _RuleIndex:
    """Host-literal dict + token buckets + a catch-all bucket.

    Candidate order (and so first-match attribution) is deterministic:
    host-dict hits in the URL's host-key order, then the catch-all bucket,
    then token buckets in URL-token order; insertion order within a bucket.
    """

    def __init__(self) -> None:
        self._hosts: dict[str, list[NetworkRule]] = {}
        self._buckets: dict[str, list[NetworkRule]] = {}
        self._catch_all: list[NetworkRule] = []
        self._count = 0

    def add(self, rule: NetworkRule) -> None:
        host = _pure_host_literal(rule)
        token = rule.token
        if host is not None:
            self._hosts.setdefault(host, []).append(rule)
        # Short tokens appear in nearly every URL; treating them as
        # catch-all avoids giant useless buckets.
        elif len(token) >= 3:
            self._buckets.setdefault(token, []).append(rule)
        else:
            self._catch_all.append(rule)
        self._count += 1

    def __len__(self) -> int:
        return self._count

    @property
    def host_rule_count(self) -> int:
        """Rules served by the host-anchor fast path (introspection)."""
        return sum(len(bucket) for bucket in self._hosts.values())

    def _tiers(
        self, shape: RequestShape
    ) -> Iterator[tuple[list[NetworkRule], bool]]:
        """The single definition of candidate order: ``(bucket,
        pattern_prechecked)`` per tier.  Host-dict hits have their pattern
        match established by the key lookup itself (see
        :func:`_host_anchor_keys`), so only their options remain to check.
        Both :meth:`candidates` and :meth:`first_match` consume this, so
        the deterministic attribution order cannot drift between them.
        """
        for key in shape.host_keys:
            bucket = self._hosts.get(key)
            if bucket:
                yield bucket, True
        if self._catch_all:
            yield self._catch_all, False
        for token in shape.tokens:
            bucket = self._buckets.get(token)
            if bucket:
                yield bucket, False

    def candidates(self, shape: RequestShape) -> Iterator[NetworkRule]:
        for bucket, _ in self._tiers(shape):
            yield from bucket

    def first_match(
        self, context: RequestContext, shape: RequestShape
    ) -> NetworkRule | None:
        for bucket, prechecked in self._tiers(shape):
            for rule in bucket:
                if prechecked:
                    if rule.options.permits(context):
                        return rule
                elif rule.matches(context):
                    return rule
        return None


def _digit_segment(pattern: str) -> str | None:
    """Where this pattern's digits could bite outside a URL's host.

    Returns ``None`` when the pattern has no digits that can match in the
    path/query (digit-run normalization is safe around this rule), the
    anchored host segment when digits appear beyond it in a ``||`` rule
    (normalization is safe except for URLs carrying that host), or ``""``
    when digits can match anywhere (normalization never safe).

    Rationale: a ``||`` rule's host segment — the pattern up to the first
    ``/ ? ^ *`` — can only ever match inside the URL authority, which a
    path-digit normalizer leaves untouched.
    """
    if pattern.startswith("||"):
        body = pattern[2:]
        cut = len(body)
        for index, ch in enumerate(body):
            if ch in "/?^*":
                cut = index
                break
        if any(c.isdigit() for c in body[cut:]):
            host = body[:cut].lower()
            return host if host else ""
        return None
    if any(c.isdigit() for c in pattern.lstrip("|")):
        return ""
    return None


class FilterMatcher:
    """Matches requests against one or more parsed filter lists.

    >>> matcher = FilterMatcher.from_text("||tracker.example^", name="mini")
    >>> matcher.match(RequestContext("https://tracker.example/p.js")).blocked
    True
    """

    def __init__(self, rules: Iterable[NetworkRule] = ()) -> None:
        self._blocking = _RuleIndex()
        self._exceptions = _RuleIndex()
        self._lists: list[str] = []
        self._domain_sensitive = False
        self._digit_anywhere = False
        self._digit_hosts: set[str] = set()
        self._revision = 0
        self.add_rules(rules)

    # -- construction -----------------------------------------------------
    @classmethod
    def from_text(cls, data: str, name: str = "") -> "FilterMatcher":
        matcher = cls()
        matcher.add_list(parse_filter_list(data, name=name))
        return matcher

    @classmethod
    def from_lists(cls, *lists: ParsedList) -> "FilterMatcher":
        matcher = cls()
        for parsed in lists:
            matcher.add_list(parsed)
        return matcher

    def add_list(self, parsed: ParsedList) -> None:
        if parsed.name:
            self._lists.append(parsed.name)
        self.add_rules(parsed.rules)

    def add_rules(self, rules: Iterable[NetworkRule]) -> None:
        self._revision += 1
        for rule in rules:
            if not rule.supported:
                continue
            if rule.options.include_domains or rule.options.exclude_domains:
                self._domain_sensitive = True
            segment = _digit_segment(rule.pattern)
            if segment == "":
                self._digit_anywhere = True
            elif segment is not None:
                self._digit_hosts.add(segment)
            if rule.is_exception:
                self._exceptions.add(rule)
            else:
                self._blocking.add(rule)

    # -- introspection ----------------------------------------------------
    @property
    def list_names(self) -> tuple[str, ...]:
        return tuple(self._lists)

    @property
    def rule_count(self) -> int:
        return len(self._blocking) + len(self._exceptions)

    @property
    def revision(self) -> int:
        """Bumped on every rule addition — lets external decision caches
        (e.g. the oracle's URL-only convenience cache) detect in-place
        mutation and invalidate themselves."""
        return self._revision

    @property
    def fast_path_rule_count(self) -> int:
        """Rules matched via the host-anchor dict, never by regex."""
        return (
            self._blocking.host_rule_count + self._exceptions.host_rule_count
        )

    @property
    def domain_sensitive(self) -> bool:
        """True when any loaded rule carries ``domain=`` options.

        When False, the match decision provably ignores
        ``RequestContext.page_host`` (it is only ever read by the
        ``domain=`` checks in :meth:`RuleOptions.permits`), so a decision
        cache may drop the page host from its key — the property the
        memoized labeling path (:mod:`repro.filterlists.cache`) relies on
        for cross-site hits.
        """
        return self._domain_sensitive

    def digit_runs_irrelevant_for(self, url: str) -> bool:
        """May a cache collapse digit runs in this URL's path and query?

        True when no loaded rule's decision on ``url`` can depend on which
        digits its path carries: digit runs are never ABP separators, a
        digit-free literal cannot overlap one, and the only rules with
        path-reachable digits are host-anchored ones whose host segment
        does not occur in ``url``.  :mod:`repro.filterlists.cache` uses
        this to merge e.g. ``/pixel/207.gif`` and ``/pixel/501.gif`` into
        one memoized decision.
        """
        if self._digit_anywhere:
            return False
        if not self._digit_hosts:
            return True
        lowered = url.lower()
        return not any(host in lowered for host in self._digit_hosts)

    # -- matching ----------------------------------------------------------
    def match(self, context: RequestContext) -> MatchResult:
        """Full ABP decision: blocking rule minus exception override."""
        shape = RequestShape(context.url)
        blocking = self._blocking.first_match(context, shape)
        if blocking is None:
            return MatchResult(blocked=False)
        exception = self._exceptions.first_match(context, shape)
        if exception is not None:
            return MatchResult(blocked=False, rule=blocking, exception=exception)
        return MatchResult(blocked=True, rule=blocking)

    def should_block(self, context: RequestContext) -> bool:
        return self.match(context).blocked

    def should_block_url(self, url: str) -> bool:
        """Convenience wrapper for URL-only matching (default context)."""
        return self.match(RequestContext(url=url)).blocked
