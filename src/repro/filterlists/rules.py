"""Adblock Plus network-rule model.

EasyList and EasyPrivacy are written in the Adblock Plus filter syntax.
TrackerSift uses them as its *test oracle*: a network request that matches a
blocking rule (and no exception rule) is labeled tracking.  This module
models a single network rule and compiles its pattern to a regular
expression lazily, on the first match attempt.  Laziness matters at list
scale: the token-indexed matcher only ever consults the handful of rules
whose bucket a URL selects, and pure host-anchor rules (the bulk of a real
list) are matched by hash lookup without touching a regex at all — so most
of a large list's rules never pay compilation, which is what keeps matcher
construction cheap (gated in ``benchmarks/bench_matcher.py``).

Supported syntax (the subset that covers network rules):

* ``||host`` anchor — matches the start of the hostname (any subdomain),
* ``|`` anchors at pattern start/end,
* ``^`` separator placeholder,
* ``*`` wildcard,
* ``@@`` exception-rule prefix,
* ``$`` options: resource types (``script``, ``image``, ``stylesheet``,
  ``xmlhttprequest``, ``subdocument``, ``ping``, ``websocket``, ``font``,
  ``media``, ``other`` and their ``~`` negations), ``third-party`` / ``3p``
  (and negations), ``domain=a.com|~b.com``, ``match-case``.

Unsupported options mark the rule as such; the matcher skips unsupported
rules instead of mis-applying them (the behaviour of real content blockers
for options they do not implement).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from enum import Enum

from ..urlkit import host_matches_domain

__all__ = [
    "ResourceType",
    "RequestContext",
    "RuleOptions",
    "NetworkRule",
    "RuleParseError",
]


class ResourceType(str, Enum):
    """DevTools-style resource types, as used in rule options and events."""

    SCRIPT = "script"
    IMAGE = "image"
    STYLESHEET = "stylesheet"
    XHR = "xmlhttprequest"
    SUBDOCUMENT = "subdocument"
    PING = "ping"
    WEBSOCKET = "websocket"
    FONT = "font"
    MEDIA = "media"
    DOCUMENT = "document"
    OTHER = "other"

    @classmethod
    def from_option(cls, name: str) -> "ResourceType | None":
        aliases = {
            "xhr": cls.XHR,
            "css": cls.STYLESHEET,
            "frame": cls.SUBDOCUMENT,
            "beacon": cls.PING,
        }
        if name in aliases:
            return aliases[name]
        try:
            return cls(name)
        except ValueError:
            return None


class RuleParseError(ValueError):
    """Raised for a line that looks like a network rule but cannot parse."""


@dataclass(frozen=True, slots=True)
class RequestContext:
    """Everything the matcher needs to know about one network request."""

    url: str
    resource_type: ResourceType = ResourceType.OTHER
    page_host: str = ""
    third_party: bool = True


@dataclass(frozen=True, slots=True)
class RuleOptions:
    """Parsed ``$`` options of a rule."""

    include_types: frozenset[ResourceType] = frozenset()
    exclude_types: frozenset[ResourceType] = frozenset()
    third_party: bool | None = None
    include_domains: tuple[str, ...] = ()
    exclude_domains: tuple[str, ...] = ()
    match_case: bool = False
    unsupported: tuple[str, ...] = ()

    def __getstate__(self) -> tuple:
        # The generic slots-dataclass pickle path rebuilds the fields()
        # list per object — measurably slow at 10K-rule artifact scale.
        # A positional tuple (slot order) keeps load time flat.
        return tuple(getattr(self, name) for name in self.__slots__)

    def __setstate__(self, state: tuple) -> None:
        for name, value in zip(self.__slots__, state):
            object.__setattr__(self, name, value)

    def permits(self, context: RequestContext) -> bool:
        """Check the non-pattern constraints against a request."""
        if self.include_types and context.resource_type not in self.include_types:
            return False
        if context.resource_type in self.exclude_types:
            return False
        if self.third_party is not None and context.third_party != self.third_party:
            return False
        if self.exclude_domains and any(
            host_matches_domain(context.page_host, d) for d in self.exclude_domains
        ):
            return False
        if self.include_domains and not any(
            host_matches_domain(context.page_host, d) for d in self.include_domains
        ):
            return False
        return True


# ``^`` in ABP matches a "separator": anything that is not a letter, digit or
# one of ``_ - . %`` — or the end of the URL.
_SEPARATOR = r"(?:[^a-zA-Z0-9_\-.%]|$)"
# ``||`` anchors at a hostname-label boundary under any scheme.
_HOST_ANCHOR = r"^[a-z][a-z0-9.+-]*://(?:[^/?#]*\.)?"
_TOKEN_RE = re.compile(r"[a-z0-9]+")


def _compile_pattern(pattern: str, match_case: bool) -> re.Pattern[str]:
    regex: list[str] = []
    i = 0
    if pattern.startswith("||"):
        regex.append(_HOST_ANCHOR)
        i = 2
    elif pattern.startswith("|"):
        regex.append("^")
        i = 1
    end = len(pattern)
    trailing_anchor = False
    if pattern.endswith("|") and end > i:
        trailing_anchor = True
        end -= 1
    for ch in pattern[i:end]:
        if ch == "*":
            regex.append(".*")
        elif ch == "^":
            regex.append(_SEPARATOR)
        else:
            regex.append(re.escape(ch))
    if trailing_anchor:
        regex.append("$")
    flags = 0 if match_case else re.IGNORECASE
    return re.compile("".join(regex), flags)


def _extract_token(pattern: str) -> str:
    """The longest *delimited* literal token of the pattern, for indexing.

    A token is a maximal ``[a-z0-9]+`` run of the lowercased pattern.  The
    matcher buckets rules by token and consults only the buckets whose
    token appears among the URL's own maximal alphanumeric runs — so a
    token is only index-safe when the pattern guarantees it matches a
    *whole* URL run, i.e. both of its ends are delimited: by a literal
    non-alphanumeric character, a ``^`` separator placeholder, or an
    anchor (``||`` / ``|`` / trailing ``|``).  An end adjacent to a ``*``
    wildcard or to an unanchored pattern edge may continue into more
    alphanumerics in the URL (``track*`` matches ``tracker.example``,
    whose only run is ``tracker``), so such runs must not be indexed —
    rules without any delimited run go to the catch-all bucket.  The
    candidate-completeness property test pins this.
    """
    body = pattern
    host_anchor = start_anchor = end_anchor = False
    if body.startswith("||"):
        host_anchor = True
        body = body[2:]
    elif body.startswith("|"):
        start_anchor = True
        body = body[1:]
    if body.endswith("|") and body:
        end_anchor = True
        body = body[:-1]
    body = body.lower()
    best = ""
    for match in _TOKEN_RE.finditer(body):
        start, end = match.span()
        # Adjacent characters of a maximal run are non-alphanumeric by
        # construction; only ``*`` (which can match alphanumerics) breaks
        # the delimiter guarantee.
        left_ok = (
            host_anchor or start_anchor if start == 0 else body[start - 1] != "*"
        )
        right_ok = end_anchor if end == len(body) else body[end] != "*"
        if left_ok and right_ok and end - start > len(best):
            best = match.group()
    return best


@dataclass(frozen=True)
class NetworkRule:
    """One parsed network rule (blocking or exception)."""

    text: str
    pattern: str
    is_exception: bool = False
    options: RuleOptions = field(default_factory=RuleOptions)
    list_name: str = ""

    # Class-level defaults for the two lazily derived attributes: instances
    # only gain ``_regex`` / ``_token`` entries in their __dict__ on first
    # use, so a rule unpickled without them simply falls back to "not
    # derived yet".  (``_token`` uses ``None`` as its sentinel because
    # ``""`` is a legitimate extracted token for token-free patterns.)
    _regex = None
    _token = None

    def __getstate__(self) -> dict:
        # Derived state never travels: a pickled rule (worker transfer,
        # compiled ``.tsoracle`` artifacts) carries only its defining
        # fields, so artifacts stay small and loading pays neither regex
        # compilation nor token extraction — both re-derive lazily, and a
        # loaded matcher's indexes are already built so tokens are only
        # ever needed again if more rules are added.  No ``__setstate__``
        # on purpose: a plain dict state keeps unpickling on the C fast
        # path (``inst.__dict__.update``), which is what holds artifact
        # load time at 10K-rule scale.  Always a *copy*, taken with the
        # atomic C-level ``dict()`` (string keys, no Python callbacks):
        # a concurrent reader's lazy ``object.__setattr__`` (regex/token
        # materialization) must not blow up a pickle iterating this dict.
        state = dict(self.__dict__)
        state.pop("_regex", None)
        state.pop("_token", None)
        return state

    @property
    def token(self) -> str:
        """Indexing token (may be empty for token-free patterns like ``^``),
        extracted on first access and then cached — the matcher reads it
        while bucketing, so fresh rules pay it at index construction and
        artifact-loaded rules (whose buckets already exist) never do."""
        token: str | None = self._token
        if token is None:
            token = _extract_token(self.pattern)
            object.__setattr__(self, "_token", token)
        return token

    @property
    def regex(self) -> re.Pattern[str]:
        """The compiled pattern, built on first access and then cached."""
        compiled: re.Pattern[str] | None = self._regex  # type: ignore[attr-defined]
        if compiled is None:
            compiled = _compile_pattern(self.pattern, self.options.match_case)
            object.__setattr__(self, "_regex", compiled)
        return compiled

    @property
    def regex_compiled(self) -> bool:
        """Whether the lazy regex has been materialized (introspection)."""
        return self._regex is not None  # type: ignore[attr-defined]

    @property
    def supported(self) -> bool:
        return not self.options.unsupported

    def matches(self, context: RequestContext) -> bool:
        """True when the rule applies to the given request."""
        if not self.supported:
            return False
        if not self.options.permits(context):
            return False
        return self.regex.search(context.url) is not None

    def matches_url(self, url: str) -> bool:
        """Pattern-only match, ignoring options (useful in tests/tools)."""
        return self.regex.search(url) is not None

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text
