"""EasyList/EasyPrivacy substrate: Adblock Plus filter parsing and matching.

This subpackage is TrackerSift's *test oracle* (paper §3, "Labeling"): a
network request matching EasyList or EasyPrivacy is tracking, everything
else is functional.  It is a complete ABP network-rule engine — parser,
rule model with options, token-indexed matcher, embedded list snapshots,
and a compiled-artifact layer (:mod:`repro.filterlists.compile`) that
materializes a built matcher to disk so consumers load it without
re-parsing or re-indexing — not a lookup table.
"""

from .cache import CachedMatcher, CacheStats, DecisionCache
from .compile import (
    ArtifactError,
    OracleArtifact,
    compile_lists,
    compile_matcher,
    load_artifact,
    load_matcher,
    read_artifact_meta,
)
from .lists import (
    AD_PATH_MARKERS,
    ADVERTISING_DOMAINS,
    EASYLIST_SNAPSHOT,
    EASYPRIVACY_SNAPSHOT,
    TRACKER_DOMAINS,
    TRACKER_PATH_MARKERS,
    default_lists,
    load_easylist,
    load_easyprivacy,
)
from .maintenance import ListDiff, diff_lists, find_redundant_rules
from .matcher import FilterMatcher, MatchResult
from .oracle import FilterListOracle, Label, LabeledRequest
from .parser import ParsedList, parse_filter_list, parse_rule_line
from .rules import (
    NetworkRule,
    RequestContext,
    ResourceType,
    RuleOptions,
    RuleParseError,
)

__all__ = [
    "NetworkRule",
    "RequestContext",
    "ResourceType",
    "RuleOptions",
    "RuleParseError",
    "ParsedList",
    "parse_filter_list",
    "parse_rule_line",
    "FilterMatcher",
    "MatchResult",
    "CachedMatcher",
    "CacheStats",
    "DecisionCache",
    "ArtifactError",
    "OracleArtifact",
    "compile_lists",
    "compile_matcher",
    "load_artifact",
    "load_matcher",
    "read_artifact_meta",
    "FilterListOracle",
    "Label",
    "LabeledRequest",
    "load_easylist",
    "load_easyprivacy",
    "default_lists",
    "EASYLIST_SNAPSHOT",
    "EASYPRIVACY_SNAPSHOT",
    "TRACKER_DOMAINS",
    "ADVERTISING_DOMAINS",
    "TRACKER_PATH_MARKERS",
    "AD_PATH_MARKERS",
    "ListDiff",
    "diff_lists",
    "find_redundant_rules",
]
