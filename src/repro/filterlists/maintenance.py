"""Filter-list maintenance tooling: diffs and redundancy detection.

The paper's framing (§1) leans on the operational reality of filter lists:
they are community-maintained, slow to update, and bloat over time.  Two
maintenance primitives support the workflows TrackerSift feeds into:

* :func:`diff_lists` — what changed between two list versions (the
  "update filter lists promptly and more frequently" arms race, made
  inspectable);
* :func:`find_redundant_rules` — rules that are *shadowed* by a broader
  rule in the same list (every URL they block is already blocked), the
  usual cleanup before shipping generated rules alongside existing ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .parser import ParsedList
from .rules import NetworkRule

__all__ = ["ListDiff", "diff_lists", "find_redundant_rules"]


@dataclass
class ListDiff:
    """Rule-level difference between two parsed lists."""

    added: list[NetworkRule] = field(default_factory=list)
    removed: list[NetworkRule] = field(default_factory=list)
    unchanged: int = 0

    @property
    def churn(self) -> int:
        return len(self.added) + len(self.removed)

    def summary(self) -> str:
        return (
            f"+{len(self.added)} -{len(self.removed)} "
            f"(unchanged {self.unchanged})"
        )


def diff_lists(old: ParsedList, new: ParsedList) -> ListDiff:
    """Compare two list versions by canonical rule text."""
    old_rules = {rule.text: rule for rule in old.rules}
    new_rules = {rule.text: rule for rule in new.rules}
    diff = ListDiff()
    for text, rule in new_rules.items():
        if text not in old_rules:
            diff.added.append(rule)
    for text, rule in old_rules.items():
        if text not in new_rules:
            diff.removed.append(rule)
    diff.unchanged = len(old_rules.keys() & new_rules.keys())
    return diff


def _domain_of_host_anchor(rule: NetworkRule) -> str | None:
    """For a plain ``||domain^`` rule, the anchored domain; else ``None``."""
    pattern = rule.pattern
    if not pattern.startswith("||") or not pattern.endswith("^"):
        return None
    body = pattern[2:-1]
    if any(ch in body for ch in "*^/|?"):
        return None
    return body.lower()


def _is_unconditional(rule: NetworkRule) -> bool:
    options = rule.options
    return (
        not options.include_types
        and not options.exclude_types
        and options.third_party is None
        and not options.include_domains
        and not options.exclude_domains
    )


def find_redundant_rules(parsed: ParsedList) -> list[tuple[NetworkRule, NetworkRule]]:
    """Rules shadowed by a broader unconditional ``||domain^`` rule.

    A rule is redundant when every request it can block is already blocked
    by another rule.  We detect the dominant practical case: any blocking
    rule whose pattern is anchored at (a subdomain of) ``d`` is shadowed by
    an unconditional ``||d^``.  Returns (shadowed, shadowing) pairs.
    """
    anchors: dict[str, NetworkRule] = {}
    for rule in parsed.blocking_rules:
        domain = _domain_of_host_anchor(rule)
        if domain is not None and _is_unconditional(rule):
            existing = anchors.get(domain)
            if existing is None or len(rule.pattern) < len(existing.pattern):
                anchors[domain] = rule

    redundant: list[tuple[NetworkRule, NetworkRule]] = []
    for rule in parsed.blocking_rules:
        if not rule.pattern.startswith("||"):
            continue
        host_part = rule.pattern[2:]
        for stop in "^/|?*":
            index = host_part.find(stop)
            if index >= 0:
                host_part = host_part[:index]
        host = host_part.lower()
        if not host:
            continue
        # Attribute to the *broadest* covering anchor (shortest domain),
        # not the first one list order happens to offer — redundancy
        # reports must be invariant under rule re-ordering (a churn
        # reorder is not an edit).
        covering = [
            anchor
            for domain, anchor in anchors.items()
            if anchor is not rule
            and (host == domain or host.endswith("." + domain))
        ]
        if covering:
            anchor = min(
                covering, key=lambda a: (len(a.pattern), a.pattern)
            )
            # ||sub.domain^... is fully covered by ||domain^ only when
            # the shadowed rule has no *weaker* condition than the
            # anchor; the anchor is unconditional, so any rule is.
            if rule.pattern != anchor.pattern:
                redundant.append((rule, anchor))
    return redundant
