"""Domain and hostname helpers built on the URL parser and the PSL.

These are the exact operations the TrackerSift hierarchy needs:

* ``registrable_domain(url)`` — the *domain* granularity key (eTLD+1),
* ``hostname(url)`` — the *hostname* granularity key,
* first/third-party tests used by filter-rule options (``$third-party``,
  ``$domain=...``).
"""

from __future__ import annotations

from .psl import DEFAULT_PSL, PublicSuffixList
from .url import URL, URLError, normalize_host, parse_url

__all__ = [
    "registrable_domain",
    "hostname",
    "same_site",
    "is_third_party",
    "host_matches_domain",
]


def _to_host(value: str | URL) -> str:
    if isinstance(value, URL):
        return value.host
    value = value.strip()
    if "://" in value or value.startswith("//"):
        return parse_url(value).host
    return normalize_host(value)


def hostname(value: str | URL) -> str:
    """Return the normalised hostname of a URL, host string, or URL object."""
    return _to_host(value)


def registrable_domain(
    value: str | URL, psl: PublicSuffixList = DEFAULT_PSL
) -> str | None:
    """Return the eTLD+1 for a URL or host, or ``None`` for IPs/suffixes."""
    return psl.registrable_domain(_to_host(value))


def same_site(a: str | URL, b: str | URL, psl: PublicSuffixList = DEFAULT_PSL) -> bool:
    """True when both URLs/hosts share a registrable domain.

    Hosts without a registrable domain (IP literals, bare suffixes) are
    same-site only when the hosts are identical — matching browser behaviour.
    """
    host_a, host_b = _to_host(a), _to_host(b)
    dom_a, dom_b = psl.registrable_domain(host_a), psl.registrable_domain(host_b)
    if dom_a is None or dom_b is None:
        return host_a == host_b
    return dom_a == dom_b


def is_third_party(
    request: str | URL, top_level: str | URL, psl: PublicSuffixList = DEFAULT_PSL
) -> bool:
    """True when a request is third-party relative to the page that made it."""
    return not same_site(request, top_level, psl)


def host_matches_domain(host: str, domain: str) -> bool:
    """Filter-list style domain matching: exact host or any subdomain.

    >>> host_matches_domain("cdn.google.com", "google.com")
    True
    >>> host_matches_domain("notgoogle.com", "google.com")
    False
    """
    try:
        host = normalize_host(host)
        domain = normalize_host(domain)
    except URLError:
        return False
    return host == domain or host.endswith("." + domain)
