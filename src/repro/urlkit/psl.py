"""Public Suffix List (PSL) and eTLD+1 extraction.

TrackerSift's coarsest granularity is the *domain*, defined in the paper as
eTLD+1 — the registrable domain one label below the longest matching public
suffix.  The real study used the Mozilla Public Suffix List; we implement the
exact PSL matching algorithm (normal rules, ``*.`` wildcard rules and ``!``
exception rules, longest match wins) over an embedded snapshot of the ICANN
section that covers everything our synthetic web emits plus the common
real-world suffixes that appear in the paper's examples.

The algorithm follows https://publicsuffix.org/list/ semantics:

1. Match domain labels right-to-left against each rule.
2. If more than one rule matches, the prevailing rule is the exception rule
   if any, else the rule with the most labels.
3. If no rule matches, the prevailing rule is ``*`` (the TLD itself).
4. The public suffix is the matched labels; the registrable domain is the
   public suffix plus one preceding label.
"""

from __future__ import annotations

from .url import URLError, normalize_host

__all__ = ["PublicSuffixList", "DEFAULT_PSL", "EMBEDDED_SUFFIX_DATA"]

# A trimmed ICANN-section snapshot.  One rule per line, same syntax as the
# upstream list (comments and blanks allowed for realism in parsing tests).
EMBEDDED_SUFFIX_DATA = """\
// ===BEGIN ICANN DOMAINS=== (embedded snapshot for the reproduction)
com
org
net
edu
gov
mil
int
io
co
ai
app
dev
tv
me
info
biz
xyz
site
online
store
tech
cloud
ca
de
fr
es
it
nl
se
no (comment-free form not required)
ch
at
be
ru
pl
cz
ro
pt
gr
fi
dk
ie
hu
sk
bg
hr
lt
lv
ee
in
cn
jp
kr
au
nz
br
mx
ar
cl
pe
za
eg
ng
ke
il
tr
sa
ae
pk
bd
lk
th
vn
id
my
sg
ph
hk
tw
us
uk
co.uk
org.uk
ac.uk
gov.uk
net.uk
me.uk
ltd.uk
plc.uk
com.au
net.au
org.au
edu.au
gov.au
com.br
net.br
org.br
gov.br
com.mx
org.mx
gob.mx
com.ar
com.cn
net.cn
org.cn
gov.cn
co.jp
ne.jp
or.jp
ac.jp
go.jp
co.kr
or.kr
co.in
net.in
org.in
gen.in
firm.in
co.za
org.za
web.za
com.sg
com.my
com.tr
com.tw
com.hk
com.ph
com.vn
com.eg
com.sa
com.pk
co.il
co.nz
org.nz
net.nz
govt.nz
// wildcard + exception rules (PSL algorithm coverage)
*.ck
!www.ck
*.bn
*.kawasaki.jp
!city.kawasaki.jp
// private-section style entries used by CDNs in our population
github.io
gitlab.io
herokuapp.com
cloudfront.net
azurewebsites.net
fastly.net
netlify.app
vercel.app
web.app
firebaseapp.com
blogspot.com
wordpress.com
s3.amazonaws.com
// ===END===
"""


def _parse_rules(data: str) -> tuple[dict[tuple[str, ...], bool], int]:
    """Parse PSL text into ``{labels-reversed: is_exception}``.

    Returns the rule table and the maximum rule length (in labels), used to
    bound the matching loop.
    """
    rules: dict[tuple[str, ...], bool] = {}
    max_len = 1
    for line in data.splitlines():
        line = line.strip()
        if not line or line.startswith("//"):
            continue
        # The upstream list terminates rules at the first whitespace.
        rule = line.split()[0].lower()
        exception = rule.startswith("!")
        if exception:
            rule = rule[1:]
        labels = tuple(reversed(rule.split(".")))
        if not all(label == "*" or label for label in labels):
            continue  # skip malformed rule rather than poison the table
        rules[labels] = exception
        max_len = max(max_len, len(labels))
    return rules, max_len


class PublicSuffixList:
    """Longest-match public-suffix resolution with wildcards and exceptions.

    >>> psl = PublicSuffixList()
    >>> psl.public_suffix("maps.google.co.uk")
    'co.uk'
    >>> psl.registrable_domain("maps.google.co.uk")
    'google.co.uk'
    """

    def __init__(self, data: str = EMBEDDED_SUFFIX_DATA) -> None:
        self._rules, self._max_len = _parse_rules(data)

    def __contains__(self, suffix: str) -> bool:
        labels = tuple(reversed(suffix.lower().split(".")))
        return labels in self._rules

    def _match(self, labels_reversed: tuple[str, ...]) -> tuple[int, bool]:
        """Return ``(prevailing rule length, is_exception)``.

        Per the PSL algorithm the implicit ``*`` rule matches every domain,
        so the minimum result is ``(1, False)``.
        """
        best_len = 1
        exception_len = 0
        upper = min(len(labels_reversed), self._max_len)
        for n in range(1, upper + 1):
            prefix = labels_reversed[:n]
            for candidate in _wildcard_variants(prefix):
                flag = self._rules.get(candidate)
                if flag is None:
                    continue
                if flag:
                    exception_len = max(exception_len, n)
                else:
                    best_len = max(best_len, n)
        if exception_len:
            # Exception rule prevails; its public suffix drops one label.
            return exception_len - 1, True
        return best_len, False

    def public_suffix(self, host: str) -> str:
        """Return the public suffix of ``host`` (never empty)."""
        host = normalize_host(host)
        if host.startswith("["):
            raise URLError("IP literals have no public suffix")
        labels = host.split(".")
        reversed_labels = tuple(reversed(labels))
        n, _ = self._match(reversed_labels)
        n = min(n, len(labels))
        return ".".join(labels[len(labels) - n :])

    def registrable_domain(self, host: str) -> str | None:
        """Return the eTLD+1 of ``host``, or ``None`` when the host *is* a
        public suffix (e.g. ``co.uk``) or an IP literal.
        """
        host = normalize_host(host)
        if host.startswith("[") or _looks_like_ipv4(host):
            return None
        suffix = self.public_suffix(host)
        if host == suffix:
            return None
        suffix_labels = suffix.count(".") + 1
        labels = host.split(".")
        if len(labels) <= suffix_labels:
            return None
        return ".".join(labels[-(suffix_labels + 1) :])

    def is_public_suffix(self, host: str) -> bool:
        host = normalize_host(host)
        return self.public_suffix(host) == host


def _wildcard_variants(prefix: tuple[str, ...]) -> tuple[tuple[str, ...], ...]:
    """Candidate rule keys for a reversed label prefix.

    Wildcards in the PSL only ever occupy the left-most rule label, which in
    reversed orientation is the *last* element of the tuple.
    """
    if len(prefix) == 1:
        return (prefix,)
    return (prefix, prefix[:-1] + ("*",))


def _looks_like_ipv4(host: str) -> bool:
    parts = host.split(".")
    if len(parts) != 4:
        return False
    return all(p.isdigit() and int(p) <= 255 for p in parts)


#: Shared default instance; the list is immutable after construction.
DEFAULT_PSL = PublicSuffixList()
