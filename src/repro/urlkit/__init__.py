"""URL, hostname, and registrable-domain (eTLD+1) utilities.

This subpackage is the network-naming substrate for the TrackerSift
hierarchy: request URLs are parsed with :func:`parse_url`, the *hostname*
granularity uses :func:`hostname`, and the *domain* granularity uses
:func:`registrable_domain` backed by an embedded Public Suffix List.
"""

from .dns import CnameResolver, DnsError, DnsZone
from .domains import (
    host_matches_domain,
    hostname,
    is_third_party,
    registrable_domain,
    same_site,
)
from .psl import DEFAULT_PSL, PublicSuffixList
from .url import URL, URLError, normalize_host, parse_url

__all__ = [
    "URL",
    "URLError",
    "parse_url",
    "normalize_host",
    "PublicSuffixList",
    "DEFAULT_PSL",
    "registrable_domain",
    "hostname",
    "same_site",
    "is_third_party",
    "host_matches_domain",
    "DnsZone",
    "DnsError",
    "CnameResolver",
]
