"""URL parsing and normalisation.

TrackerSift's analysis is entirely keyed on URLs: request URLs are matched
against filter lists, and the domain / hostname granularities are derived
from the request URL's host component.  This module provides a small,
dependency-free URL model tailored to those needs.

The parser is deliberately stricter than a browser address-bar parser: it
handles the ``scheme://host[:port]/path[?query][#fragment]`` shape emitted by
DevTools network events (which always report absolute, already-resolved
URLs), plus scheme-relative URLs (``//host/path``) that appear inside filter
rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["URL", "URLError", "parse_url", "normalize_host"]

_DEFAULT_PORTS = {
    "http": 80,
    "https": 443,
    "ws": 80,
    "wss": 443,
    "ftp": 21,
}

_SCHEME_CHARS = set("abcdefghijklmnopqrstuvwxyz0123456789+-.")


class URLError(ValueError):
    """Raised when a string cannot be parsed as an absolute URL."""


@dataclass(frozen=True, slots=True)
class URL:
    """A parsed absolute URL.

    Attributes mirror the generic URI components.  ``host`` is always
    lower-case and never contains a port; ``port`` is ``None`` when the URL
    used the scheme's default port (or no port at all).
    """

    scheme: str
    host: str
    path: str = "/"
    query: str = ""
    fragment: str = ""
    port: int | None = None
    username: str = ""
    password: str = field(default="", repr=False)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.href

    @property
    def href(self) -> str:
        """Serialise back to a string (normalised form)."""
        auth = ""
        if self.username:
            auth = self.username
            if self.password:
                auth += f":{self.password}"
            auth += "@"
        port = f":{self.port}" if self.port is not None else ""
        query = f"?{self.query}" if self.query else ""
        fragment = f"#{self.fragment}" if self.fragment else ""
        return f"{self.scheme}://{auth}{self.host}{port}{self.path}{query}{fragment}"

    @property
    def origin(self) -> str:
        """``scheme://host[:port]`` — the security origin of the URL."""
        port = f":{self.port}" if self.port is not None else ""
        return f"{self.scheme}://{self.host}{port}"

    @property
    def hostname(self) -> str:
        """Alias for :attr:`host` (matching DevTools naming)."""
        return self.host

    @property
    def is_secure(self) -> bool:
        return self.scheme in ("https", "wss")

    def with_path(self, path: str) -> "URL":
        """Return a copy of this URL with a different path."""
        if not path.startswith("/"):
            path = "/" + path
        return replace(self, path=path)

    def without_fragment(self) -> "URL":
        return replace(self, fragment="") if self.fragment else self


def normalize_host(host: str) -> str:
    """Normalise a hostname: lower-case, strip trailing dot, IDNA-encode.

    Raises :class:`URLError` for empty or syntactically invalid hosts.
    """
    host = host.strip().rstrip(".").lower()
    if not host:
        raise URLError("empty host")
    if any(c.isspace() for c in host):
        raise URLError(f"whitespace in host: {host!r}")
    # IDNA-encode non-ASCII labels, mirroring what browsers report.
    if not host.isascii():
        try:
            host = host.encode("idna").decode("ascii")
        except UnicodeError as exc:
            raise URLError(f"invalid international host: {host!r}") from exc
    if host.startswith("[") and host.endswith("]"):
        return host  # IPv6 literal, keep as-is
    for label in host.split("."):
        if not label:
            raise URLError(f"empty label in host: {host!r}")
        if len(label) > 63:
            raise URLError(f"label too long in host: {host!r}")
    if len(host) > 253:
        raise URLError(f"host too long: {host!r}")
    return host


def _split_scheme(raw: str) -> tuple[str, str]:
    """Split ``scheme://rest``; scheme-relative URLs default to https."""
    if raw.startswith("//"):
        return "https", raw[2:]
    sep = raw.find("://")
    if sep <= 0:
        raise URLError(f"not an absolute URL: {raw!r}")
    scheme = raw[:sep].lower()
    if not scheme[0].isalpha() or not set(scheme) <= _SCHEME_CHARS:
        raise URLError(f"invalid scheme: {scheme!r}")
    return scheme, raw[sep + 3 :]


def _split_authority(rest: str) -> tuple[str, str]:
    """Split the authority from path/query/fragment."""
    for i, ch in enumerate(rest):
        if ch in "/?#":
            return rest[:i], rest[i:]
    return rest, ""


def _parse_authority(authority: str) -> tuple[str, str, str, int | None]:
    username = password = ""
    if "@" in authority:
        userinfo, _, authority = authority.rpartition("@")
        username, _, password = userinfo.partition(":")
    host = authority
    port: int | None = None
    if host.startswith("["):  # IPv6 literal, possibly with port
        close = host.find("]")
        if close < 0:
            raise URLError(f"unterminated IPv6 literal: {authority!r}")
        literal, tail = host[: close + 1], host[close + 1 :]
        if tail:
            if not tail.startswith(":"):
                raise URLError(f"garbage after IPv6 literal: {authority!r}")
            port = _parse_port(tail[1:])
        host = literal
    elif ":" in host:
        host, _, port_text = host.rpartition(":")
        port = _parse_port(port_text)
    return normalize_host(host), username, password, port


def _parse_port(text: str) -> int:
    if not text.isdigit():
        raise URLError(f"invalid port: {text!r}")
    port = int(text)
    if not 0 < port <= 65535:
        raise URLError(f"port out of range: {port}")
    return port


def parse_url(raw: str) -> URL:
    """Parse an absolute (or scheme-relative) URL string.

    >>> parse_url("https://CDN.Google.com/ads-1?x=1#top").host
    'cdn.google.com'
    """
    if not isinstance(raw, str):
        raise URLError(f"expected str, got {type(raw).__name__}")
    raw = raw.strip()
    if not raw:
        raise URLError("empty URL")
    scheme, rest = _split_scheme(raw)
    authority, tail = _split_authority(rest)
    if not authority:
        raise URLError(f"missing host: {raw!r}")
    host, username, password, port = _parse_authority(authority)
    if port == _DEFAULT_PORTS.get(scheme):
        port = None

    fragment = ""
    if "#" in tail:
        tail, _, fragment = tail.partition("#")
    query = ""
    if "?" in tail:
        tail, _, query = tail.partition("?")
    path = tail or "/"
    if not path.startswith("/"):
        path = "/" + path
    return URL(
        scheme=scheme,
        host=host,
        path=path,
        query=query,
        fragment=fragment,
        port=port,
        username=username,
        password=password,
    )
