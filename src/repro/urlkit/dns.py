"""Minimal DNS substrate: CNAME chains and an uncloaking resolver.

The paper's related work (§6) highlights **CNAME cloaking**: a publisher
points a first-party subdomain (``metrics.shop.example``) at a third-party
tracker via a DNS CNAME record, so request URLs look first-party and evade
``||tracker.example^`` rules.  Defences (Brave, uBlock Origin on Firefox)
resolve the CNAME chain and match filter rules against the *canonical*
name.

This module models exactly that: a zone file of CNAME records and a
resolver that follows chains with loop/length protection.  The labeling
stage can take a resolver to uncloak hostnames before matching
(``RequestLabeler(resolver=...)``), and ``benchmarks/bench_cloaking.py``
quantifies how much tracking the plain oracle misses without it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .url import URLError, normalize_host

__all__ = ["DnsError", "DnsZone", "CnameResolver"]

_MAX_CHAIN = 16


class DnsError(ValueError):
    """Raised for malformed records or unresolvable chains."""


@dataclass
class DnsZone:
    """A flat table of CNAME records (``alias -> canonical``)."""

    records: dict[str, str] = field(default_factory=dict)

    def add_cname(self, alias: str, canonical: str) -> None:
        alias = normalize_host(alias)
        canonical = normalize_host(canonical)
        if alias == canonical:
            raise DnsError(f"CNAME to self: {alias}")
        self.records[alias] = canonical

    def remove(self, alias: str) -> None:
        self.records.pop(normalize_host(alias), None)

    def lookup(self, host: str) -> str | None:
        """One resolution step, or ``None`` when the host has no CNAME."""
        try:
            return self.records.get(normalize_host(host))
        except URLError:
            return None

    def __len__(self) -> int:
        return len(self.records)

    def __contains__(self, host: str) -> bool:
        return self.lookup(host) is not None

    @classmethod
    def from_records(cls, records: dict[str, str]) -> "DnsZone":
        zone = cls()
        for alias, canonical in records.items():
            zone.add_cname(alias, canonical)
        return zone


class CnameResolver:
    """Follows CNAME chains to the canonical hostname.

    >>> zone = DnsZone.from_records({"metrics.shop.example": "t.tracker.example"})
    >>> CnameResolver(zone).canonical_name("metrics.shop.example")
    't.tracker.example'
    """

    def __init__(self, zone: DnsZone) -> None:
        self._zone = zone

    @property
    def zone(self) -> DnsZone:
        return self._zone

    def canonical_name(self, host: str) -> str:
        """The end of the CNAME chain (the host itself if no record)."""
        current = normalize_host(host)
        seen = {current}
        for _ in range(_MAX_CHAIN):
            target = self._zone.lookup(current)
            if target is None:
                return current
            if target in seen:
                raise DnsError(f"CNAME loop at {target}")
            seen.add(target)
            current = target
        raise DnsError(f"CNAME chain longer than {_MAX_CHAIN} from {host}")

    def chain(self, host: str) -> list[str]:
        """The full chain, starting host first, canonical last."""
        current = normalize_host(host)
        out = [current]
        seen = {current}
        for _ in range(_MAX_CHAIN):
            target = self._zone.lookup(current)
            if target is None:
                return out
            if target in seen:
                raise DnsError(f"CNAME loop at {target}")
            seen.add(target)
            out.append(target)
            current = target
        raise DnsError(f"CNAME chain longer than {_MAX_CHAIN} from {host}")

    def is_cloaked(self, host: str) -> bool:
        """True when the host resolves to a different canonical name."""
        return self.canonical_name(host) != normalize_host(host)
