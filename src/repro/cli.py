"""Command-line runner: ``trackersift`` (or ``python -m repro``).

Subcommands mirror the paper's workflow plus the library's extensions:

* ``study``     — run the full pipeline and print Tables 1-2,
* ``sift``      — run the study through the execution engine; with
  ``--streaming`` it shards the crawl, labels through the memoized
  decision cache without materializing the database, checkpoints per
  shard (``--checkpoint-dir``) and prints the cache counters; with
  ``--workers N`` the shards crawl on N parallel processes (identical
  results for every worker count),
* ``figure3``   — print the ratio histograms,
* ``figure4``   — print the threshold-sensitivity curve (CSV),
* ``table3``    — run the breakage analysis sample,
* ``compare``   — paper-vs-measured shape comparison,
* ``rules``     — emit a generated filter list (finer-grained blocking),
* ``strategies``— score conservative / naive / TrackerSift policies,
* ``bootstrap`` — confidence intervals for the separation factors,
* ``export``    — dump the crawl database to JSONL or SQLite,
* ``serve``     — run the online blocking-decision service: the filter
  oracle behind a threaded JSON API (``--port``, ``--threads``) with
  hot-reloadable list snapshots; ``--lists`` loads filter-list files in
  place of the embedded defaults, ``--artifact`` boots from a compiled
  ``.tsoracle`` without parsing anything, and ``--workers N`` (with
  ``--artifact``) forks N asyncio serve workers sharing one
  memory-mapped oracle image (reload all workers with SIGHUP),
* ``compile``   — compile filter lists (``--lists``, or the embedded
  defaults) into a versioned, checksummed ``.tsoracle`` artifact
  (``--out``) that loads with no parsing or index construction — the
  fast path ``serve --artifact`` and the parallel shard workers use,
* ``scenario``  — the cross-path conformance matrix
  (:mod:`repro.scenarios`): ``scenario list`` names the packs,
  ``scenario run`` drives them through every execution path (batch,
  streaming, fan-out, compiled-artifact fan-out, online service) and
  checks byte-identical decisions against the committed golden
  manifests; ``--matrix`` runs every pack (default: the fast ones),
  ``--packs``/``--paths`` select subsets, ``--update-golden``
  regenerates the manifests after an intended behaviour change,
* ``loop``      — ``loop run`` closes the paper's loop
  (:mod:`repro.loop`): sift → rule generation → validation → hot
  reload, with an adversary mutating the web between rounds;
  ``--pack`` replays a scenario pack's web (e.g. ``arms-race``),
  ``--rounds`` sets the schedule length (quiet round, then
  alternating relocate/drift moves), ``--out`` writes the full JSON
  report (without it the report prints to stdout); exits 1 when any
  revision fails a validation gate,
* ``trace``     — ``trace summarize <spans.jsonl>`` renders the
  per-stage time breakdown and critical path of a ``--trace-out``
  export (:mod:`repro.obs.trace`),
* ``ledger``    — ``ledger diff <a.jsonl> <b.jsonl>`` compares two
  determinism fingerprint chains and names the first divergent stage
  (:mod:`repro.obs.ledger`); exits 1 on divergence.

``--profile`` (study/sift) wraps the run in :mod:`cProfile` and writes a
top-25 cumulative-time table next to the checkpoint dir, so perf work
starts from data.  ``--trace-out``/``--ledger-out`` (study/sift) attach
a tracer / determinism ledger to the run and export them as JSONL.
Auto-named profile tables carry a run id (timestamp + pid) so
concurrent runs never clobber each other; explicit ``--trace-out`` /
``--ledger-out`` paths are honored verbatim (the run id is echoed in
the confirmation line), and all artifact paths land in
``PipelineResult.notes``.  ``trackersift --version`` prints the package
version.
"""

from __future__ import annotations

import argparse
import sys

from .analysis.confidence import bootstrap_separation_factors
from .analysis.figures import build_figure3, build_figure4
from .analysis.report import (
    ascii_table,
    compare_with_paper,
    render_comparison,
    render_histogram,
    render_table1,
    render_table2,
    render_table3,
)
from .analysis.tables import build_table1, build_table2, build_table3
from .core.engine import StreamingPipeline
from .core.parallel import ShardExecutionError
from .core.pipeline import PipelineConfig, TrackerSiftPipeline
from .core.rulegen import compare_strategies, generate_recommendation

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    from . import __version__

    parser = argparse.ArgumentParser(
        prog="trackersift",
        description="TrackerSift (IMC 2021) reproduction pipeline",
    )
    parser.add_argument(
        "--version", action="version", version=f"trackersift {__version__}"
    )
    parser.add_argument("--sites", type=int, default=1_000, help="crawl size")
    parser.add_argument("--seed", type=int, default=7, help="generator seed")
    parser.add_argument(
        "--threshold", type=float, default=2.0, help="classification threshold"
    )
    parser.add_argument(
        "--replicates", type=int, default=100, help="bootstrap replicates"
    )
    parser.add_argument(
        "--out", type=str, default="", help="output path (rules/export/compile/loop)"
    )
    parser.add_argument(
        "--streaming",
        action="store_true",
        help="sift: run the sharded streaming engine instead of batch",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="sift --streaming: number of crawl shards (default: 13 nodes)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        type=str,
        default="",
        help="sift --streaming: persist per-shard checkpoints here (resumable)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "crawl shards on N parallel worker processes — results are "
            "identical for every worker count; not accepted by "
            "figure4/strategies/bootstrap/export, which analyse the "
            "materialized crawl that parallel runs do not carry. "
            "serve: fork N asyncio serve workers sharing one "
            "memory-mapped oracle image (requires --artifact)"
        ),
    )
    parser.add_argument(
        "--port",
        type=int,
        default=None,
        help="serve: TCP port for the decision API (default: 8377)",
    )
    parser.add_argument(
        "--host",
        type=str,
        default=None,
        help="serve: bind address (default: 127.0.0.1)",
    )
    parser.add_argument(
        "--threads",
        type=int,
        default=None,
        help="serve: max concurrent decide handlers (default: 8)",
    )
    parser.add_argument(
        "--lists",
        action="append",
        default=None,
        metavar="PATH",
        help=(
            "serve/compile: filter-list text file to use instead of the "
            "embedded EasyList/EasyPrivacy snapshots (repeatable)"
        ),
    )
    parser.add_argument(
        "--artifact",
        type=str,
        default=None,
        metavar="PATH",
        help=(
            "serve: boot from a compiled .tsoracle artifact instead of "
            "parsing list text (see the compile command)"
        ),
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "study/sift: profile the run under cProfile and write a "
            "top-25 cumulative-time table next to the checkpoint dir "
            "(or into the working directory without one); filenames are "
            "run-id stamped so concurrent runs never collide"
        ),
    )
    parser.add_argument(
        "--trace-out",
        type=str,
        default=None,
        metavar="PATH",
        help=(
            "study/sift: record structured spans for every stage and "
            "write them as JSONL here (inspect with: trackersift trace "
            "summarize PATH)"
        ),
    )
    parser.add_argument(
        "--ledger-out",
        type=str,
        default=None,
        metavar="PATH",
        help=(
            "study/sift: record the determinism fingerprint ledger and "
            "write it as JSONL here (compare runs with: trackersift "
            "ledger diff A B)"
        ),
    )
    parser.add_argument(
        "--packs",
        type=str,
        default=None,
        metavar="NAME[,NAME...]",
        help="scenario run: comma-separated pack names (default: fast packs)",
    )
    parser.add_argument(
        "--paths",
        type=str,
        default=None,
        metavar="PATH[,PATH...]",
        help=(
            "scenario run: comma-separated execution paths "
            "(default: all of them)"
        ),
    )
    parser.add_argument(
        "--matrix",
        action="store_true",
        help="scenario run: every pack through every selected path",
    )
    parser.add_argument(
        "--update-golden",
        action="store_true",
        help=(
            "scenario run: regenerate the committed golden manifests from "
            "this run instead of checking against them"
        ),
    )
    parser.add_argument(
        "--pack",
        type=str,
        default=None,
        metavar="NAME",
        help=(
            "loop run: build the loop's web from this scenario pack "
            "(e.g. arms-race) instead of --sites/--seed"
        ),
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=None,
        help=(
            "loop run: number of rounds — a quiet round, then "
            "alternating relocate/drift adversary moves (default: 3)"
        ),
    )
    parser.add_argument(
        "command",
        choices=[
            "study",
            "sift",
            "figure3",
            "figure4",
            "table3",
            "compare",
            "rules",
            "strategies",
            "bootstrap",
            "export",
            "serve",
            "compile",
            "scenario",
            "loop",
            "trace",
            "ledger",
        ],
        help="what to run",
    )
    parser.add_argument(
        "action",
        nargs="?",
        default=None,
        help=(
            "subcommand: scenario list|run, loop run, trace summarize, "
            "ledger diff"
        ),
    )
    parser.add_argument(
        "extra",
        nargs="*",
        default=[],
        help="file arguments for the trace/ledger subcommands",
    )
    return parser


def _cmd_serve(args) -> int:
    from .filterlists.compile import ArtifactError
    from .serve.server import DEFAULT_PORT, DEFAULT_THREADS, run_server

    if args.artifact and args.lists:
        raise SystemExit("serve: pass --lists or --artifact, not both")
    if args.workers is not None:
        # Multi-process mode: N forked asyncio workers over one shared
        # memory-mapped oracle image, coordinated by a supervisor
        # (reload via SIGHUP, drain via SIGTERM/SIGINT).
        if args.workers < 1:
            raise SystemExit("serve: --workers must be at least 1")
        if not args.artifact:
            raise SystemExit(
                "serve: --workers requires --artifact — workers share the "
                "compiled artifact's memory-mapped oracle image (compile "
                "one with: trackersift compile --out rules.tsoracle)"
            )
        if args.threads is not None:
            raise SystemExit(
                "serve: --threads applies to the single-process threaded "
                "server; with --workers, concurrency comes from the "
                "worker processes"
            )
        from .serve.supervisor import run_supervisor

        try:
            return run_supervisor(
                args.artifact,
                workers=args.workers,
                host=args.host or "127.0.0.1",
                port=args.port if args.port is not None else DEFAULT_PORT,
            )
        except (ArtifactError, OSError, RuntimeError) as error:
            raise SystemExit(f"serve: {error}")
    threads = args.threads if args.threads is not None else DEFAULT_THREADS
    if threads < 1:
        raise SystemExit("serve: --threads must be at least 1")
    try:
        return run_server(
            host=args.host or "127.0.0.1",
            port=args.port if args.port is not None else DEFAULT_PORT,
            threads=threads,
            list_paths=args.lists or (),
            artifact_path=args.artifact,
        )
    except ArtifactError as error:
        raise SystemExit(f"serve: {error}")
    except OSError as error:
        raise SystemExit(f"serve: {error}")


def _cmd_compile(args) -> int:
    from .filterlists.compile import ArtifactError, compile_lists, read_artifact_meta
    from .filterlists.lists import default_lists
    from .serve.server import load_list_files

    if not args.out:
        raise SystemExit("compile requires --out <path.tsoracle>")
    try:
        lists = load_list_files(args.lists) if args.lists else default_lists()
        compile_lists(args.out, *lists)
        # Round-trip the header: what we print is what a loader accepts.
        meta = read_artifact_meta(args.out)
    except (OSError, ArtifactError) as error:
        raise SystemExit(f"compile: {error}")
    print(
        f"compiled {meta['rule_count']:,} rules from "
        f"{', '.join(meta['lists']) or 'embedded defaults'} to {args.out} "
        f"({meta['bytes']:,} bytes, format v{meta['version']}, "
        f"{meta.get('automaton_keys', 0):,} automaton keys)"
    )
    unsupported = meta.get("unsupported") or {}
    if unsupported:
        breakdown = ", ".join(
            f"{reason}: {count}" for reason, count in sorted(unsupported.items())
        )
        print(
            f"skipped {meta.get('unsupported_rules', 0):,} unsupported "
            f"rule(s) ({breakdown}) — not matched by the oracle"
        )
    print(
        "load it with: trackersift serve --artifact "
        f"{args.out}  (or FilterListOracle.from_artifact)"
    )
    return 0


def _cmd_scenario(args) -> int:
    from .scenarios import (
        EXECUTION_PATHS,
        SCENARIO_PACKS,
        ScenarioRunner,
        all_packs,
        fast_packs,
    )

    if args.action == "list":
        print("Scenario packs (fast packs run in the tier-1 matrix test):")
        for spec in all_packs():
            tag = "fast" if spec.fast else "full"
            print(
                f"  {spec.name:24s} [{tag}] {spec.sites:4d} sites, "
                f"{len(spec.churn) + 1} list revision(s) — {spec.description}"
            )
        print("\nExecution paths:")
        for name, description in EXECUTION_PATHS.items():
            print(f"  {name:16s} {description}")
        return 0
    if args.action != "run":
        raise SystemExit(
            "scenario: expected an action — `trackersift scenario list` or "
            "`trackersift scenario run [--matrix] [--packs a,b] [--paths p,q]`"
        )

    if args.packs:
        names = [name.strip() for name in args.packs.split(",") if name.strip()]
        unknown = [name for name in names if name not in SCENARIO_PACKS]
        if unknown:
            raise SystemExit(
                f"scenario: unknown pack(s) {', '.join(unknown)}; "
                f"known: {', '.join(SCENARIO_PACKS)}"
            )
        specs = tuple(SCENARIO_PACKS[name] for name in names)
    else:
        specs = all_packs() if args.matrix else fast_packs()
    paths = None
    if args.paths:
        paths = tuple(p.strip() for p in args.paths.split(",") if p.strip())
    if args.update_golden and paths is not None:
        # A golden written from a path subset would carry null report /
        # shard digests and break every full run against it.
        raise SystemExit(
            "scenario: --update-golden requires the full path set; "
            "drop --paths"
        )
    try:
        runner = ScenarioRunner(paths=paths)
    except ValueError as error:
        raise SystemExit(f"scenario: {error}")

    failed = 0
    for spec in specs:
        outcome = runner.run(spec, update_golden=args.update_golden)
        verdict = "ok" if outcome.ok else "FAIL"
        if args.update_golden:
            verdict = "golden updated" if not outcome.mismatches else "FAIL"
        print(
            f"{spec.name:24s} {verdict:14s} "
            f"{outcome.labeled_requests:6,d} labeled / "
            f"{outcome.trace_requests:4,d} trace requests, "
            f"{outcome.revisions} revision(s)"
        )
        for path in runner.paths:
            record = outcome.paths[path]
            print(
                f"    {path:16s} {record.wall_seconds:6.2f}s  "
                f"{record.requests_per_second:10,.0f} req/s"
            )
        for problem in outcome.problems():
            print(f"    MISMATCH: {problem}")
        if not outcome.ok and not (args.update_golden and not outcome.mismatches):
            failed += 1
    print(
        f"\nscenario matrix: {len(specs)} scenario(s) x "
        f"{len(runner.paths)} execution path(s) — "
        + ("all identical" if failed == 0 else f"{failed} FAILED")
    )
    return 1 if failed else 0


def _cmd_loop(args) -> int:
    import json

    from .loop import ControlLoop, LoopError
    from .webmodel.generator import SyntheticWebGenerator

    if args.action != "run":
        raise SystemExit(
            "loop: expected an action — `trackersift loop run "
            "[--pack arms-race] [--rounds N] [--out report.json]`"
        )
    rounds = args.rounds if args.rounds is not None else 3
    if rounds < 1:
        raise SystemExit("loop: --rounds must be at least 1")
    if args.pack:
        from .scenarios import get_pack

        try:
            spec = get_pack(args.pack)
        except KeyError as error:
            raise SystemExit(f"loop: {error.args[0]}")
        loop = ControlLoop.from_pack(spec)
    else:
        web = SyntheticWebGenerator(sites=args.sites, seed=args.seed).build()
        loop = ControlLoop(web, seed=args.seed, threshold=args.threshold)
    # Round 1 sifts the quiet web; every later round opens with an
    # adversary move the loop then has to win back.
    schedule = tuple(
        None if index == 0 else ("relocate" if index % 2 else "drift")
        for index in range(rounds)
    )
    try:
        report = loop.run(schedule)
    except LoopError as error:
        raise SystemExit(f"loop: {error}")
    failed = 0
    for record in report.rounds:
        gates_ok = (
            record.parse_ok
            and record.roundtrip_ok
            and record.identity_ok
            and record.attribution_consistent
            and record.coverage_after.functional_url_blocked == 0
        )
        if not gates_ok:
            failed += 1
        move = record.mutation.kind if record.mutation else "quiet"
        print(
            f"round {record.index}  rev {record.revision:3d}  "
            f"{move:8s} coverage {record.coverage_before.coverage:.3f} -> "
            f"{record.coverage_after.coverage:.3f}  "
            f"rules {record.rules_kept}/{record.rules_emitted} kept  "
            f"gates {'ok' if gates_ok else 'FAIL'}"
        )
    payload = report.to_dict()
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )
        print(f"loop: wrote report for {rounds} round(s) to {args.out}")
    else:
        print(json.dumps(payload, indent=2))
    return 1 if failed else 0


def _runid() -> str:
    """Stamp for profile/trace filenames: wall-clock second plus pid.

    Deterministic given the run (no randomness) yet non-colliding across
    concurrent runs — two processes share a pid never, a second often."""
    import os
    import time

    return time.strftime("%Y%m%dT%H%M%S") + f"-p{os.getpid()}"


def _write_profile(profiler, checkpoint_dir: str, command: str, runid: str) -> str:
    """Render the top-25 cumulative-time table next to the checkpoint dir
    (its sibling, so resume never mistakes it for a shard) — or into the
    working directory when the run had no checkpoint dir."""
    import io
    import pstats
    from pathlib import Path

    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative").print_stats(25)
    # resolve() so name-less checkpoint dirs ('.', trailing slash) still
    # yield a sibling path; a nameless root falls back to the cwd file,
    # as does an unwritable sibling location — the table must never be
    # lost after a fully profiled run.
    base = Path(checkpoint_dir).resolve() if checkpoint_dir else None
    text = (
        f"trackersift {command} — cProfile, top 25 by cumulative time\n"
        + stream.getvalue()
    )
    fallback = Path(f"trackersift-{command}-{runid}-profile.txt")
    if base is not None and base.name:
        path = base.with_name(f"{base.name}-{runid}-profile.txt")
    else:
        path = fallback
    try:
        path.write_text(text, encoding="utf-8")
    except OSError:
        if path == fallback:
            raise
        path = fallback
        path.write_text(text, encoding="utf-8")
    return str(path)


def _cmd_trace(args) -> int:
    from .obs.trace import read_spans, render_summary, summarize_spans

    if args.action != "summarize" or len(args.extra) != 1:
        raise SystemExit(
            "trace: expected `trackersift trace summarize <spans.jsonl>`"
        )
    try:
        records = read_spans(args.extra[0])
    except (OSError, ValueError) as error:
        raise SystemExit(f"trace: {error}")
    print(render_summary(summarize_spans(records)))
    return 0


def _cmd_ledger(args) -> int:
    from .obs.ledger import Ledger, diff_ledgers, render_diff

    if args.action != "diff" or len(args.extra) != 2:
        raise SystemExit(
            "ledger: expected `trackersift ledger diff <a.jsonl> <b.jsonl>`"
        )
    try:
        left = Ledger.from_jsonl(args.extra[0])
        right = Ledger.from_jsonl(args.extra[1])
    except (OSError, ValueError) as error:
        raise SystemExit(f"ledger: {error}")
    diff = diff_ledgers(left, right)
    print(render_diff(diff))
    return 0 if diff["identical"] else 1


def _cmd_study(result) -> None:
    print(
        f"Crawled {result.pages_crawled} landing pages "
        f"({result.total_script_requests:,} script-initiated requests)"
    )
    print()
    print("Table 1: requests classified at each granularity")
    print(render_table1(build_table1(result.report)))
    print()
    print("Table 2: resources classified at each granularity")
    print(render_table2(build_table2(result.report)))
    print()
    print(f"Final separation factor: {result.report.final_separation:.1%}")


def _cmd_sift(result, streaming: bool) -> None:
    notes = result.notes
    engine = "streaming" if streaming else "batch"
    print(
        f"Sifted {int(notes.get('labeled_requests', result.total_script_requests)):,} "
        f"script-initiated requests over {result.pages_crawled} pages "
        f"({engine} engine, {int(notes.get('shards', 0))} shards, "
        f"{int(notes.get('shards_resumed', 0))} resumed from checkpoint)"
    )
    if "label_cache_hit_rate" in notes:
        print(
            f"Label cache: {int(notes['label_cache_hits']):,} hits / "
            f"{int(notes['label_cache_misses']):,} misses "
            f"({notes['label_cache_hit_rate']:.1%} hit rate)"
        )
    print()
    print("Table 1: requests classified at each granularity")
    print(render_table1(build_table1(result.report)))
    print()
    print(f"Final separation factor: {result.report.final_separation:.1%}")


def _cmd_rules(result, out: str) -> None:
    recommendation = generate_recommendation(result.report)
    text = recommendation.to_filter_list()
    if out:
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(
            f"wrote {recommendation.rule_count} rules and "
            f"{len(recommendation.surrogates)} surrogate directives to {out}"
        )
    else:
        print(text)


def _cmd_strategies(result) -> None:
    outcomes = compare_strategies(result.labeled.requests, result.report)
    print(
        ascii_table(
            ["Strategy", "Tracking blocked", "Collateral", "Missed"],
            [
                [
                    o.strategy.value,
                    f"{o.tracking_coverage:.1%}",
                    f"{o.collateral_rate:.1%}",
                    f"{o.tracking_missed:,}",
                ]
                for o in outcomes
            ],
        )
    )


def _cmd_bootstrap(result, replicates: int) -> None:
    intervals = bootstrap_separation_factors(
        result.labeled.requests, replicates=replicates
    )
    print(
        ascii_table(
            ["Metric", "Point", "95% low", "95% high"],
            [
                [
                    i.metric,
                    f"{i.point:.3f}",
                    f"{i.low:.3f}",
                    f"{i.high:.3f}",
                ]
                for i in intervals
            ],
        )
    )


def _cmd_export(result, out: str) -> None:
    if not out:
        raise SystemExit("export requires --out <path.jsonl|path.sqlite>")
    if out.endswith(".sqlite") or out.endswith(".db"):
        result.database.to_sqlite(out)
        print(f"wrote {len(result.database):,} events to SQLite {out}")
    else:
        lines = result.database.to_jsonl(out)
        print(f"wrote {lines:,} JSONL records to {out}")


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    scenario_flags = (
        args.packs is not None
        or args.paths is not None
        or args.matrix
        or args.update_golden
    )
    if args.command != "scenario" and scenario_flags:
        raise SystemExit(
            f"{args.command}: --packs/--paths/--matrix/--update-golden "
            "apply to the scenario command only"
        )
    loop_flags = args.pack is not None or args.rounds is not None
    if args.command != "loop" and loop_flags:
        raise SystemExit(
            f"{args.command}: --pack/--rounds apply to the loop command only"
        )
    if (
        args.command not in ("scenario", "loop", "trace", "ledger")
        and args.action is not None
    ):
        raise SystemExit(
            f"{args.command}: takes no subcommand (got {args.action!r})"
        )
    if args.extra and args.command not in ("trace", "ledger"):
        raise SystemExit(
            f"{args.command}: unexpected argument(s): {' '.join(args.extra)}"
        )
    serve_flags = (
        args.port is not None
        or args.host is not None
        or args.threads is not None
        or args.artifact is not None
    )
    if serve_flags and args.command != "serve":
        raise SystemExit(
            f"{args.command}: --port/--host/--threads/--artifact apply to "
            "the serve command only"
        )
    if args.lists is not None and args.command not in ("serve", "compile"):
        raise SystemExit(
            f"{args.command}: --lists applies to the serve and compile "
            "commands only"
        )
    if args.profile and args.command not in ("study", "sift"):
        raise SystemExit(
            f"{args.command}: --profile applies to the study and sift "
            "commands only"
        )
    if (args.trace_out or args.ledger_out) and args.command not in ("study", "sift"):
        raise SystemExit(
            f"{args.command}: --trace-out/--ledger-out apply to the study "
            "and sift commands only"
        )
    engine_flags = (
        args.streaming or args.shards is not None or args.checkpoint_dir
    )
    if engine_flags and args.command != "sift":
        raise SystemExit(
            f"{args.command}: --streaming/--shards/--checkpoint-dir apply "
            "to the sift command only"
        )
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "compile":
        return _cmd_compile(args)
    if args.command == "scenario":
        return _cmd_scenario(args)
    if args.command == "loop":
        return _cmd_loop(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "ledger":
        return _cmd_ledger(args)
    config = PipelineConfig(
        sites=args.sites, seed=args.seed, threshold=args.threshold
    )
    if args.command == "sift" and not args.streaming and engine_flags:
        raise SystemExit("sift: --shards/--checkpoint-dir require --streaming")
    workers = args.workers if args.workers is not None else 1
    if workers < 1:
        raise SystemExit("--workers must be at least 1")
    if workers > 1 and args.command in ("figure4", "strategies", "bootstrap", "export"):
        # These commands analyse the materialized per-request crawl, which
        # parallel runs (aggregates only) deliberately do not carry.
        raise SystemExit(
            f"{args.command}: needs the materialized crawl; drop --workers"
        )
    runid = _runid()
    tracer = None
    ledger = None
    if args.trace_out or args.ledger_out:
        from .obs.ledger import Ledger
        from .obs.trace import Tracer

        if args.trace_out:
            tracer = Tracer()
        if args.ledger_out:
            ledger = Ledger(args.command)
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    import contextlib

    with tracer.activate() if tracer is not None else contextlib.nullcontext():
        if args.command == "sift" and args.streaming:
            try:
                engine = StreamingPipeline(
                    config,
                    shards=args.shards,
                    workers=workers,
                    checkpoint_dir=args.checkpoint_dir or None,
                    ledger=ledger,
                )
                result = engine.run()
            except (ValueError, ShardExecutionError) as error:
                raise SystemExit(f"sift --streaming: {error}")
        else:
            try:
                result = TrackerSiftPipeline(
                    config, workers=workers, ledger=ledger
                ).run()
            except ShardExecutionError as error:
                raise SystemExit(f"{args.command}: {error}")
    if profiler is not None:
        profiler.disable()
        path = _write_profile(profiler, args.checkpoint_dir, args.command, runid)
        result.notes["profile_path"] = path
        print(f"profile: wrote top-25 cumulative-time table to {path}")
    if tracer is not None:
        trace_path = tracer.write_jsonl(args.trace_out)
        result.notes["trace_path"] = str(trace_path)
        print(
            f"trace: wrote {len(tracer.export())} span(s) to {trace_path} "
            f"(run id {runid}) — summarize with: "
            f"trackersift trace summarize {trace_path}"
        )
    if ledger is not None:
        ledger_path = ledger.write_jsonl(args.ledger_out)
        result.notes["ledger_path"] = str(ledger_path)
        print(
            f"ledger: wrote {len(ledger.chain())} stage fingerprint(s) to "
            f"{ledger_path} — compare with: trackersift ledger diff"
        )
    report = result.report

    if args.command == "study":
        _cmd_study(result)
    elif args.command == "sift":
        _cmd_sift(result, streaming=args.streaming)
    elif args.command == "figure3":
        for histogram in build_figure3(report).values():
            print(render_histogram(histogram))
            print()
    elif args.command == "figure4":
        sweep = build_figure4(result.labeled.requests)
        print("threshold,mixed_share")
        for point in sweep.points:
            print(f"{point.threshold:.1f},{point.mixed_share:.4f}")
    elif args.command == "table3":
        print(render_table3(build_table3(result.web, report)))
    elif args.command == "compare":
        print(render_comparison(compare_with_paper(report)))
    elif args.command == "rules":
        _cmd_rules(result, args.out)
    elif args.command == "strategies":
        _cmd_strategies(result)
    elif args.command == "bootstrap":
        _cmd_bootstrap(result, args.replicates)
    elif args.command == "export":
        _cmd_export(result, args.out)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
