"""Rendering and paper-vs-measured comparison.

Turns the table/figure data structures into the exact row/series shapes the
paper prints: ASCII tables for the terminal, CSV for post-processing, and a
side-by-side comparison against the published numbers (scaled to the crawl
size) for EXPERIMENTS.md.
"""

from __future__ import annotations

import io
from dataclasses import dataclass

from ..core.classifier import ResourceClass
from ..core.results import SiftReport
from ..webmodel.calibration import PAPER, PaperTargets
from .figures import RatioHistogram
from .tables import Table1Row, Table2Row, Table3Row

__all__ = [
    "ascii_table",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_histogram",
    "rows_to_csv",
    "PaperComparison",
    "compare_with_paper",
]


def ascii_table(headers: list[str], rows: list[list[str]]) -> str:
    """Minimal fixed-width table renderer."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "+".join("-" * (w + 2) for w in widths)
    line = f"+{line}+"

    def fmt(cells: list[str]) -> str:
        body = "|".join(f" {c:<{w}} " for c, w in zip(cells, widths))
        return f"|{body}|"

    out = [line, fmt(headers), line]
    out.extend(fmt(row) for row in rows)
    out.append(line)
    return "\n".join(out)


def _pct(value: float) -> str:
    return f"{100 * value:.0f}%"


def render_table1(rows: list[Table1Row]) -> str:
    return ascii_table(
        ["Granularity", "Tracking", "Functional", "Mixed", "Sep. Factor", "Cumulative"],
        [
            [
                r.granularity,
                f"{r.tracking:,}",
                f"{r.functional:,}",
                f"{r.mixed:,}",
                _pct(r.separation_factor),
                _pct(r.cumulative_separation),
            ]
            for r in rows
        ],
    )


def render_table2(rows: list[Table2Row]) -> str:
    return ascii_table(
        ["Granularity", "Tracking", "Functional", "Mixed", "Mixed share"],
        [
            [
                r.granularity,
                f"{r.tracking:,}",
                f"{r.functional:,}",
                f"{r.mixed:,}",
                _pct(r.mixed_share),
            ]
            for r in rows
        ],
    )


def render_table3(rows: list[Table3Row]) -> str:
    return ascii_table(
        ["Website", "Mixed Script", "Breakage", "Comment"],
        [[r.website, r.mixed_script, r.breakage, r.comment] for r in rows],
    )


def render_histogram(histogram: RatioHistogram, *, width: int = 50) -> str:
    """ASCII rendering of one Figure 3 panel."""
    peak = max((b.count for b in histogram.bins), default=1) or 1
    lines = [f"Figure 3 ({histogram.granularity}): log10(tracking/functional)"]
    for bin_ in histogram.bins:
        bar = "#" * max(0, round(bin_.count / peak * width))
        marker = {"tracking": "T", "functional": "F", "mixed": "M"}[bin_.region]
        lines.append(
            f"[{bin_.lo:+5.1f},{bin_.hi:+5.1f}) {marker} {bin_.count:>7,} {bar}"
        )
    return "\n".join(lines)


def rows_to_csv(headers: list[str], rows: list[list[str]]) -> str:
    import csv

    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(headers)
    writer.writerows(rows)
    return buffer.getvalue()


@dataclass(frozen=True)
class PaperComparison:
    """Paper-reported vs measured, one metric per row."""

    metric: str
    paper_value: float
    measured_value: float

    @property
    def absolute_error(self) -> float:
        return abs(self.paper_value - self.measured_value)

    def within(self, tolerance: float) -> bool:
        return self.absolute_error <= tolerance


def compare_with_paper(
    report: SiftReport, paper: PaperTargets = PAPER
) -> list[PaperComparison]:
    """Compare the shape metrics that do not depend on crawl scale.

    Separation factors, cumulative separation and mixed-entity shares are
    scale-free, so they are directly comparable to the published numbers.
    """
    comparisons: list[PaperComparison] = []
    paper_levels = {
        "domain": paper.domain,
        "hostname": paper.hostname,
        "script": paper.script,
        "method": paper.method,
    }
    paper_cumulative = paper.cumulative_separation()
    for level, measured_cum, paper_cum in zip(
        report.levels, report.cumulative_separation(), paper_cumulative
    ):
        target = paper_levels[level.granularity]
        comparisons.append(
            PaperComparison(
                metric=f"{level.granularity}: separation factor",
                paper_value=target.separation_factor,
                measured_value=level.separation_factor,
            )
        )
        comparisons.append(
            PaperComparison(
                metric=f"{level.granularity}: mixed entity share",
                paper_value=target.mixed_entity_share,
                measured_value=(
                    level.entity_count(ResourceClass.MIXED) / level.entity_count()
                    if level.entity_count()
                    else 0.0
                ),
            )
        )
        comparisons.append(
            PaperComparison(
                metric=f"{level.granularity}: cumulative separation",
                paper_value=paper_cum,
                measured_value=measured_cum,
            )
        )
    return comparisons


def render_comparison(comparisons: list[PaperComparison]) -> str:
    return ascii_table(
        ["Metric", "Paper", "Measured", "Abs. error"],
        [
            [
                c.metric,
                f"{c.paper_value:.3f}",
                f"{c.measured_value:.3f}",
                f"{c.absolute_error:.3f}",
            ]
            for c in comparisons
        ],
    )
