"""Measurement analysis: table/figure builders, bootstrap confidence
intervals, and rendering."""

from .confidence import (
    ConfidenceInterval,
    bootstrap_metric,
    bootstrap_separation_factors,
)
from .figures import (
    HistogramBin,
    RatioHistogram,
    build_figure3,
    build_figure3_panel,
    build_figure4,
    build_figure5,
)
from .report import (
    PaperComparison,
    ascii_table,
    compare_with_paper,
    render_comparison,
    render_histogram,
    render_table1,
    render_table2,
    render_table3,
    rows_to_csv,
)
from .tables import (
    Table1Row,
    Table2Row,
    Table3Row,
    build_table1,
    build_table2,
    build_table3,
)

__all__ = [
    "Table1Row",
    "Table2Row",
    "Table3Row",
    "build_table1",
    "build_table2",
    "build_table3",
    "HistogramBin",
    "RatioHistogram",
    "build_figure3",
    "build_figure3_panel",
    "build_figure4",
    "build_figure5",
    "ascii_table",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_histogram",
    "render_comparison",
    "rows_to_csv",
    "PaperComparison",
    "compare_with_paper",
    "ConfidenceInterval",
    "bootstrap_metric",
    "bootstrap_separation_factors",
]
