"""Bootstrap confidence intervals for the study's headline metrics.

The paper reports point estimates over one crawl.  For a measurement
library, users also want to know how stable those estimates are under
resampling.  We implement the standard **cluster bootstrap over sites**:
requests from the same page load are correlated, so the resampling unit is
the site, not the request — resample sites with replacement, re-run the
(cheap, offline) sift on each replicate, and take percentile intervals.
"""

from __future__ import annotations

import random
from collections import defaultdict
from dataclasses import dataclass
from typing import Callable

from ..core.hierarchy import HierarchicalSifter
from ..core.results import SiftReport
from ..labeling.labeler import AnalyzedRequest

__all__ = ["ConfidenceInterval", "bootstrap_metric", "bootstrap_separation_factors"]


@dataclass(frozen=True)
class ConfidenceInterval:
    """A percentile bootstrap interval for one metric."""

    metric: str
    point: float
    low: float
    high: float
    level: float
    replicates: int

    @property
    def width(self) -> float:
        return self.high - self.low

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def __str__(self) -> str:  # pragma: no cover - convenience
        return (
            f"{self.metric}: {self.point:.3f} "
            f"[{self.low:.3f}, {self.high:.3f}] @ {self.level:.0%}"
        )


def _percentile(sorted_values: list[float], q: float) -> float:
    """Linear-interpolated percentile on pre-sorted data."""
    if not sorted_values:
        raise ValueError("no values")
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = q * (len(sorted_values) - 1)
    lower = int(position)
    upper = min(lower + 1, len(sorted_values) - 1)
    fraction = position - lower
    return sorted_values[lower] * (1 - fraction) + sorted_values[upper] * fraction


def bootstrap_metric(
    requests: list[AnalyzedRequest],
    metric: Callable[[SiftReport], float],
    *,
    name: str = "metric",
    replicates: int = 200,
    level: float = 0.95,
    seed: int = 17,
    threshold: float = 2.0,
) -> ConfidenceInterval:
    """Cluster-bootstrap one scalar metric of the sift report."""
    if not 0 < level < 1:
        raise ValueError(f"level must be in (0, 1), got {level}")
    if replicates < 2:
        raise ValueError("need at least 2 replicates")
    by_site: dict[str, list[AnalyzedRequest]] = defaultdict(list)
    for request in requests:
        by_site[request.page].append(request)
    sites = sorted(by_site)
    if not sites:
        raise ValueError("no requests to bootstrap")

    sifter = HierarchicalSifter()
    if threshold != 2.0:
        from ..core.classifier import RatioClassifier

        sifter = HierarchicalSifter(RatioClassifier(threshold))

    point = metric(sifter.sift(requests))
    rng = random.Random(seed)
    values: list[float] = []
    for _ in range(replicates):
        sample: list[AnalyzedRequest] = []
        for _ in range(len(sites)):
            sample.extend(by_site[rng.choice(sites)])
        values.append(metric(sifter.sift(sample)))
    values.sort()
    alpha = (1 - level) / 2
    return ConfidenceInterval(
        metric=name,
        point=point,
        low=_percentile(values, alpha),
        high=_percentile(values, 1 - alpha),
        level=level,
        replicates=replicates,
    )


def bootstrap_separation_factors(
    requests: list[AnalyzedRequest],
    *,
    replicates: int = 200,
    level: float = 0.95,
    seed: int = 17,
) -> list[ConfidenceInterval]:
    """Intervals for each level's separation factor + the cumulative one."""
    intervals: list[ConfidenceInterval] = []
    for granularity in ("domain", "hostname", "script", "method"):
        intervals.append(
            bootstrap_metric(
                requests,
                lambda report, g=granularity: report.level(g).separation_factor,
                name=f"{granularity} separation factor",
                replicates=replicates,
                level=level,
                seed=seed,
            )
        )
    intervals.append(
        bootstrap_metric(
            requests,
            lambda report: report.final_separation,
            name="cumulative separation factor",
            replicates=replicates,
            level=level,
            seed=seed,
        )
    )
    return intervals
