"""Figure builders: the data series behind Figures 3, 4 and 5.

* **Figure 3 (a-d)** — per-granularity histogram of the common-log ratio,
  three peaks: functional ``(-inf, -2]``, mixed ``(-2, 2)``, tracking
  ``[2, inf)``.
* **Figure 4** — share of mixed scripts versus classification threshold.
* **Figure 5** — merged call graph of a mixed method with its point of
  divergence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.callstack_analysis import DivergenceResult, analyze_mixed_method
from ..core.results import LevelReport, SiftReport
from ..core.sensitivity import SensitivityResult, threshold_sweep
from ..labeling.labeler import AnalyzedRequest

__all__ = [
    "HistogramBin",
    "RatioHistogram",
    "build_figure3",
    "build_figure4",
    "build_figure5",
]


@dataclass(frozen=True, slots=True)
class HistogramBin:
    """One histogram bar: ``[lo, hi)`` and the entity count inside."""

    lo: float
    hi: float
    count: int

    @property
    def center(self) -> float:
        return (self.lo + self.hi) / 2

    @property
    def region(self) -> str:
        """Figure 3's colouring: which classification band the bin is in."""
        if self.lo >= 2:
            return "tracking"
        if self.hi <= -2:
            return "functional"
        return "mixed"


@dataclass
class RatioHistogram:
    """The Figure 3 panel for one granularity."""

    granularity: str
    bins: list[HistogramBin]
    clip: float

    @property
    def total(self) -> int:
        return sum(b.count for b in self.bins)

    def peak_regions(self) -> dict[str, int]:
        """Entity mass per band — the 'three distinct peaks' check."""
        out = {"tracking": 0, "functional": 0, "mixed": 0}
        for bin_ in self.bins:
            out[bin_.region] += bin_.count
        return out

    def has_three_peaks(self) -> bool:
        regions = self.peak_regions()
        return all(count > 0 for count in regions.values())


def _histogram(
    ratios: list[float], granularity: str, bin_width: float, clip: float
) -> RatioHistogram:
    """Bin ratios; ±inf (and beyond-clip values) land in the edge bins."""
    edges: list[float] = []
    lo = -clip
    while lo < clip - 1e-9:
        edges.append(lo)
        lo += bin_width
    edges.append(clip)
    counts = [0] * (len(edges) - 1)
    for ratio in ratios:
        if math.isnan(ratio):
            continue
        clipped = max(-clip, min(clip - 1e-9, ratio))
        index = min(int((clipped + clip) / bin_width), len(counts) - 1)
        counts[index] += 1
    bins = [
        HistogramBin(lo=edges[i], hi=edges[i + 1], count=counts[i])
        for i in range(len(counts))
    ]
    return RatioHistogram(granularity=granularity, bins=bins, clip=clip)


def build_figure3(
    report: SiftReport, *, bin_width: float = 0.5, clip: float = 5.0
) -> dict[str, RatioHistogram]:
    """All four panels (a: domain, b: hostname, c: script, d: method)."""
    out: dict[str, RatioHistogram] = {}
    for level in report.levels:
        out[level.granularity] = _histogram(
            level.ratios(), level.granularity, bin_width, clip
        )
    return out


def build_figure3_panel(
    level: LevelReport, *, bin_width: float = 0.5, clip: float = 5.0
) -> RatioHistogram:
    return _histogram(level.ratios(), level.granularity, bin_width, clip)


def build_figure4(
    requests: list[AnalyzedRequest],
    *,
    granularity: str = "script",
    thresholds: list[float] | None = None,
) -> SensitivityResult:
    """The Figure 4 curve (default: scripts, thresholds 1.0..3.0)."""
    return threshold_sweep(requests, granularity, thresholds)


def build_figure5(
    requests: list[AnalyzedRequest], script: str, method: str
) -> DivergenceResult:
    """The Figure 5 call-stack analysis for one mixed method."""
    return analyze_mixed_method(requests, script, method)
