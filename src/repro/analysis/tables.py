"""Table builders: the three tables of the paper's evaluation.

* **Table 1** — requests classified at each granularity, with separation
  factor and cumulative separation factor.
* **Table 2** — unique resources classified at each granularity.
* **Table 3** — manual breakage analysis of blocking mixed scripts on a
  site sample (automated here through the functionality model).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..browser.breakage import BreakageReport, assess_breakage
from ..browser.engine import BrowserEngine
from ..core.classifier import ResourceClass
from ..core.results import SiftReport
from ..webmodel.generator import SyntheticWeb

__all__ = [
    "Table1Row",
    "Table2Row",
    "Table3Row",
    "build_table1",
    "build_table2",
    "build_table3",
]


@dataclass(frozen=True)
class Table1Row:
    """One granularity's request-level row."""

    granularity: str
    tracking: int
    functional: int
    mixed: int
    separation_factor: float
    cumulative_separation: float

    @property
    def total(self) -> int:
        return self.tracking + self.functional + self.mixed


@dataclass(frozen=True)
class Table2Row:
    """One granularity's resource-level row."""

    granularity: str
    tracking: int
    functional: int
    mixed: int
    separation_factor: float

    @property
    def total(self) -> int:
        return self.tracking + self.functional + self.mixed

    @property
    def mixed_share(self) -> float:
        return self.mixed / self.total if self.total else 0.0


@dataclass(frozen=True)
class Table3Row:
    """One website's breakage outcome."""

    website: str
    mixed_script: str
    breakage: str
    comment: str


def build_table1(report: SiftReport) -> list[Table1Row]:
    rows: list[Table1Row] = []
    for level, cumulative in zip(report.levels, report.cumulative_separation()):
        rows.append(
            Table1Row(
                granularity=level.granularity,
                tracking=level.request_count(ResourceClass.TRACKING),
                functional=level.request_count(ResourceClass.FUNCTIONAL),
                mixed=level.request_count(ResourceClass.MIXED),
                separation_factor=level.separation_factor,
                cumulative_separation=cumulative,
            )
        )
    return rows


def build_table2(report: SiftReport) -> list[Table2Row]:
    rows: list[Table2Row] = []
    for level in report.levels:
        # Table 2's separation factor is over *requests*, same as Table 1 —
        # the entity counts are what changes between the tables.
        rows.append(
            Table2Row(
                granularity=level.granularity,
                tracking=level.entity_count(ResourceClass.TRACKING),
                functional=level.entity_count(ResourceClass.FUNCTIONAL),
                mixed=level.entity_count(ResourceClass.MIXED),
                separation_factor=_entity_separation(level),
            )
        )
    return rows


def _entity_separation(level) -> float:
    """Share of the level's *resources* that are pure (Table 2's factor)."""
    total = level.entity_count()
    if total == 0:
        return 0.0
    return (
        level.entity_count(ResourceClass.TRACKING)
        + level.entity_count(ResourceClass.FUNCTIONAL)
    ) / total


def build_table3(
    web: SyntheticWeb,
    report: SiftReport,
    *,
    sample_size: int = 10,
    seed: int = 2021,
    engine: BrowserEngine | None = None,
) -> list[Table3Row]:
    """Block the classified-mixed scripts on a random site sample.

    Sites are eligible when they host at least one script the sift
    classified as mixed (the paper's random sample is implicitly
    conditioned the same way — each row names the site's mixed script).
    """
    import random

    engine = engine or BrowserEngine()
    mixed_script_urls = {
        result.key
        for result in report.script.by_class(ResourceClass.MIXED)
    }
    eligible = [
        site
        for site in web.websites
        if any(script.url in mixed_script_urls for script in site.scripts)
    ]
    rng = random.Random(seed)
    sample = rng.sample(eligible, min(sample_size, len(eligible)))
    rows: list[Table3Row] = []
    for site in sample:
        blocked = frozenset(
            script.url
            for script in site.scripts
            if script.url in mixed_script_urls
        )
        outcome: BreakageReport = assess_breakage(site, blocked, engine=engine)
        script_names = ", ".join(sorted(url.rsplit("/", 1)[-1] for url in blocked))
        rows.append(
            Table3Row(
                website=site.url,
                mixed_script=script_names,
                breakage=outcome.level.value.capitalize(),
                comment=outcome.comment,
            )
        )
    return rows
