"""JavaScript source emission for synthetic scripts.

Content blockers do not ship blocking *policies* for mixed scripts — they
ship **surrogate script files** (NoScript, uBlock Origin, AdGuard, Firefox
SmartBlock, all cited in paper §5).  To make that end of the pipeline
concrete, this module renders a :class:`~repro.webmodel.resources.ScriptSpec`
into real JavaScript source: one function per method, whose body performs
the planned network calls with the idiomatic API for each resource type
(``fetch`` for XHR, ``new Image()`` for pixels, ``navigator.sendBeacon``
for pings, DOM injection for scripts/styles).

The companion :mod:`repro.jsgen.analyzer` can parse the emitted source back
(function inventory + network-call sites), and
:mod:`repro.jsgen.surrogate` rewrites it into a surrogate file with
tracking methods stubbed.
"""

from __future__ import annotations

from ..webmodel.resources import MethodSpec, ScriptSpec

__all__ = ["script_to_source", "method_to_source"]

_HEADER = "/* synthesised by repro.jsgen — behaviourally faithful source */"


def _call_for(url: str, resource_type: str, indent: str) -> str:
    if resource_type == "image":
        return (
            f"{indent}var img = new Image();\n"
            f'{indent}img.src = "{url}";\n'
        )
    if resource_type == "ping":
        return f'{indent}navigator.sendBeacon("{url}");\n'
    if resource_type == "script":
        return (
            f"{indent}var s = document.createElement('script');\n"
            f'{indent}s.src = "{url}";\n'
            f"{indent}document.head.appendChild(s);\n"
        )
    if resource_type == "stylesheet":
        return (
            f"{indent}var l = document.createElement('link');\n"
            f"{indent}l.rel = 'stylesheet';\n"
            f'{indent}l.href = "{url}";\n'
            f"{indent}document.head.appendChild(l);\n"
        )
    if resource_type == "font":
        return (
            f'{indent}new FontFace("webfont", "url({url})").load();\n'
        )
    return f'{indent}fetch("{url}");\n'


def method_to_source(
    method: MethodSpec, *, max_calls: int = 6, indent: str = "  "
) -> str:
    """Render one method as a function declaration (or namespaced member)."""
    body_lines: list[str] = []
    seen: set[str] = set()
    for invocation in method.invocations:
        for request in invocation.requests:
            if request.url in seen:
                continue
            seen.add(request.url)
            body_lines.append(
                _call_for(request.url, request.resource_type, indent * 2)
            )
            if len(seen) >= max_calls:
                break
        if len(seen) >= max_calls:
            break
    if not body_lines:
        body_lines.append(f"{indent * 2}/* no observed network behaviour */\n")
    body = "".join(body_lines)

    name = method.name
    if "." in name:
        # namespaced member, e.g. Pa.xhrRequest
        namespace, _, member = name.rpartition(".")
        return (
            f"{indent}window.{namespace} = window.{namespace} || {{}};\n"
            f"{indent}window.{namespace}.{member} = function () {{\n"
            f"{body}"
            f"{indent}}};\n"
        )
    if name == "anonymous":
        return (
            f"{indent}__callbacks.push(function () {{\n"
            f"{body}"
            f"{indent}}});\n"
        )
    return f"{indent}function {name}() {{\n{body}{indent}}}\n"


def script_to_source(script: ScriptSpec) -> str:
    """Render a whole script as an IIFE module."""
    parts = [
        _HEADER + "\n",
        f"/* source: {script.url} ({script.kind.value}, "
        f"{script.category.value}) */\n",
        "(function () {\n",
        "  'use strict';\n",
        "  var __callbacks = [];\n",
    ]
    for method in script.methods:
        parts.append(method_to_source(method))
    exported = [m.name for m in script.methods if "." not in m.name and m.name != "anonymous"]
    if exported:
        names = ", ".join(f"{n}: {n}" for n in exported)
        parts.append(f"  window.__module = {{ {names} }};\n")
    parts.append("})();\n")
    return "".join(parts)
