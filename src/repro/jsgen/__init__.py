"""JavaScript source toolchain: emit script source, analyze it, and rewrite
surrogate shims with tracking methods stubbed (paper §5)."""

from .analyzer import (
    FunctionInfo,
    JsSyntaxError,
    ScriptAnalysis,
    Token,
    analyze_source,
    tokenize,
)
from .codegen import method_to_source, script_to_source
from .surrogate import (
    SurrogateSource,
    generate_surrogate_source,
    verify_surrogate_source,
)

__all__ = [
    "Token",
    "tokenize",
    "JsSyntaxError",
    "FunctionInfo",
    "ScriptAnalysis",
    "analyze_source",
    "script_to_source",
    "method_to_source",
    "SurrogateSource",
    "generate_surrogate_source",
    "verify_surrogate_source",
]
