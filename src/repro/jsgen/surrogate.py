"""Surrogate *source* generation: rewrite a script file, stubbing methods.

Real surrogate scripts keep the original API surface (so dependent code
does not throw) while turning tracking entry points into no-ops.  Given the
original source and the list of methods to remove — typically
:class:`~repro.core.surrogate.SurrogateScript.removed_methods` from the
sift — this module produces the shim file and verifies it:

* every removed method's body becomes ``{ /* stubbed */ }``,
* kept methods are byte-identical,
* re-analysis proves no network call survives in stubbed methods.
"""

from __future__ import annotations

from dataclasses import dataclass

from .analyzer import ScriptAnalysis, analyze_source

__all__ = ["SurrogateSource", "generate_surrogate_source", "verify_surrogate_source"]

_STUB_BODY = "{ /* stubbed by TrackerSift surrogate */ }"


@dataclass(frozen=True)
class SurrogateSource:
    """The rewritten file plus bookkeeping."""

    source: str
    stubbed: tuple[str, ...]
    missing: tuple[str, ...]

    @property
    def complete(self) -> bool:
        """True when every requested method was found and stubbed."""
        return not self.missing


def generate_surrogate_source(
    source: str, removed_methods: tuple[str, ...] | list[str]
) -> SurrogateSource:
    """Stub the bodies of ``removed_methods`` in ``source``.

    Methods that cannot be located (e.g. removed names that only existed
    under bundler renaming) are reported in ``missing`` rather than
    silently ignored.
    """
    analysis = analyze_source(source)
    spans: list[tuple[int, int, str]] = []
    missing: list[str] = []
    for name in removed_methods:
        if not name.strip():
            # A blank name would resolve to an *anonymous* function — in
            # generated sources that is the IIFE wrapper itself, and
            # stubbing it would hollow out every kept method.
            missing.append(name)
            continue
        try:
            info = analysis.function(name)
        except KeyError:
            missing.append(name)
            continue
        spans.append((info.char_start, info.char_end, name))

    # rewrite back-to-front so offsets stay valid
    out = source
    stubbed: list[str] = []
    for start, end, name in sorted(spans, reverse=True):
        out = out[:start] + _STUB_BODY + out[end + 1 :]
        stubbed.append(name)
    header = (
        "/* TrackerSift surrogate — tracking methods stubbed: "
        + (", ".join(sorted(stubbed)) if stubbed else "none")
        + " */\n"
    )
    return SurrogateSource(
        source=header + out,
        stubbed=tuple(sorted(stubbed)),
        missing=tuple(missing),
    )


def verify_surrogate_source(
    surrogate: SurrogateSource, original_analysis: ScriptAnalysis | None = None
) -> bool:
    """Check the surrogate: stubbed methods carry no network calls, kept
    methods keep theirs."""
    analysis = analyze_source(surrogate.source)
    for name in surrogate.stubbed:
        try:
            info = analysis.function(name)
        except KeyError:
            return False
        if info.has_network_calls:
            return False
    if original_analysis is not None:
        for info in original_analysis.functions:
            if not info.name or info.name in surrogate.stubbed:
                continue
            try:
                rewritten = analysis.function(info.name)
            except KeyError:
                # A kept method vanished from the rewrite: the surrogate
                # is broken, which is a verification failure — not a crash.
                return False
            if sorted(rewritten.network_urls) != sorted(info.network_urls):
                return False
    return True
