"""Lightweight static analysis of JavaScript source.

A small, dependency-free lexer plus two passes over the token stream:

* **function inventory** — declarations (``function name(...)``),
  assignments (``x.y = function (...)``), and anonymous function
  expressions, each with its source line and the span of its body;
* **network-call sites** — ``fetch(url)``, ``navigator.sendBeacon(url)``,
  ``img.src = url``, ``s.src = url`` …, attributed to the enclosing
  function.

This is what lets the surrogate pipeline *verify* its output: analyze the
generated surrogate and check that removed methods contain no network
calls.  The lexer handles strings (all three quote kinds), line/block
comments, and regex-free token classes — enough for the source this
library emits and for hand-written test snippets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Token", "tokenize", "JsSyntaxError", "FunctionInfo", "ScriptAnalysis", "analyze_source"]

_IDENT_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_$")
_IDENT_CHARS = _IDENT_START | set("0123456789")
_NETWORK_CALLEES = {"fetch", "sendBeacon", "open"}


@dataclass(frozen=True, slots=True)
class Token:
    """One lexical token with its position."""

    kind: str  # "ident", "string", "punct", "number"
    value: str
    line: int
    offset: int


class JsSyntaxError(ValueError):
    """Raised for unterminated strings/comments."""


def tokenize(source: str) -> list[Token]:
    """Lex JavaScript into identifiers, strings, numbers and punctuation."""
    tokens: list[Token] = []
    i = 0
    line = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            end = source.find("\n", i)
            i = n if end < 0 else end
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise JsSyntaxError(f"unterminated block comment at line {line}")
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if ch in "'\"`":
            j = i + 1
            while j < n:
                if source[j] == "\\":
                    j += 2
                    continue
                if source[j] == ch:
                    break
                if source[j] == "\n" and ch != "`":
                    raise JsSyntaxError(f"unterminated string at line {line}")
                j += 1
            else:
                raise JsSyntaxError(f"unterminated string at line {line}")
            tokens.append(Token("string", source[i + 1 : j], line, i))
            line += source.count("\n", i, j)
            i = j + 1
            continue
        if ch in _IDENT_START:
            j = i + 1
            while j < n and source[j] in _IDENT_CHARS:
                j += 1
            tokens.append(Token("ident", source[i:j], line, i))
            i = j
            continue
        if ch.isdigit():
            j = i + 1
            while j < n and (source[j].isdigit() or source[j] in ".xXabcdefABCDEF"):
                j += 1
            tokens.append(Token("number", source[i:j], line, i))
            i = j
            continue
        tokens.append(Token("punct", ch, line, i))
        i += 1
    return tokens


@dataclass
class FunctionInfo:
    """One function found in the source."""

    name: str  # "" for anonymous
    line: int
    body_start: int  # token index of the opening brace
    body_end: int  # token index of the matching closing brace
    network_urls: list[str] = field(default_factory=list)
    #: character offsets of the body braces, for source rewriting
    char_start: int = 0
    char_end: int = 0

    @property
    def is_anonymous(self) -> bool:
        return not self.name

    @property
    def has_network_calls(self) -> bool:
        return bool(self.network_urls)


@dataclass
class ScriptAnalysis:
    """The full inventory for one source file."""

    functions: list[FunctionInfo] = field(default_factory=list)
    #: URLs referenced by network calls outside any function
    toplevel_network_urls: list[str] = field(default_factory=list)

    def function(self, name: str) -> FunctionInfo:
        for info in self.functions:
            if info.name == name:
                return info
        raise KeyError(name)

    def function_names(self) -> list[str]:
        return [f.name for f in self.functions if f.name]

    def all_network_urls(self) -> list[str]:
        urls = list(self.toplevel_network_urls)
        for info in self.functions:
            urls.extend(info.network_urls)
        return urls


def _match_brace(tokens: list[Token], open_index: int) -> int:
    depth = 0
    for index in range(open_index, len(tokens)):
        token = tokens[index]
        if token.kind != "punct":
            continue
        if token.value == "{":
            depth += 1
        elif token.value == "}":
            depth -= 1
            if depth == 0:
                return index
    raise JsSyntaxError(f"unbalanced braces from token {open_index}")


def _function_name(tokens: list[Token], func_index: int) -> str:
    """Name for the ``function`` keyword at ``func_index``.

    Handles ``function name(...)``, ``x = function(...)`` and
    ``x.y = function(...)`` / ``name: function(...)`` forms.
    """
    after = tokens[func_index + 1] if func_index + 1 < len(tokens) else None
    if after is not None and after.kind == "ident":
        return after.value
    # look left for `<name> (= or :) function`
    i = func_index - 1
    if i >= 0 and tokens[i].kind == "punct" and tokens[i].value in "=:":
        parts: list[str] = []
        j = i - 1
        while j >= 0:
            token = tokens[j]
            if token.kind == "ident":
                parts.append(token.value)
                if j >= 1 and tokens[j - 1].kind == "punct" and tokens[j - 1].value == ".":
                    j -= 2
                    continue
            break
        if parts:
            name = ".".join(reversed(parts))
            # drop a leading `window.` namespace qualifier
            return name.removeprefix("window.")
    return ""


def _find_open_brace(tokens: list[Token], start: int) -> int:
    for index in range(start, len(tokens)):
        if tokens[index].kind == "punct" and tokens[index].value == "{":
            return index
    raise JsSyntaxError("function without body")


def _collect_network_urls(tokens: list[Token], start: int, end: int) -> list[str]:
    """URLs referenced by network idioms between two token indices."""
    urls: list[str] = []
    for i in range(start, end):
        token = tokens[i]
        if token.kind == "ident" and token.value in _NETWORK_CALLEES:
            # fetch("url") / sendBeacon("url") / xhr.open("GET", "url")
            for j in range(i + 1, min(i + 8, end)):
                if tokens[j].kind == "string" and "://" in tokens[j].value:
                    urls.append(tokens[j].value)
                    break
        elif (
            token.kind == "ident"
            and token.value in ("src", "href")
            and i + 2 < end
            and tokens[i + 1].kind == "punct"
            and tokens[i + 1].value == "="
            and tokens[i + 2].kind == "string"
        ):
            urls.append(tokens[i + 2].value)
    return urls


def analyze_source(source: str) -> ScriptAnalysis:
    """Build the function + network inventory for one source file."""
    tokens = tokenize(source)
    analysis = ScriptAnalysis()
    covered: list[tuple[int, int]] = []

    for index, token in enumerate(tokens):
        if token.kind != "ident" or token.value != "function":
            continue
        open_brace = _find_open_brace(tokens, index)
        close_brace = _match_brace(tokens, open_brace)
        name = _function_name(tokens, index)
        info = FunctionInfo(
            name=name,
            line=token.line,
            body_start=open_brace,
            body_end=close_brace,
            char_start=tokens[open_brace].offset,
            char_end=tokens[close_brace].offset,
        )
        info.network_urls = _collect_network_urls(tokens, open_brace, close_brace)
        analysis.functions.append(info)
        covered.append((open_brace, close_brace))

    # Top-level calls: outside every *named* function body.  The outermost
    # IIFE wrapper (anonymous) does not count as enclosing.
    named_spans = [
        (f.body_start, f.body_end) for f in analysis.functions if f.name
    ]
    all_urls_positions: list[tuple[int, str]] = []
    for i, token in enumerate(tokens):
        if token.kind == "ident" and token.value in _NETWORK_CALLEES:
            for j in range(i + 1, min(i + 8, len(tokens))):
                if tokens[j].kind == "string" and "://" in tokens[j].value:
                    all_urls_positions.append((i, tokens[j].value))
                    break
    for position, url in all_urls_positions:
        inside = any(start < position < end for start, end in named_spans)
        if not inside:
            # also exclude anonymous function bodies that are real handlers
            anon_spans = [
                (f.body_start, f.body_end)
                for f in analysis.functions
                if not f.name and _is_handler(tokens, f)
            ]
            if not any(start < position < end for start, end in anon_spans):
                analysis.toplevel_network_urls.append(url)
    return analysis


def _is_handler(tokens: list[Token], info: FunctionInfo) -> bool:
    """Heuristic: an anonymous function passed as an argument (callback),
    as opposed to an IIFE wrapper whose body runs at top level."""
    # immediately-invoked: `(function () {...})(...)` — body is top-level
    end = info.body_end
    if (
        end + 2 < len(tokens)
        and tokens[end + 1].kind == "punct"
        and tokens[end + 1].value == ")"
        and tokens[end + 2].kind == "punct"
        and tokens[end + 2].value == "("
    ):
        return False
    # find the `function` keyword before the body and look one token left
    for index in range(info.body_start - 1, -1, -1):
        token = tokens[index]
        if token.kind == "ident" and token.value == "function":
            if index == 0:
                return False
            prev = tokens[index - 1]
            return prev.kind == "punct" and prev.value in "(,"
    return False
