"""The fault plan: which execution of which unit of work fails, and how.

A :class:`FaultPlan` is a tuple of :class:`FaultSpec` entries.  Each spec
names an **injection site** (where in the system the hook lives), a
**key** (which unit at that site — a shard id, a serve-worker index), the
**execution numbers** that fire (1-based: the first attempt at a shard is
execution 1, a retry or a stolen duplicate is execution 2, a restarted
serve worker is incarnation 2 …), and a **kind**:

=====================  =====================================================
``crash``              the worker process hard-exits (``os._exit``) — no
                       exception, no cleanup; the parent sees a dead process
``hang``               the worker stops heartbeating and sleeps past every
                       lease deadline (the parent must detect and kill it)
``slow``               the worker sleeps ``seconds`` *while heartbeating*,
                       then completes normally — the straggler case work
                       stealing exists for
``transient``          a :class:`TransientFault` is raised inside the unit
                       of work — the retryable failure class (flaky crawl,
                       transient network error)
``crash-before-checkpoint``  parent-side: raise :class:`SimulatedCrash`
                       just before a checkpoint write (the shard's work is
                       lost; resume must recompute it)
``crash-after-checkpoint``   parent-side: raise just after the write (the
                       shard is safe on disk; resume must *not* recompute)
``corrupt``            deterministically flip bytes in a payload (seeded)
``truncate``           cut a payload to ``fraction`` of its length
=====================  =====================================================

Injection **sites** wired up across the repo:

* ``worker.shard`` — around one shard execution in a lease worker
  (:mod:`repro.core.parallel`); keys are shard ids.
* ``engine.checkpoint`` — around the parent's checkpoint write
  (:meth:`repro.core.engine.StreamingPipeline._store`); keys are shard ids.
* ``fanout.artifact`` — the compiled oracle artifact the parent ships to
  workers, corrupted/truncated after compilation; key ignored.
* ``serve.worker`` — a supervised serve worker (``crash`` after
  ``seconds``); keys are worker indexes, executions are incarnations.
* ``client.request`` — reserved for client-side tests (the regression
  tests inject at the socket level instead).

Everything is deterministic: the same plan against the same study
produces the same fault sequence, which is what lets the chaos gates
assert byte-identical reports and ledger chains across a faulted and a
fault-free run.

Plans are injectable without code via the ``TRACKERSIFT_FAULTS``
environment variable — inline JSON, or ``@/path/to/plan.json`` — which
reaches the engine, lease workers, and the serve fleet (each checks
:meth:`FaultPlan.from_env` when no plan was passed explicitly), so
``scripts/chaos_smoke.py`` can chaos a run through the real CLI.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import asdict, dataclass, fields

__all__ = [
    "FAULT_ENV_VAR",
    "FAULT_KINDS",
    "FAULT_SITES",
    "FaultPlan",
    "FaultSpec",
    "SimulatedCrash",
    "TransientFault",
]

FAULT_ENV_VAR = "TRACKERSIFT_FAULTS"

FAULT_SITES = (
    "worker.shard",
    "engine.checkpoint",
    "fanout.artifact",
    "serve.worker",
    "client.request",
)

FAULT_KINDS = (
    "crash",
    "hang",
    "slow",
    "transient",
    "crash-before-checkpoint",
    "crash-after-checkpoint",
    "corrupt",
    "truncate",
)


class TransientFault(RuntimeError):
    """An injected retryable failure (a flaky crawl, a dropped request)."""


class SimulatedCrash(RuntimeError):
    """An injected parent-process crash point.

    Raised (never caught by the code under test) where a real crash
    would kill the process — e.g. mid-checkpoint — so tests can prove
    that resume recovers from exactly that state.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One fault: *kind* at *site*, for *key*, on these *executions*."""

    site: str
    kind: str
    key: int | str | None = None
    executions: tuple[int, ...] = (1,)
    #: hang/slow duration; also the pre-crash delay for ``serve.worker``.
    seconds: float = 30.0
    #: corruption determinism (byte positions/values for corrupt/truncate).
    seed: int = 0
    #: truncate: keep this fraction of the payload.
    fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; one of {FAULT_SITES}"
            )
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; one of {FAULT_KINDS}"
            )
        if not isinstance(self.executions, tuple):
            object.__setattr__(self, "executions", tuple(self.executions))
        if not self.executions or any(e < 1 for e in self.executions):
            raise ValueError("executions must be 1-based and non-empty")
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {self.fraction}")

    def matches(self, key: int | str | None, execution: int) -> bool:
        if self.key is not None and self.key != key:
            return False
        # "every execution from N on" is spelled as a closed range in the
        # plan (permanent faults enumerate a generous range) — see
        # FaultPlan.permanent for the helper that builds one.
        return execution in self.executions


#: executions tuple long enough to outlast any sane retry cap.
_PERMANENT = tuple(range(1, 65))


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, serializable schedule of injected faults."""

    specs: tuple[FaultSpec, ...] = ()
    #: labels the plan in notes/benches; carries no behaviour.
    name: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.specs, tuple):
            object.__setattr__(self, "specs", tuple(self.specs))

    def __bool__(self) -> bool:
        return bool(self.specs)

    def at(
        self, site: str, key: int | str | None, execution: int
    ) -> FaultSpec | None:
        """The first spec firing at ``(site, key, execution)``, if any."""
        for spec in self.specs:
            if spec.site == site and spec.matches(key, execution):
                return spec
        return None

    def count(self, site: str | None = None, kind: str | None = None) -> int:
        """How many specs target a site/kind (for bench bookkeeping)."""
        return sum(
            1
            for spec in self.specs
            if (site is None or spec.site == site)
            and (kind is None or spec.kind == kind)
        )

    # -- deterministic payload corruption -----------------------------------
    @staticmethod
    def corrupt_bytes(data: bytes, spec: FaultSpec) -> bytes:
        """Apply a ``corrupt``/``truncate`` spec to a payload, seeded."""
        if spec.kind == "truncate":
            return data[: int(len(data) * spec.fraction)]
        if spec.kind != "corrupt":
            raise ValueError(f"{spec.kind!r} is not a byte-corruption kind")
        if not data:
            return data
        rng = random.Random(spec.seed)
        mutated = bytearray(data)
        for _ in range(max(1, len(data) // 4096)):
            position = rng.randrange(len(mutated))
            mutated[position] ^= 1 + rng.randrange(255)
        return bytes(mutated)

    # -- construction helpers ------------------------------------------------
    @staticmethod
    def permanent(
        site: str, kind: str, key: int | str | None, **kwargs
    ) -> FaultSpec:
        """A spec that fires on every execution (up to a generous cap) —
        the un-retryable fault class quarantine exists for."""
        return FaultSpec(
            site=site, kind=kind, key=key, executions=_PERMANENT, **kwargs
        )

    @classmethod
    def sample(
        cls, seed: int, shard_ids: list[int], faults: int = 3
    ) -> "FaultPlan":
        """A seeded random plan over shard executions (fuzzing helper).

        Draws only *recoverable* worker-side faults (transient, crash,
        slow on the first execution), so a sampled plan must never change
        the study's output — the property the chaos fuzz test pins.
        """
        rng = random.Random(seed)
        specs = []
        if shard_ids:
            for _ in range(faults):
                specs.append(
                    FaultSpec(
                        site="worker.shard",
                        kind=rng.choice(("transient", "crash", "slow")),
                        key=rng.choice(shard_ids),
                        executions=(1,),
                        seconds=0.5,
                    )
                )
        return cls(specs=tuple(specs), name=f"sampled-{seed}")

    # -- JSON round trip -----------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "specs": [asdict(spec) for spec in self.specs],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, record: dict) -> "FaultPlan":
        known = {f.name for f in fields(FaultSpec)}
        specs = []
        for raw in record.get("specs", []):
            unknown = set(raw) - known
            if unknown:
                raise ValueError(f"unknown FaultSpec fields: {sorted(unknown)}")
            raw = dict(raw)
            if "executions" in raw:
                raw["executions"] = tuple(raw["executions"])
            specs.append(FaultSpec(**raw))
        return cls(specs=tuple(specs), name=record.get("name", ""))

    @classmethod
    def from_json(cls, data: str) -> "FaultPlan":
        return cls.from_dict(json.loads(data))

    @classmethod
    def from_env(cls, env: dict | None = None) -> "FaultPlan | None":
        """The plan named by ``TRACKERSIFT_FAULTS``, or ``None``.

        The value is inline JSON, or ``@/path`` naming a JSON file.  A
        malformed value raises: a chaos run that silently runs clean is
        worse than one that fails loudly.
        """
        value = (env if env is not None else os.environ).get(FAULT_ENV_VAR)
        if not value:
            return None
        if value.startswith("@"):
            with open(value[1:], "r", encoding="utf-8") as handle:
                value = handle.read()
        try:
            return cls.from_json(value)
        except (json.JSONDecodeError, TypeError, ValueError) as error:
            raise ValueError(
                f"{FAULT_ENV_VAR} does not hold a valid fault plan: {error}"
            ) from error
