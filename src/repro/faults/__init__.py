"""Deterministic fault injection for chaos-hardening every execution path.

The paper's arms-race setting — flaky crawls, churning lists, adversarial
sites — means the interesting behaviour of this system is how it degrades
under failure, not just how it performs on the happy path.  This package
is the injection plane the chaos tests, the chaos scenario pack,
``benchmarks/bench_chaos.py`` and ``scripts/chaos_smoke.py`` drive:
a :class:`~repro.faults.plan.FaultPlan` is pure data (seed-driven,
JSON-round-trippable, env-injectable) that names exactly which execution
of which unit of work fails, and how — so a chaos run is as reproducible
as a clean one, and byte-identity gates can compare the two.

See :mod:`repro.faults.plan` for the spec model and the injection sites.
"""

from .plan import (
    FAULT_ENV_VAR,
    FAULT_KINDS,
    FAULT_SITES,
    FaultPlan,
    FaultSpec,
    SimulatedCrash,
    TransientFault,
)

__all__ = [
    "FAULT_ENV_VAR",
    "FAULT_KINDS",
    "FAULT_SITES",
    "FaultPlan",
    "FaultSpec",
    "SimulatedCrash",
    "TransientFault",
]
