"""The sift → rulegen → validation → hot-reload control loop (paper §7).

:class:`ControlLoop` closes the feedback path between the offline study
and the online serving stack, and :class:`~repro.loop.adversary.Adversary`
plays the tracker's side so the loop can be run as the arms race the
paper describes.  See :mod:`repro.loop.control` for the full contract.
"""

from .adversary import Adversary, AdversaryMove
from .control import (
    HOTFIX_LIST,
    ControlLoop,
    CoverageStat,
    GroundTruthOracle,
    LoopError,
    LoopReport,
    RoundRecord,
)

__all__ = [
    "Adversary",
    "AdversaryMove",
    "ControlLoop",
    "CoverageStat",
    "GroundTruthOracle",
    "HOTFIX_LIST",
    "LoopError",
    "LoopReport",
    "RoundRecord",
]
