"""The paper's control loop: sift → rulegen → validation → hot reload.

TrackerSift's conclusion (§7) is that sift output *feeds back* into
finer-grained blocking: hotfix rules for tracking resources, surrogate
scripts for mixed ones.  This module closes that loop against the live
serving stack:

1. **Sift** — run the hierarchical pipeline over the current synthetic
   web under the analyst's labeling vantage (:class:`GroundTruthOracle`:
   ground truth for the web's own planned requests, the filter lists for
   everything else — this is what lets the loop *see* traffic the
   incumbent rules miss, exactly the situation after an adversary move).
2. **Recommend** — :func:`repro.core.rulegen.generate_recommendation`.
3. **Validate** — compile the candidate rules through the real
   :mod:`repro.filterlists` parser; reject any rule that blocks a
   ground-truth-functional request the incumbent base lists do not
   already block; grade functional breakage per site via
   :func:`repro.browser.breakage.assess_breakage` and reject rules that
   make any site worse than the incumbent; verify every surrogate
   directive by generating and checking the actual surrogate source
   through :mod:`repro.jsgen`.
4. **Hot reload** — survivors become the ``trackersift-hotfix`` list,
   published into :class:`~repro.serve.service.BlockingService` with
   revision provenance and per-rule churn attribution; the round then
   replays the workload through the service and checks served-vs-offline
   identity for the revision that answered.

An :class:`~repro.loop.adversary.Adversary` can mutate the web between
rounds, so :meth:`ControlLoop.run` executes the arms race the paper
describes: coverage drops when the tracker relocates, and the next
revision must win it back without blocking functional traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..browser.breakage import BreakageLevel, assess_breakage
from ..browser.engine import BrowserEngine
from ..core.engine import PipelineConfig
from ..core.pipeline import TrackerSiftPipeline
from ..core.classifier import ResourceClass
from ..core.results import SiftReport
from ..core.rulegen import (
    FilterRecommendation,
    SurrogateDirective,
    generate_recommendation,
    host_rule,
    script_rule,
)
from ..filterlists.lists import default_lists
from ..filterlists.oracle import FilterListOracle, Label, LabeledRequest
from ..filterlists.parser import ParsedList, parse_filter_list
from ..filterlists.rules import ResourceType
from ..jsgen.analyzer import analyze_source
from ..jsgen.codegen import script_to_source
from ..jsgen.surrogate import generate_surrogate_source, verify_surrogate_source
from ..scenarios.spec import ScenarioSpec
from ..serve.service import BlockingService
from ..urlkit import hostname, registrable_domain
from ..webmodel.generator import SyntheticWeb
from .adversary import Adversary, AdversaryMove

__all__ = [
    "HOTFIX_LIST",
    "ControlLoop",
    "CoverageStat",
    "GroundTruthOracle",
    "LoopError",
    "LoopReport",
    "RoundRecord",
]

#: The candidate revision's list name.  Constant across rounds on
#: purpose: ``BlockingService._churn`` pairs lists by name, so each
#: round's reload report attributes exactly the rules that changed —
#: never a full replacement of the hotfix list.
HOTFIX_LIST = "trackersift-hotfix"

_SEVERITY = {BreakageLevel.NONE: 0, BreakageLevel.MINOR: 1, BreakageLevel.MAJOR: 2}

#: bounded repair passes for the reject-and-rebuild validation loops.
_MAX_REPAIR_PASSES = 4


class LoopError(RuntimeError):
    """An invariant the control loop depends on failed."""


class GroundTruthOracle(FilterListOracle):
    """The analyst's labeling vantage for the loop's sift.

    Knows the synthetic web's own planned requests and labels them by
    ground truth (``matched_list="ground-truth"``); everything else falls
    back to the filter lists.  This models what the paper's measurement
    study has that the serving oracle does not — labeled traffic — and is
    what lets the sift classify traffic the incumbent rules miss (e.g. a
    freshly relocated tracking host).

    Subclassing is safe: the oracle's batch paths (``label_request_many``
    / ``decide_many``) devolve to the per-request override whenever
    ``label_request`` is overridden, so no pipeline path bypasses the
    ground truth.
    """

    def __init__(self, web: SyntheticWeb, *lists: ParsedList) -> None:
        super().__init__(*lists)
        truth: dict[str, bool] = {}
        for script in web.scripts:
            for method in script.methods:
                for invocation in method.invocations:
                    for request in invocation.requests:
                        truth[request.url] = request.tracking
        self._truth = truth

    def label_request(
        self,
        url: str,
        resource_type: ResourceType = ResourceType.OTHER,
        page_url: str = "",
    ) -> LabeledRequest:
        tracking = self._truth.get(url)
        if tracking is None:
            return super().label_request(url, resource_type, page_url)
        if tracking:
            return LabeledRequest(
                url=url,
                label=Label.TRACKING,
                matched_rule="ground-truth",
                matched_list="ground-truth",
            )
        return LabeledRequest(url=url, label=Label.FUNCTIONAL)


@dataclass(frozen=True)
class _WorkloadRequest:
    """One planned request plus the attribution the loop validates with."""

    url: str
    resource_type: str
    page_url: str
    script: str
    method: str
    tracking: bool


@dataclass(frozen=True)
class CoverageStat:
    """How one rule state scores on the current ground-truth workload.

    A tracking request counts as *covered* when the state intercepts it
    at any of the paper's three enforcement points: its URL blocks, its
    initiating script's URL blocks (``$script``), or its (script, method)
    is stubbed by an active surrogate.  ``functional_url_blocked`` is the
    URL-level collateral — the number the loop's gate holds at zero.
    """

    tracking_total: int
    tracking_covered: int
    functional_total: int
    functional_url_blocked: int

    @property
    def coverage(self) -> float:
        if self.tracking_total == 0:
            return 1.0
        return self.tracking_covered / self.tracking_total

    def to_dict(self) -> dict:
        return {
            "tracking_total": self.tracking_total,
            "tracking_covered": self.tracking_covered,
            "coverage": self.coverage,
            "functional_total": self.functional_total,
            "functional_url_blocked": self.functional_url_blocked,
        }


@dataclass
class RoundRecord:
    """Everything one loop round did, for gates and reports."""

    index: int
    revision: int
    provenance: str
    mutation: AdversaryMove | None
    coverage_before: CoverageStat
    coverage_after: CoverageStat
    rules_emitted: int
    rules_kept: int
    rules_rejected: list[dict]
    surrogates_kept: int
    surrogates_rejected: list[dict]
    parse_ok: bool
    roundtrip_failures: list[dict]
    identity_ok: bool
    identity_mismatches: int
    breakage: dict
    churn: dict
    churn_attribution: dict
    attribution_consistent: bool

    @property
    def roundtrip_ok(self) -> bool:
        return not self.roundtrip_failures

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "revision": self.revision,
            "provenance": self.provenance,
            "mutation": self.mutation.to_dict() if self.mutation else None,
            "coverage_before": self.coverage_before.to_dict(),
            "coverage_after": self.coverage_after.to_dict(),
            "rules_emitted": self.rules_emitted,
            "rules_kept": self.rules_kept,
            "rules_rejected": self.rules_rejected,
            "surrogates_kept": self.surrogates_kept,
            "surrogates_rejected": self.surrogates_rejected,
            "parse_ok": self.parse_ok,
            "roundtrip_ok": self.roundtrip_ok,
            "roundtrip_failures": self.roundtrip_failures,
            "identity_ok": self.identity_ok,
            "identity_mismatches": self.identity_mismatches,
            "breakage": self.breakage,
            "churn": self.churn,
            "churn_attribution": self.churn_attribution,
            "attribution_consistent": self.attribution_consistent,
        }


@dataclass
class LoopReport:
    """The whole run: one record per round, plus the workload scale."""

    sites: int
    seed: int
    rounds: list[RoundRecord] = field(default_factory=list)

    def trajectory(self) -> list[float]:
        """Post-reload tracking coverage, round by round."""
        return [record.coverage_after.coverage for record in self.rounds]

    def to_dict(self) -> dict:
        return {
            "sites": self.sites,
            "seed": self.seed,
            "rounds": [record.to_dict() for record in self.rounds],
            "trajectory": self.trajectory(),
        }


class ControlLoop:
    """Run the sift → rulegen → validation → hot-reload loop for N rounds.

    ``service`` defaults to a fresh :class:`BlockingService` over
    ``base_lists`` (themselves defaulting to the embedded lists); pass an
    existing service to hotfix a live deployment.  ``breakage_sites``
    bounds the per-round treatment/control breakage study (the paper's
    §5 sample, not a full-population sweep).
    """

    def __init__(
        self,
        web: SyntheticWeb,
        *,
        base_lists: tuple[ParsedList, ...] | None = None,
        service: BlockingService | None = None,
        seed: int = 7,
        threshold: float = 2.0,
        cluster_nodes: int = 13,
        breakage_sites: int = 8,
        adversary_seed: int = 0,
        max_hosts_per_move: int = 4,
    ) -> None:
        self._web = web
        self._base = tuple(base_lists) if base_lists else default_lists()
        if any(parsed.name == HOTFIX_LIST for parsed in self._base):
            raise ValueError(f"base lists may not be named {HOTFIX_LIST!r}")
        self._service = service or BlockingService(*self._base)
        self._seed = seed
        self._threshold = threshold
        self._cluster_nodes = cluster_nodes
        self._breakage_sites = breakage_sites
        self._max_hosts_per_move = max_hosts_per_move
        self._adversary = Adversary(web, seed=adversary_seed)
        self._engine = BrowserEngine()
        self._round = 0
        #: rules currently serving in the hotfix list, and where each came
        #: from (axis, sift key) — the source of churn attribution.
        self._active_rules: list[str] = []
        self._rule_origins: dict[str, dict] = {}
        self._active_surrogates: dict[str, frozenset[str]] = {}

    @classmethod
    def from_pack(cls, spec: ScenarioSpec, **overrides) -> "ControlLoop":
        """Build a loop from a scenario pack (the runner's web recipe)."""
        from ..scenarios.runner import ScenarioRunner

        web = ScenarioRunner.build_web(spec)
        kwargs = dict(
            seed=spec.seed,
            threshold=spec.threshold,
            cluster_nodes=spec.cluster_nodes,
        )
        kwargs.update(overrides)
        return cls(web, **kwargs)

    # -- public surface ----------------------------------------------------
    @property
    def service(self) -> BlockingService:
        return self._service

    @property
    def web(self) -> SyntheticWeb:
        return self._web

    def run(self, schedule: tuple[str | None, ...]) -> LoopReport:
        """One round per schedule entry: ``None``, ``"relocate"``, or
        ``"drift"`` (the adversary's move *before* that round's sift)."""
        report = LoopReport(sites=len(self._web.websites), seed=self._seed)
        for move in schedule:
            report.rounds.append(self.run_round(mutation=move))
        return report

    def run_round(self, mutation: str | None = None) -> RoundRecord:
        self._round += 1
        index = self._round

        move = self._mutate(mutation)
        workload = self._workload()
        incumbent = self._service.snapshot.oracle
        coverage_before = self._coverage(
            workload, incumbent, self._active_surrogates
        )

        # 1-2. sift under the analyst's vantage, recommend.
        report = self._sift()
        rec = generate_recommendation(report)
        origins = self._origins_for(report)
        emitted = [rule for rule in rec.all_rules()]

        # 3. validation: compile + reject + breakage + surrogates.
        kept, rejected = self._reject_functional_blockers(
            emitted, workload, incumbent
        )
        kept, breakage_rejected, breakage = self._breakage_gate(
            kept, incumbent
        )
        rejected.extend(breakage_rejected)
        surrogates_kept, surrogates_rejected = self._validate_surrogates(
            rec.surrogates
        )

        hotfix, parse_ok = self._compile_candidate(
            index, kept, origins, surrogates_kept
        )
        candidate_oracle = FilterListOracle(*self._base, hotfix)
        roundtrip_failures = self._roundtrip_failures(
            kept, origins, workload, candidate_oracle
        )

        # 4. hot reload with provenance + per-rule churn attribution.
        attribution = self._attribution(kept, origins)
        provenance = f"loop-round-{index}"
        reload_report = self._service.reload(
            *self._base, hotfix, provenance=provenance
        )
        reload_report["churn_attribution"] = attribution
        attribution_consistent = self._attribution_consistent(
            reload_report, attribution
        )

        identity_ok, identity_mismatches = self._identity_gate(workload)

        self._active_rules = kept
        self._rule_origins.update(
            {rule: origins[rule] for rule in kept if rule in origins}
        )
        self._active_surrogates = {
            directive.script: frozenset(directive.removed_methods)
            for directive in surrogates_kept
        }
        coverage_after = self._coverage(
            workload, self._service.snapshot.oracle, self._active_surrogates
        )

        return RoundRecord(
            index=index,
            revision=reload_report["revision"],
            provenance=provenance,
            mutation=move,
            coverage_before=coverage_before,
            coverage_after=coverage_after,
            rules_emitted=len(emitted),
            rules_kept=len(kept),
            rules_rejected=rejected,
            surrogates_kept=len(surrogates_kept),
            surrogates_rejected=surrogates_rejected,
            parse_ok=parse_ok,
            roundtrip_failures=roundtrip_failures,
            identity_ok=identity_ok,
            identity_mismatches=identity_mismatches,
            breakage=breakage,
            churn={
                "report": reload_report["churn"],
                "hotfix": self._hotfix_entry(reload_report),
            },
            churn_attribution=attribution,
            attribution_consistent=attribution_consistent,
        )

    # -- round stages ------------------------------------------------------
    def _mutate(self, mutation: str | None) -> AdversaryMove | None:
        if mutation is None:
            return None
        blocked = self._served_blocked_tracking_urls()
        membership = blocked.__contains__
        if mutation == "relocate":
            return self._adversary.relocate(
                membership, max_hosts=self._max_hosts_per_move
            )
        if mutation == "drift":
            return self._adversary.drift(membership)
        raise ValueError(
            f"unknown adversary move {mutation!r}; None, 'relocate' or 'drift'"
        )

    def _sift(self) -> SiftReport:
        config = PipelineConfig(
            sites=max(len(self._web.websites), 10),
            seed=self._seed,
            cluster_nodes=self._cluster_nodes,
            threshold=self._threshold,
        )
        oracle = GroundTruthOracle(self._web, *self._base)
        pipeline = TrackerSiftPipeline(config, oracle=oracle, workers=1)
        return pipeline.run(self._web).report

    def _workload(self) -> list[_WorkloadRequest]:
        """Every planned request with ground truth, in canonical order
        (mirrors :func:`repro.scenarios.trace._planned_requests`)."""
        out: list[_WorkloadRequest] = []
        for script in sorted(self._web.scripts, key=lambda s: s.url):
            for method in script.methods:
                for invocation in method.invocations:
                    for request in invocation.requests:
                        out.append(
                            _WorkloadRequest(
                                url=request.url,
                                resource_type=request.resource_type,
                                page_url=invocation.site,
                                script=script.url,
                                method=method.name,
                                tracking=request.tracking,
                            )
                        )
        return out

    @staticmethod
    def _triples(
        workload: list[_WorkloadRequest],
    ) -> list[tuple[str, ResourceType, str]]:
        return [
            (
                request.url,
                ResourceType.from_option(request.resource_type)
                or ResourceType.OTHER,
                request.page_url,
            )
            for request in workload
        ]

    def _served_blocked_tracking_urls(self) -> frozenset[str]:
        """Tracking URLs the currently-served revision blocks (the
        adversary's eligibility set)."""
        workload = [r for r in self._workload() if r.tracking]
        oracle = self._service.snapshot.oracle
        labeled = oracle.label_request_many(self._triples(workload))
        return frozenset(
            request.url
            for request, result in zip(workload, labeled)
            if result.label.is_tracking
        )

    def _coverage(
        self,
        workload: list[_WorkloadRequest],
        oracle: FilterListOracle,
        surrogates: dict[str, frozenset[str]],
    ) -> CoverageStat:
        labeled = oracle.label_request_many(self._triples(workload))
        script_blocked: dict[str, bool] = {}

        def blocks_script(script_url: str) -> bool:
            cached = script_blocked.get(script_url)
            if cached is None:
                cached = oracle.should_block_url(
                    script_url, ResourceType.SCRIPT
                )
                script_blocked[script_url] = cached
            return cached

        tracking_total = tracking_covered = 0
        functional_total = functional_blocked = 0
        for request, result in zip(workload, labeled):
            url_blocked = result.label.is_tracking
            if request.tracking:
                tracking_total += 1
                if (
                    url_blocked
                    or blocks_script(request.script)
                    or request.method in surrogates.get(request.script, ())
                ):
                    tracking_covered += 1
            else:
                functional_total += 1
                if url_blocked:
                    functional_blocked += 1
        return CoverageStat(
            tracking_total=tracking_total,
            tracking_covered=tracking_covered,
            functional_total=functional_total,
            functional_url_blocked=functional_blocked,
        )

    @staticmethod
    def _origins_for(report: SiftReport) -> dict[str, dict]:
        """rule text → the axis and sift key that produced it (coarsest
        axis wins, mirroring ``generate_recommendation``'s dedup)."""
        origins: dict[str, dict] = {}
        for axis, level, to_rule in (
            ("domain", report.domain, host_rule),
            ("hostname", report.hostname, host_rule),
            ("script", report.script, script_rule),
        ):
            for result in level.by_class(ResourceClass.TRACKING):
                rule = to_rule(result.key)
                if rule is not None and rule not in origins:
                    origins[rule] = {"axis": axis, "key": result.key}
        return origins

    def _reject_functional_blockers(
        self,
        rules: list[str],
        workload: list[_WorkloadRequest],
        incumbent: FilterListOracle,
    ) -> tuple[list[str], list[dict]]:
        """Drop every candidate rule that URL-blocks a ground-truth
        functional request the incumbent does not already block.

        Attribution comes from the matcher itself: labeling the offending
        request against a hotfix-only oracle names the first matching
        rule.  Dropping a blocking rule can only unblock, but a second
        rule may match next, so reject-and-rebuild until clean (bounded).
        """
        functional = [r for r in workload if not r.tracking]
        triples = self._triples(functional)
        incumbent_blocked = {
            request.url
            for request, result in zip(
                functional, incumbent.label_request_many(triples)
            )
            if result.label.is_tracking
        }
        kept = list(rules)
        rejected: list[dict] = []
        for _ in range(_MAX_REPAIR_PASSES):
            if not kept:
                break
            oracle = FilterListOracle(
                parse_filter_list("\n".join(kept) + "\n", name=HOTFIX_LIST)
            )
            offenders: dict[str, str] = {}
            for request, result in zip(
                functional, oracle.label_request_many(triples)
            ):
                if not result.label.is_tracking:
                    continue
                if request.url in incumbent_blocked:
                    continue
                offenders.setdefault(result.matched_rule, request.url)
            if not offenders:
                break
            for rule, url in sorted(offenders.items()):
                rejected.append(
                    {
                        "rule": rule,
                        "reason": "blocks functional request",
                        "example": url,
                    }
                )
            kept = [rule for rule in kept if rule not in offenders]
        return kept, rejected

    def _blocked_scripts(self, oracle: FilterListOracle) -> frozenset[str]:
        return frozenset(
            script.url
            for script in self._web.scripts
            if oracle.should_block_url(script.url, ResourceType.SCRIPT)
        )

    def _breakage_gate(
        self, rules: list[str], incumbent: FilterListOracle
    ) -> tuple[list[str], list[dict], dict]:
        """Reject rules whose script-level blocking makes any sampled
        site's breakage grade worse than the incumbent's."""
        sites = sorted(self._web.websites, key=lambda s: s.url)[
            : self._breakage_sites
        ]
        incumbent_blocked = self._blocked_scripts(incumbent)
        incumbent_levels = {
            site.url: assess_breakage(
                site,
                incumbent_blocked & frozenset(site.script_urls()),
                engine=self._engine,
            ).level
            for site in sites
        }
        kept = list(rules)
        rejected: list[dict] = []
        breakage_counts = {level.value: 0 for level in BreakageLevel}
        worse_sites: list[str] = []
        for _ in range(_MAX_REPAIR_PASSES):
            candidate = FilterListOracle(
                *self._base,
                parse_filter_list("\n".join(kept) + "\n", name=HOTFIX_LIST),
            )
            candidate_blocked = self._blocked_scripts(candidate)
            hotfix_only = FilterListOracle(
                parse_filter_list("\n".join(kept) + "\n", name=HOTFIX_LIST)
            )
            breakage_counts = {level.value: 0 for level in BreakageLevel}
            worse_sites = []
            worse_scripts: set[str] = set()
            for site in sites:
                cand_report = assess_breakage(
                    site,
                    candidate_blocked & frozenset(site.script_urls()),
                    engine=self._engine,
                )
                breakage_counts[cand_report.level.value] += 1
                if (
                    _SEVERITY[cand_report.level]
                    > _SEVERITY[incumbent_levels[site.url]]
                ):
                    worse_sites.append(site.url)
                    worse_scripts |= (
                        candidate_blocked - incumbent_blocked
                    ) & frozenset(site.script_urls())
            if not worse_sites or not kept:
                break
            offenders: dict[str, str] = {}
            for script_url in sorted(worse_scripts):
                labeled = hotfix_only.label_request(
                    script_url, ResourceType.SCRIPT
                )
                if labeled.label.is_tracking and labeled.matched_rule:
                    offenders.setdefault(labeled.matched_rule, script_url)
            if not offenders:
                break  # worsening not attributable to a hotfix rule
            for rule, script_url in sorted(offenders.items()):
                rejected.append(
                    {
                        "rule": rule,
                        "reason": "worsens breakage grade",
                        "example": script_url,
                    }
                )
            kept = [rule for rule in kept if rule not in offenders]
        summary = {
            "sampled_sites": len(sites),
            "candidate_levels": breakage_counts,
            "worse_sites": worse_sites,
        }
        return kept, rejected, summary

    def _validate_surrogates(
        self, directives: list[SurrogateDirective]
    ) -> tuple[list[SurrogateDirective], list[dict]]:
        """Generate and verify the actual surrogate source per directive."""
        kept: list[SurrogateDirective] = []
        rejected: list[dict] = []
        for directive in directives:
            try:
                spec = self._web.script(directive.script)
            except KeyError:
                rejected.append(
                    {
                        "script": directive.script,
                        "reason": "no script source available",
                    }
                )
                continue
            source = script_to_source(spec)
            surrogate = generate_surrogate_source(
                source, directive.removed_methods
            )
            if not surrogate.complete:
                rejected.append(
                    {
                        "script": directive.script,
                        "reason": "methods not found in source: "
                        + ", ".join(surrogate.missing),
                    }
                )
                continue
            if not verify_surrogate_source(surrogate, analyze_source(source)):
                rejected.append(
                    {
                        "script": directive.script,
                        "reason": "surrogate verification failed",
                    }
                )
                continue
            kept.append(directive)
        return kept, rejected

    def _compile_candidate(
        self,
        index: int,
        kept: list[str],
        origins: dict[str, dict],
        surrogates: list[SurrogateDirective],
    ) -> tuple[ParsedList, bool]:
        """Serialize the surviving candidate through the real parser."""
        candidate = FilterRecommendation(surrogates=list(surrogates))
        for rule in kept:
            axis = origins.get(rule, {}).get("axis", "domain")
            bucket = {
                "domain": candidate.domain_rules,
                "hostname": candidate.hostname_rules,
                "script": candidate.script_rules,
            }[axis]
            bucket.append(rule)
        text = candidate.to_filter_list(
            title=f"TrackerSift hotfix (loop round {index})"
        )
        hotfix = parse_filter_list(text, name=HOTFIX_LIST)
        parse_ok = (
            not hotfix.error_lines
            and len(hotfix.blocking_rules) == len(kept)
        )
        if not parse_ok:
            raise LoopError(
                f"candidate revision failed to compile: "
                f"{len(hotfix.error_lines)} error line(s), "
                f"{len(hotfix.blocking_rules)} of {len(kept)} rules parsed"
            )
        return hotfix, parse_ok

    def _roundtrip_failures(
        self,
        kept: list[str],
        origins: dict[str, dict],
        workload: list[_WorkloadRequest],
        candidate: FilterListOracle,
    ) -> list[dict]:
        """The parse→match round-trip property, checked per kept rule:
        the compiled candidate oracle must block sample URLs of the
        resource each rule was emitted for."""
        by_domain: dict[str, list[_WorkloadRequest]] = {}
        by_hostname: dict[str, list[_WorkloadRequest]] = {}
        for request in workload:
            if not request.tracking:
                continue
            try:
                host = hostname(request.url)
            except ValueError:
                continue
            if len(by_hostname.setdefault(host, [])) < 3:
                by_hostname[host].append(request)
            domain = registrable_domain(host) or host
            if len(by_domain.setdefault(domain, [])) < 3:
                by_domain[domain].append(request)
        failures: list[dict] = []
        for rule in kept:
            origin = origins.get(rule)
            if origin is None:
                continue
            axis, key = origin["axis"], origin["key"]
            if axis == "script":
                if not candidate.should_block_url(key, ResourceType.SCRIPT):
                    failures.append(
                        {"rule": rule, "axis": axis, "url": key}
                    )
                continue
            samples = (by_domain if axis == "domain" else by_hostname).get(
                key, []
            )
            for request in samples:
                resource = (
                    ResourceType.from_option(request.resource_type)
                    or ResourceType.OTHER
                )
                if not candidate.should_block_url(
                    request.url, resource, request.page_url
                ):
                    failures.append(
                        {"rule": rule, "axis": axis, "url": request.url}
                    )
        return failures

    def _attribution(
        self, kept: list[str], origins: dict[str, dict]
    ) -> dict:
        """Per-rule churn attribution for the hotfix list this round."""
        previous = set(self._active_rules)
        current = set(kept)

        def describe(rule: str) -> dict:
            origin = origins.get(rule) or self._rule_origins.get(rule) or {}
            return {
                "rule": rule,
                "axis": origin.get("axis", "unknown"),
                "key": origin.get("key", ""),
            }

        return {
            "list": HOTFIX_LIST,
            "added": [describe(rule) for rule in sorted(current - previous)],
            "removed": [
                describe(rule) for rule in sorted(previous - current)
            ],
            "unchanged": len(current & previous),
        }

    @staticmethod
    def _hotfix_entry(reload_report: dict) -> dict:
        for entry in reload_report["lists"]:
            if entry["name"] == HOTFIX_LIST:
                return entry
        raise LoopError("reload report carries no hotfix list entry")

    def _attribution_consistent(
        self, reload_report: dict, attribution: dict
    ) -> bool:
        """The loop's rule-level attribution must agree with the service's
        by-name churn pairing (an add-only candidate reports incremental
        added/removed, never a full replacement)."""
        entry = self._hotfix_entry(reload_report)
        return (
            entry["added"] == len(attribution["added"])
            and entry["removed"] == len(attribution["removed"])
            and entry["unchanged"] == attribution["unchanged"]
        )

    def _identity_gate(
        self, workload: list[_WorkloadRequest], chunk: int = 256
    ) -> tuple[bool, int]:
        """Served-vs-offline identity for the revision that answered.

        Replays the workload through the live service in batches and
        compares every decision against an *independently built* oracle
        over the served snapshot's own lists.  Any label/blocked mismatch
        or a decision answered by a different revision counts."""
        snapshot = self._service.snapshot
        offline = FilterListOracle(*snapshot.lists)
        mismatches = 0
        for start in range(0, len(workload), chunk):
            batch = workload[start : start + chunk]
            response = self._service.decide_batch(
                [
                    {
                        "url": request.url,
                        "resource_type": request.resource_type,
                        "page_url": request.page_url,
                    }
                    for request in batch
                ]
            )
            expected = offline.label_request_many(self._triples(batch))
            for decision, labeled in zip(response["decisions"], expected):
                if (
                    decision["label"] != labeled.label.value
                    or decision["blocked"] != labeled.label.is_tracking
                    or decision["revision"] != snapshot.revision
                ):
                    mismatches += 1
        return mismatches == 0, mismatches
