"""The arms-race counterpart: a tracker that mutates against served rules.

The paper frames TrackerSift as one move in an ongoing arms race (§1:
trackers respond to filter lists by re-hosting and re-shaping their
traffic; list authors respond with finer-grained rules).  This module is
the tracker's side of that race for the synthetic web: an
:class:`Adversary` inspects which of its tracking requests the
*currently-served* rules block, and mutates the population in place so
the next crawl sees evaded traffic.

Two move kinds, mirroring the cloaking/token-drift scenario machinery:

* ``relocate`` — the strong move.  Pick the highest-volume blocked
  tracking hosts and move *all* their tracking requests onto fresh,
  never-listed hosts with clean (marker-free) paths.  A plain filter
  oracle misses every relocated request until the control loop sifts the
  new traffic and ships a hotfix rule; coverage must then recover.
* ``drift`` — the weak move.  Append seeded cache-buster query tokens to
  blocked tracking URLs (the classic tracker idiom, same shape as
  :func:`repro.scenarios.trace.build_trace`'s drift).  Host-anchored
  rules are immune by construction, so a correct loop loses *zero*
  coverage to drift — the gate that catches accidental exact-URL rules.

Mutations follow the in-place idiom of
:func:`repro.webmodel.cloaking.apply_cname_cloaking`: planned requests
are replaced inside their invocations, every choice is seeded, and each
move returns a manifest (:class:`AdversaryMove`) for accounting.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from ..urlkit import hostname
from ..webmodel.generator import SyntheticWeb
from ..webmodel.resources import PlannedRequest

__all__ = ["Adversary", "AdversaryMove"]

_DRIFT_KEYS = ("cb", "session", "uid", "ts")


@dataclass(frozen=True)
class AdversaryMove:
    """What one mutation changed, for experiment accounting."""

    kind: str  # "relocate" | "drift"
    generation: int
    rewritten_requests: int
    #: hosts whose traffic was moved away (relocate) or drifted.
    retired_hosts: tuple[str, ...]
    #: never-listed hosts the traffic moved onto (relocate only).
    fresh_hosts: tuple[str, ...]

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "generation": self.generation,
            "rewritten_requests": self.rewritten_requests,
            "retired_hosts": list(self.retired_hosts),
            "fresh_hosts": list(self.fresh_hosts),
        }


class Adversary:
    """Mutates the synthetic web's tracking traffic against served rules.

    ``blocked`` callables receive a URL (and the truth that it is a
    tracking request is the adversary's own knowledge); they answer
    whether the currently-served revision blocks it.  Previously-minted
    evasion hosts become eligible again the moment the loop catches
    them — that is what makes the race run for N rounds instead of one.
    """

    def __init__(self, web: SyntheticWeb, seed: int = 0) -> None:
        self._web = web
        self._rng = random.Random(seed)
        self._generation = 0

    # -- eligibility -------------------------------------------------------
    def _blocked_tracking_sites(
        self, blocked: Callable[[str], bool]
    ) -> dict[str, list[tuple[list, int, PlannedRequest]]]:
        """Blocked tracking requests, grouped by host, in canonical order.

        Each entry is ``(invocation.requests, index, request)`` so the
        mutation can replace the request in place.
        """
        by_host: dict[str, list[tuple[list, int, PlannedRequest]]] = {}
        for script in sorted(self._web.scripts, key=lambda s: s.url):
            for method in script.methods:
                for invocation in method.invocations:
                    for index, request in enumerate(invocation.requests):
                        if not request.tracking:
                            continue
                        if not blocked(request.url):
                            continue
                        try:
                            host = hostname(request.url)
                        except ValueError:
                            continue
                        by_host.setdefault(host, []).append(
                            (invocation.requests, index, request)
                        )
        return by_host

    # -- moves -------------------------------------------------------------
    def relocate(
        self, blocked: Callable[[str], bool], max_hosts: int = 4
    ) -> AdversaryMove:
        """Move the busiest blocked hosts' tracking traffic to fresh hosts."""
        self._generation += 1
        generation = self._generation
        by_host = self._blocked_tracking_sites(blocked)
        # Busiest first; name as the deterministic tie-break.
        targets = sorted(
            by_host, key=lambda host: (-len(by_host[host]), host)
        )[:max_hosts]
        rewritten = 0
        fresh_hosts = []
        for ordinal, host in enumerate(targets):
            # A never-listed registrable domain with a clean path: nothing
            # the incumbent lists know, nothing a path marker gives away.
            fresh = f"a{ordinal}.evade-g{generation}-{ordinal}.example"
            fresh_hosts.append(fresh)
            for requests, index, request in by_host[host]:
                token = "".join(
                    self._rng.choice("0123456789abcdef") for _ in range(10)
                )
                requests[index] = PlannedRequest(
                    url=f"https://{fresh}/api/v2/asset/{token}",
                    tracking=True,
                    resource_type=request.resource_type,
                )
                rewritten += 1
        return AdversaryMove(
            kind="relocate",
            generation=generation,
            rewritten_requests=rewritten,
            retired_hosts=tuple(targets),
            fresh_hosts=tuple(fresh_hosts),
        )

    def drift(
        self, blocked: Callable[[str], bool], fraction: float = 0.5
    ) -> AdversaryMove:
        """Cache-buster drift on blocked tracking URLs (hosts unchanged)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        self._generation += 1
        by_host = self._blocked_tracking_sites(blocked)
        rewritten = 0
        touched = []
        for host in sorted(by_host):
            drifted_any = False
            for requests, index, request in by_host[host]:
                if self._rng.random() >= fraction:
                    continue
                key = self._rng.choice(_DRIFT_KEYS)
                token = "".join(
                    self._rng.choice("0123456789") for _ in range(8)
                )
                joiner = "&" if "?" in request.url else "?"
                requests[index] = PlannedRequest(
                    url=f"{request.url}{joiner}{key}={token}",
                    tracking=True,
                    resource_type=request.resource_type,
                )
                rewritten += 1
                drifted_any = True
            if drifted_any:
                touched.append(host)
        return AdversaryMove(
            kind="drift",
            generation=self._generation,
            rewritten_requests=rewritten,
            retired_hosts=tuple(touched),
            fresh_hosts=(),
        )
