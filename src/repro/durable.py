"""Crash-safe file writes: write-temp → fsync → atomic rename.

Every durable artifact in the repo — shard checkpoints, the checkpoint
manifest, compiled ``.tsoracle`` artifacts, quarantine reports — goes
through these two helpers.  The old ``tmp.write_text(); os.replace()``
idiom was *atomic* (a reader never sees a half-written file at the final
path) but not *durable*: without an ``fsync`` the rename can land on disk
before the data blocks do, so a power cut shortly after a "successful"
checkpoint could leave a zero-length or torn file at the final name —
exactly the poisoned-resume failure mode the chaos tests inject.

The protocol here is the standard one:

1. write the full payload to ``<path>.tmp`` in the same directory
   (``os.replace`` must not cross filesystems),
2. ``flush`` + ``os.fsync`` the temp file so the *data* is on disk,
3. ``os.replace`` onto the final name (atomic on POSIX),
4. ``fsync`` the containing directory so the *rename* is on disk.

A crash at any point leaves either the old file or the new file at the
final path, never a blend and never a torn tail.  Readers that can still
encounter corruption (pre-existing files, bit rot, a non-durable writer
from an older version) use :func:`set_aside` to move the bad bytes out of
the way — with a deterministic name, preserved for diagnosis — instead of
crashing on them.

``durable=False`` skips both fsyncs (keeping only atomicity) for
throwaway files like bench smoke output where the fsync cost is pure
overhead; every checkpoint-shaped caller leaves it on.
"""

from __future__ import annotations

import os
from pathlib import Path

__all__ = ["atomic_write_bytes", "atomic_write_text", "fsync_dir", "set_aside"]

#: suffix appended (to the full name) when corrupt files are set aside.
SET_ASIDE_SUFFIX = ".corrupt"


def fsync_dir(directory: Path | str) -> None:
    """Flush a directory's entries to disk (commits renames/creates).

    Platforms whose directory handles reject fsync (some network
    filesystems, Windows) degrade to atomic-but-not-durable, the old
    behaviour everywhere.
    """
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(
    path: Path | str, data: bytes, *, durable: bool = True
) -> None:
    """Write ``data`` to ``path`` atomically (and durably by default)."""
    path = Path(path)
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(data)
        if durable:
            handle.flush()
            os.fsync(handle.fileno())
    os.replace(tmp, path)
    if durable:
        fsync_dir(path.parent)


def atomic_write_text(
    path: Path | str, text: str, *, durable: bool = True
) -> None:
    """Write ``text`` (UTF-8) to ``path`` atomically/durably."""
    atomic_write_bytes(path, text.encode("utf-8"), durable=durable)


def set_aside(path: Path | str) -> Path:
    """Move a corrupt file out of the way instead of crashing on it.

    The file is renamed to ``<name>.corrupt`` next to itself (replacing
    any previous set-aside of the same name — the latest corruption is
    the interesting one) so resume logic can treat the slot as absent
    while the bad bytes stay available for diagnosis.  Returns the
    set-aside path.
    """
    path = Path(path)
    target = path.with_name(path.name + SET_ASIDE_SUFFIX)
    os.replace(path, target)
    fsync_dir(path.parent)
    return target
