"""Call-stack analysis for mixed methods (paper §5, Figure 5).

Even at method granularity, some methods stay mixed (a generic
``xhrRequest`` serving whoever calls it).  The paper proposes analysing the
*calling context*: snapshot the stack trace of every tracking and
functional request a mixed method initiates, merge the traces into a call
graph, and look for the **point of divergence** — a method in the tracking
traces that never participates in functional traces.  Removing that method
breaks the chain that invokes tracking without touching the functional
path.

In Figure 5's example, ``m2()`` in clone.js issues both ``ads-2`` and
``nonads-2``; the merged graph shows ``track.js@t`` only on the tracking
side, so ``t`` is the removal candidate.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from ..labeling.labeler import AnalyzedRequest

__all__ = ["CallGraph", "DivergenceResult", "analyze_mixed_method", "build_call_graph"]

_Node = tuple[str, str]  # (script_url, method)


@dataclass
class CallGraph:
    """Merged caller→callee graph over a set of labeled stack traces.

    Nodes are (script, method) pairs.  Edges point from caller to callee.
    Every node tallies how many tracking / functional *traces* it appears
    in, which is the colouring of Figure 5 (red / green / yellow).
    """

    nodes: dict[_Node, list[int]] = field(default_factory=dict)
    edges: set[tuple[_Node, _Node]] = field(default_factory=set)
    tracking_traces: int = 0
    functional_traces: int = 0

    def add_trace(self, frames: tuple[_Node, ...], tracking: bool) -> None:
        """Add one stack snapshot (innermost frame first)."""
        if not frames:
            return
        if tracking:
            self.tracking_traces += 1
        else:
            self.functional_traces += 1
        index = 0 if tracking else 1
        for node in frames:
            self.nodes.setdefault(node, [0, 0])[index] += 1
        # Innermost-first means frame i+1 *called* frame i.
        for callee, caller in zip(frames, frames[1:]):
            self.edges.add((caller, callee))

    # -- node queries -------------------------------------------------------
    def participation(self, node: _Node) -> tuple[int, int]:
        entry = self.nodes.get(node, [0, 0])
        return entry[0], entry[1]

    def tracking_only_nodes(self) -> list[_Node]:
        return [
            node
            for node, (t, f) in ((n, self.participation(n)) for n in self.nodes)
            if t > 0 and f == 0
        ]

    def functional_only_nodes(self) -> list[_Node]:
        return [
            node
            for node, (t, f) in ((n, self.participation(n)) for n in self.nodes)
            if f > 0 and t == 0
        ]

    def mixed_nodes(self) -> list[_Node]:
        return [
            node
            for node, (t, f) in ((n, self.participation(n)) for n in self.nodes)
            if t > 0 and f > 0
        ]

    def callers(self, node: _Node) -> list[_Node]:
        return [a for a, b in self.edges if b == node]

    def callees(self, node: _Node) -> list[_Node]:
        return [b for a, b in self.edges if a == node]


@dataclass(frozen=True)
class DivergenceResult:
    """Outcome of the divergence search for one mixed method."""

    method: _Node
    graph: CallGraph
    #: candidates ordered best-first: in *every* tracking trace, *no*
    #: functional trace, closest to the initiator.
    candidates: tuple[_Node, ...]

    @property
    def point_of_divergence(self) -> _Node | None:
        return self.candidates[0] if self.candidates else None

    @property
    def separable(self) -> bool:
        """Can this mixed method's tracking behaviour be cut upstream?"""
        return bool(self.candidates)


def build_call_graph(
    traces: list[tuple[tuple[_Node, ...], bool]]
) -> CallGraph:
    """Build a merged call graph from (frames, is_tracking) snapshots."""
    graph = CallGraph()
    for frames, tracking in traces:
        graph.add_trace(frames, tracking)
    return graph


def analyze_mixed_method(
    requests: list[AnalyzedRequest],
    script: str,
    method: str,
) -> DivergenceResult:
    """Run the Figure 5 analysis for one (script, method) pair.

    Collects every request the method initiated, merges the stack
    snapshots, and ranks divergence candidates: a node must appear in every
    tracking trace (removing it kills *all* tracking invocations) and in no
    functional trace (removing it is collateral-free).  Ties break toward
    the node nearest the initiator, where the tracking intent is most
    specific.
    """
    graph = CallGraph()
    tracking_traces: list[tuple[_Node, ...]] = []
    depth_sum: dict[_Node, int] = defaultdict(int)
    for request in requests:
        if request.script != script or request.method != method:
            continue
        frames = tuple(request.frames)
        graph.add_trace(frames, request.is_tracking)
        if request.is_tracking:
            tracking_traces.append(frames)
            for depth, node in enumerate(frames):
                depth_sum[node] += depth

    candidates: list[_Node] = []
    if tracking_traces:
        in_all_tracking = set(tracking_traces[0])
        for trace in tracking_traces[1:]:
            in_all_tracking &= set(trace)
        for node in in_all_tracking:
            t, f = graph.participation(node)
            if f == 0:
                candidates.append(node)
        candidates.sort(key=lambda n: depth_sum[n] / max(1, len(tracking_traces)))
    return DivergenceResult(
        method=(script, method), graph=graph, candidates=tuple(candidates)
    )
