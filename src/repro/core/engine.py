"""Streaming sharded execution engine for the crawl → label → sift path.

The batch pipeline materializes every stage — the whole synthetic web, the
whole request database, the whole labeled crawl — before sifting, which
caps the scale a study can run at.  This engine runs the same study as a
stream: sites are sharded into batches, each page's DevTools events flow
straight through labeling into incremental sift accumulators, and nothing
request-shaped outlives the page that produced it.  Three properties make
that safe:

* **Per-site determinism.**  A page's events are a pure function of the
  site and the browser seed (coverage RNG is keyed per site/script/method,
  never an evolving stream), and the per-page failure decision is keyed on
  ``(failure seed, url)`` — so any re-grouping of sites reproduces the
  batch crawl's exact observable behaviour.  The engine assigns every site
  the virtual cluster node a :class:`~repro.crawler.cluster.CrawlCluster`
  would, so even the injected failures match the paper's 13-node setup for
  *any* engine shard count.
* **Grouped sifting.**  The hierarchical sift only needs per-resource
  tallies, so each request collapses into its attribution key
  ``(domain, hostname, script, method)`` — memory is bounded by distinct
  resources, not requests — and the report comes from the same
  :meth:`~repro.core.hierarchy.HierarchicalSifter.sift_grouped`
  implementation the batch path uses, so the two cannot drift.
* **Memoized labeling.**  The oracle's match decision is cached on the
  normalized request shape (url, party, resource type — see
  :mod:`repro.filterlists.cache`), so a tracker script shared by thousands
  of sites is decided once; hit/miss counters surface in
  ``PipelineResult.notes``.

Shards checkpoint to disk as they complete, so a partial run resumes where
it stopped::

    engine = StreamingPipeline(config, shards=8, checkpoint_dir="ckpt/")
    engine.process_shards(limit=3)      # ... interrupted here ...
    result = StreamingPipeline(config, shards=8, checkpoint_dir="ckpt/").run()
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (parallel imports us)
    from .parallel import LeasePolicy

from ..browser.engine import BrowserEngine
from ..browser.extension import CrawlExtension
from ..crawler.cluster import NODE_ENGINE_SEED, node_failure_seed, round_robin_shards
from ..crawler.crawler import page_load_fails
from ..crawler.storage import RequestDatabase
from ..crawler.tranco import RankedSite
from ..durable import atomic_write_text, set_aside
from ..faults import FaultPlan, SimulatedCrash
from ..filterlists.cache import CachedMatcher
from ..filterlists.oracle import FilterListOracle
from ..labeling.labeler import AnalyzedRequest, LabeledCrawl, RequestLabeler
from ..obs.ledger import Ledger, stream_digest
from ..obs.trace import current_tracer, span
from ..stablehash import stable_hash
from ..webmodel.generator import SyntheticWeb, SyntheticWebGenerator
from .classifier import RatioClassifier
from .hierarchy import AttributionKey, HierarchicalSifter, attribution_key
from .results import SiftReport

__all__ = [
    "PipelineConfig",
    "PipelineResult",
    "SiftAccumulator",
    "ShardState",
    "StreamingPipeline",
    "sifter_for",
]


@dataclass(frozen=True)
class PipelineConfig:
    """Study parameters (defaults mirror the paper, scaled down).

    ``descent_threshold`` optionally decouples which resources *descend*
    the hierarchy from the report ``threshold`` (see
    :class:`~repro.core.hierarchy.HierarchicalSifter`).  Leave it ``None``
    for the paper's single-threshold hierarchy; pin it (usually to 2.0)
    when comparing runs across report thresholds, so every run classifies
    the same population at each level and per-level separation factors
    stay monotone — the policy :func:`~repro.core.hierarchy.sift_requests`
    applies by default.
    """

    sites: int = 2_000
    seed: int = 7
    cluster_nodes: int = 13
    threshold: float = 2.0
    failure_rate: float = 0.0
    propagate_ancestry: bool = True
    descent_threshold: float | None = None


@dataclass
class PipelineResult:
    """Everything the study produced, stage by stage.

    Streaming runs leave ``database`` empty and ``labeled.requests`` empty
    (their whole point is not materializing those); the aggregate fields —
    exclusion tallies, participation index, the report itself — are always
    populated, and ``notes`` carries the engine's counters (cache hits and
    misses, shard count, labeled-request total) plus, after a CLI run with
    ``--profile``/``--trace-out``/``--ledger-out``, the string paths of the
    exported observability artifacts.
    """

    config: PipelineConfig
    web: SyntheticWeb
    database: RequestDatabase
    labeled: LabeledCrawl
    report: SiftReport
    pages_crawled: int = 0
    pages_failed: int = 0
    notes: dict[str, float | str] = field(default_factory=dict)

    @property
    def total_script_requests(self) -> int:
        if self.labeled.requests:
            return len(self.labeled.requests)
        return int(self.notes.get("labeled_requests", 0))


class SiftAccumulator:
    """Incremental grouped tallies a hierarchical sift runs over.

    Feed it :class:`AnalyzedRequest` objects (or merge whole tally maps
    from other accumulators / checkpoints); ask for the report at the end.
    """

    def __init__(
        self, *, groups: dict[AttributionKey, list[int]] | None = None
    ) -> None:
        # ``groups`` may be a shared dict (a ShardState's tallies) so the
        # accumulation and the checkpoint stay one data structure.
        self._groups: dict[AttributionKey, list[int]] = (
            groups if groups is not None else {}
        )
        self.total_requests = 0

    def add(self, request: AnalyzedRequest) -> None:
        entry = self._groups.setdefault(attribution_key(request), [0, 0])
        entry[0 if request.is_tracking else 1] += 1
        self.total_requests += 1

    def merge(self, groups: Mapping[AttributionKey, list[int]], total: int) -> None:
        for key, (tracking, functional) in groups.items():
            entry = self._groups.setdefault(key, [0, 0])
            entry[0] += tracking
            entry[1] += functional
        self.total_requests += total

    @property
    def groups(self) -> dict[AttributionKey, list[int]]:
        return self._groups

    @property
    def distinct_resources(self) -> int:
        return len(self._groups)

    def report(self, sifter: HierarchicalSifter) -> SiftReport:
        return sifter.sift_grouped(self._groups, self.total_requests)


@dataclass
class ShardState:
    """One shard's complete, mergeable output — the checkpoint unit."""

    shard_id: int
    pages_crawled: int = 0
    pages_failed: int = 0
    excluded_non_script: int = 0
    excluded_unparseable: int = 0
    labeled_requests: int = 0
    tallies: dict[AttributionKey, list[int]] = field(default_factory=dict)
    participation: dict[str, list[int]] = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(
            {
                "shard_id": self.shard_id,
                "pages_crawled": self.pages_crawled,
                "pages_failed": self.pages_failed,
                "excluded_non_script": self.excluded_non_script,
                "excluded_unparseable": self.excluded_unparseable,
                "labeled_requests": self.labeled_requests,
                "tallies": [
                    [*key, tracking, functional]
                    for key, (tracking, functional) in self.tallies.items()
                ],
                "participation": self.participation,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, data: str) -> "ShardState":
        record = json.loads(data)
        return cls(
            shard_id=record["shard_id"],
            pages_crawled=record["pages_crawled"],
            pages_failed=record["pages_failed"],
            excluded_non_script=record["excluded_non_script"],
            excluded_unparseable=record["excluded_unparseable"],
            labeled_requests=record["labeled_requests"],
            tallies={
                (domain, host, script, method): [tracking, functional]
                for domain, host, script, method, tracking, functional in record[
                    "tallies"
                ]
            },
            participation={
                script: list(entry)
                for script, entry in record["participation"].items()
            },
        )


class StreamingPipeline:
    """Sharded streaming crawl → label → sift with checkpoint/resume.

    ``shards`` is an execution knob, not a semantic one: for a fixed
    config the report is identical for any shard count, and identical to
    the batch :class:`~repro.core.pipeline.TrackerSiftPipeline` (the
    equivalence suite pins this for shards ∈ {1, 2, 13}).

    ``checkpoint_dir`` enables resume: each completed shard is persisted
    atomically, a manifest guards against resuming under a different
    config, and a fresh ``StreamingPipeline`` pointed at the same
    directory picks up where the previous one stopped.

    ``workers`` fans not-yet-done shards out to a process pool
    (:mod:`repro.core.parallel`): each worker crawls+labels+accumulates
    its shards independently and ships serialized :class:`ShardState`
    back; the parent merges through the same accumulator path, so the
    report — and every checkpoint file — is bit-identical to a sequential
    run for any worker count.  Checkpointing composes with workers (the
    parent persists each shard as it completes; a crashed pool loses only
    in-flight shards); ``retain_events`` does not (request ids come from a
    process-global counter, so materialized event streams cannot be made
    identical across process boundaries — aggregates can, and are).

    ``retain_events`` additionally materializes the request database and
    labeled request list while streaming — that is the compatibility mode
    :class:`~repro.core.pipeline.TrackerSiftPipeline` wraps, bit-identical
    to the historical batch path.  It cannot be combined with
    checkpointing (checkpoints deliberately hold only aggregates).
    """

    def __init__(
        self,
        config: PipelineConfig | None = None,
        *,
        shards: int | None = None,
        workers: int | None = None,
        oracle: FilterListOracle | None = None,
        checkpoint_dir: str | Path | None = None,
        retain_events: bool = False,
        ledger: Ledger | None = None,
        lease_policy: "LeasePolicy | None" = None,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        self.config = config or PipelineConfig()
        self._shards = shards if shards is not None else self.config.cluster_nodes
        if self._shards < 1:
            raise ValueError("need at least one shard")
        self._workers = workers if workers is not None else 1
        if self._workers < 1:
            raise ValueError("need at least one worker")
        if retain_events and self._workers > 1:
            raise ValueError(
                "retain_events materializes per-request state (with "
                "process-global request ids) that cannot be reproduced "
                "bit-identically across worker processes; run workers=1 "
                "or drop retain_events"
            )
        if retain_events and checkpoint_dir is not None:
            raise ValueError(
                "retain_events materializes per-request state that "
                "checkpoints do not carry; use one or the other"
            )
        self._oracle = (oracle or FilterListOracle()).cached_view()
        # Stats are cumulative on the (possibly shared) oracle; snapshot
        # them so this pipeline's notes report only its own lookups.
        stats = self._oracle.cache_stats
        self._stats_baseline = (stats.hits, stats.misses) if stats else (0, 0)
        self._checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self._retain = retain_events
        self._states: dict[int, ShardState] = {}
        self._resumed_shards = 0
        # Chaos plumbing: an explicit FaultPlan wins; otherwise the
        # TRACKERSIFT_FAULTS env var lets scripts chaos a run through the
        # real CLI.  None (the overwhelmingly common case) costs nothing.
        self._fault_plan = (
            fault_plan if fault_plan is not None else FaultPlan.from_env()
        )
        self._lease_policy = lease_policy
        # Lease-scheduler counters accumulated across fan-outs (a resumed
        # run may fan out more than once) — folded into result notes.
        self._lease_notes: dict[str, float] = {}
        # Shards the lease scheduler gave up on this run: the study still
        # completes, explicitly degraded, and a later resume retries them.
        self._quarantined: dict[int, list[str]] = {}
        # Corrupt checkpoint files detected (set aside + recomputed).
        self._checkpoints_discarded = 0
        # Per-shard checkpoint-write executions (for fault coordinates).
        self._store_counts: dict[int, int] = {}
        self._web: SyntheticWeb | None = None
        # True when the web came from self.generate() (kept for the web
        # re-pinning logic in process_shards).
        self._web_generated = False
        # Label-cache lookups performed inside worker processes (their
        # caches are worker-local; only the counters travel back).
        self._worker_hits = 0
        self._worker_misses = 0
        # Fan-out overhead accounting (parallel runs only): parent-side
        # artifact materialization plus the per-worker breakdown shipped
        # back with each ShardOutcome — surfaced in PipelineResult.notes
        # so benches can attribute wall-clock instead of guessing.
        self._fanout_materialize_seconds = 0.0
        self._fanout_bytes = 0
        self._worker_startup_seconds = 0.0
        self._worker_transfer_seconds = 0.0
        self._worker_compute_seconds = 0.0
        # Determinism ledger (optional): per-site crawl/label stream
        # fingerprints accumulate here — shard-count-invariant because
        # they are keyed by site, not shard — and run() records the
        # stage chain exactly once.  Resumed shards carry no digests
        # (checkpoints deliberately hold only aggregates), so the
        # ledger gate always compares *fresh* runs.
        self._ledger = ledger
        self._ledger_recorded = False
        self._crawl_digests: dict[str, str] = {}
        self._label_digests: dict[str, str] = {}
        # Only populated in retain mode.
        self._database = RequestDatabase()
        self._retained = LabeledCrawl()

    @property
    def shards(self) -> int:
        return self._shards

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def oracle(self) -> FilterListOracle:
        return self._oracle

    @property
    def ledger(self) -> Ledger | None:
        return self._ledger

    @property
    def quarantined_shards(self) -> tuple[int, ...]:
        """Shards this run gave up on (empty unless explicitly degraded)."""
        return tuple(sorted(self._quarantined))

    def shard_states(self) -> tuple[ShardState, ...]:
        """Completed shard states in shard order (the mergeable units)."""
        return tuple(
            self._states[shard_id] for shard_id in sorted(self._states)
        )

    def take_site_digests(self) -> tuple[tuple, tuple]:
        """Drain the collected per-site ledger digests as sorted
        ``(url, digest)`` pairs — the worker side of the parallel path
        ships these back with each :class:`ShardOutcome`."""
        crawl = tuple(sorted(self._crawl_digests.items()))
        labels = tuple(sorted(self._label_digests.items()))
        self._crawl_digests.clear()
        self._label_digests.clear()
        return crawl, labels

    # -- stages --------------------------------------------------------------
    def generate(self) -> SyntheticWeb:
        with span("web.generate", sites=self.config.sites, seed=self.config.seed):
            return SyntheticWebGenerator(
                sites=self.config.sites, seed=self.config.seed
            ).build()

    def _site_list(self, web: SyntheticWeb) -> list[RankedSite]:
        return [RankedSite(rank=w.rank, url=w.url) for w in web.websites]

    def _failed_urls(self, sites: list[RankedSite]) -> set[str]:
        """The exact failure set a paper-shaped cluster crawl would see.

        Failure seeds follow the *cluster* node assignment
        (``config.cluster_nodes``-way round-robin), never the engine's
        shard count, so the observable crawl is shard-invariant.
        """
        if self.config.failure_rate <= 0:
            return set()
        failed: set[str] = set()
        node_shards = round_robin_shards(sites, self.config.cluster_nodes)
        for node_id, assigned in enumerate(node_shards):
            seed = node_failure_seed(node_id)
            for site in assigned:
                if page_load_fails(seed, site.url, self.config.failure_rate):
                    failed.add(site.url)
        return failed

    # -- checkpointing -------------------------------------------------------
    def _manifest(self) -> dict:
        return {
            "sites": self.config.sites,
            "seed": self.config.seed,
            "cluster_nodes": self.config.cluster_nodes,
            # No threshold here: checkpoints hold classifier-free tallies,
            # so the same crawl is reusable across report thresholds.
            "failure_rate": self.config.failure_rate,
            "propagate_ancestry": self.config.propagate_ancestry,
            "shards": self._shards,
            # Guards resume against a *different web* under the same config
            # (e.g. a hand-built web passed to run()): stale shards from
            # another universe must not be merged silently.
            "web_fingerprint": _web_fingerprint(self._web) if self._web else 0,
        }

    def _shard_path(self, shard_id: int) -> Path:
        assert self._checkpoint_dir is not None
        return self._checkpoint_dir / f"shard-{shard_id:04d}.json"

    def _prepare_checkpoint_dir(self) -> None:
        if self._checkpoint_dir is None:
            return
        self._checkpoint_dir.mkdir(parents=True, exist_ok=True)
        manifest_path = self._checkpoint_dir / "manifest.json"
        manifest = self._manifest()
        if manifest_path.exists():
            try:
                existing = json.loads(
                    manifest_path.read_text(encoding="utf-8")
                )
            except (ValueError, UnicodeDecodeError):
                # A torn manifest means the shard files cannot be trusted
                # to belong to this configuration: set everything aside
                # (preserved for diagnosis) and start the directory fresh.
                set_aside(manifest_path)
                for stale in sorted(self._checkpoint_dir.glob("shard-*.json")):
                    set_aside(stale)
                    self._checkpoints_discarded += 1
                _atomic_write(
                    manifest_path, json.dumps(manifest, sort_keys=True)
                )
                return
            if existing != manifest:
                raise ValueError(
                    f"checkpoint directory {self._checkpoint_dir} was written "
                    f"by a different study configuration: {existing!r}"
                )
        else:
            _atomic_write(manifest_path, json.dumps(manifest, sort_keys=True))

    def _load_checkpoints(self) -> None:
        if self._checkpoint_dir is None:
            return
        for shard_id in range(self._shards):
            if shard_id in self._states:
                continue
            path = self._shard_path(shard_id)
            if path.exists():
                try:
                    self._states[shard_id] = ShardState.from_json(
                        path.read_text(encoding="utf-8")
                    )
                except (ValueError, KeyError, TypeError, UnicodeDecodeError):
                    # A corrupt checkpoint (torn write from a pre-durable
                    # version, bit rot) must not poison resume: set the
                    # bad bytes aside and recompute exactly this shard.
                    set_aside(path)
                    self._checkpoints_discarded += 1
                    continue
                self._resumed_shards += 1

    def _store(self, state: ShardState) -> None:
        execution = self._store_counts.get(state.shard_id, 0) + 1
        self._store_counts[state.shard_id] = execution
        fault = (
            self._fault_plan.at("engine.checkpoint", state.shard_id, execution)
            if self._fault_plan is not None
            else None
        )
        if fault is not None and fault.kind == "crash-before-checkpoint":
            raise SimulatedCrash(
                f"injected crash before checkpointing shard {state.shard_id}"
            )
        self._states[state.shard_id] = state
        if self._checkpoint_dir is not None:
            payload = state.to_json()
            path = self._shard_path(state.shard_id)
            if fault is not None and fault.kind in ("corrupt", "truncate"):
                # Simulates a torn/bit-rotted checkpoint left by a
                # non-durable writer: the file exists at its final name
                # but does not parse — exactly what _load_checkpoints
                # must set aside and recompute.
                path.write_bytes(
                    FaultPlan.corrupt_bytes(payload.encode("utf-8"), fault)
                )
            else:
                _atomic_write(path, payload)
            if fault is not None and fault.kind == "crash-after-checkpoint":
                raise SimulatedCrash(
                    "injected crash after checkpointing shard "
                    f"{state.shard_id}"
                )

    # -- execution -----------------------------------------------------------
    def process_shards(
        self, web: SyntheticWeb | None = None, *, limit: int | None = None
    ) -> int:
        """Process up to ``limit`` not-yet-done shards; returns how many ran.

        With a ``checkpoint_dir`` this is the resumable unit of work: call
        it with a limit, lose the process, construct a fresh pipeline and
        call :meth:`run` — completed shards load from disk and only the
        remainder is crawled.  With ``workers > 1`` the pending shards run
        on a process pool; each completed shard is stored (and
        checkpointed) by the parent as it arrives, so interrupting the
        pool keeps every finished shard.
        """
        if web is None:
            if self._web is None:
                self._web = self.generate()
                self._web_generated = True
            web = self._web
        elif self._web is not None and web is not self._web:
            # In-memory shard states are only mergeable within one web;
            # the checkpoint manifest guards the on-disk equivalent.
            if _web_fingerprint(self._web) != _web_fingerprint(web):
                raise ValueError(
                    "this pipeline already crawled shards of a different "
                    "web; build a new StreamingPipeline for a new web"
                )
            self._web = web
            self._web_generated = False
        else:
            # First explicit web, or the already-pinned one handed back:
            # _web_generated stays False / keeps its value respectively.
            self._web = web
        sites = self._site_list(web)
        self._prepare_checkpoint_dir()
        self._load_checkpoints()
        pending = [
            shard_id
            for shard_id in range(self._shards)
            if shard_id not in self._states
        ]
        if limit is not None:
            pending = pending[:limit]
        if not pending:
            return 0
        failed_urls = self._failed_urls(sites)
        shard_sites = round_robin_shards(sites, self._shards)
        by_url = {w.url: w for w in web.websites}
        if self._workers > 1 and len(pending) > 1:
            return self._process_shards_parallel(
                pending, shard_sites, by_url, failed_urls
            )
        for shard_id in pending:
            self._store(
                self._crawl_shard(
                    shard_id, shard_sites[shard_id], by_url, failed_urls
                )
            )
        return len(pending)

    def _process_shards_parallel(
        self,
        pending: list[int],
        shard_sites: list,
        by_url: dict,
        failed_urls: set[str],
    ) -> int:
        """Fan ``pending`` shards out to worker processes.

        The expensive state is materialized exactly once into a temporary
        fan-out store — per-shard site slices plus one compiled oracle
        artifact — and workers receive only paths, so per-worker transfer
        and startup no longer scale with the study (see
        :mod:`repro.core.parallel` for the design and crash semantics).
        The store lives for exactly this pool run.
        """
        import shutil
        import tempfile

        from ..filterlists.compile import compile_matcher
        from .parallel import (
            ShardOutcome,
            ShardSliceStore,
            WorkerSpec,
            run_shards_leased,
        )

        tracer = current_tracer()
        started = time.perf_counter()
        fanout_dir = tempfile.mkdtemp(prefix="trackersift-fanout-")
        try:
            with span("fanout.materialize", shards=len(pending)):
                oracle_artifact = str(Path(fanout_dir) / "oracle.tsoracle")
                meta = compile_matcher(self._oracle.matcher, oracle_artifact)
                slice_store = ShardSliceStore(fanout_dir)
                # Accumulated (not assigned): a resumed run may fan out
                # more than once, and the notes must account for every
                # store built.
                self._fanout_bytes += meta["bytes"] + slice_store.materialize(
                    pending, shard_sites, by_url, failed_urls
                )
            self._fanout_materialize_seconds += time.perf_counter() - started
            artifact_fault = (
                self._fault_plan.at("fanout.artifact", None, 1)
                if self._fault_plan is not None
                else None
            )
            if artifact_fault is not None and artifact_fault.kind in (
                "corrupt",
                "truncate",
            ):
                # Damage the compiled oracle the workers are about to
                # load: every boot fails its checksum, the fleet cannot
                # come up, and the scheduler must fail loudly instead of
                # serving wrong decisions.
                artifact_path = Path(oracle_artifact)
                artifact_path.write_bytes(
                    FaultPlan.corrupt_bytes(
                        artifact_path.read_bytes(), artifact_fault
                    )
                )
            spec = WorkerSpec(
                config=self.config,
                shards=self._shards,
                store_dir=fanout_dir,
                oracle_artifact=oracle_artifact,
                # An artifact rebuilds the *base* oracle class; a subclass
                # (overridden labeling) must travel as an object so worker
                # output stays identical to sequential (see WorkerSpec).
                oracle=(
                    None
                    if type(self._oracle) is FilterListOracle
                    else self._oracle
                ),
                trace=tracer is not None,
                ledger=self._ledger is not None,
                fault_plan=self._fault_plan,
            )

            def store(outcome: ShardOutcome) -> None:
                self._store(ShardState.from_json(outcome.state_json))
                self._worker_hits += outcome.cache_hits
                self._worker_misses += outcome.cache_misses
                # Overhead notes are derived from the worker.* spans each
                # outcome ships (not hand-counted scalars), so the notes
                # and an exported trace can never disagree.
                for record in outcome.spans:
                    name = record.get("name")
                    duration = float(record.get("duration", 0.0))
                    if name == "worker.startup":
                        self._worker_startup_seconds += duration
                    elif name == "worker.transfer":
                        self._worker_transfer_seconds += duration
                    elif name == "worker.compute":
                        self._worker_compute_seconds += duration
                self._crawl_digests.update(outcome.crawl_digests)
                self._label_digests.update(outcome.label_digests)
                if tracer is not None:
                    tracer.adopt(outcome.spans)

            with span("fanout", workers=self._workers, shards=len(pending)):
                report = run_shards_leased(
                    spec,
                    pending,
                    self._workers,
                    store,
                    policy=self._lease_policy,
                )
            self._absorb_lease_report(report)
            return report.completed
        finally:
            shutil.rmtree(fanout_dir, ignore_errors=True)

    def _absorb_lease_report(self, report) -> None:
        """Fold one fan-out's :class:`LeaseReport` into run-level state."""
        from .parallel import LeasePolicy

        for key, value in report.to_notes().items():
            self._lease_notes[key] = self._lease_notes.get(key, 0.0) + value
        self._quarantined.update(report.quarantined)
        # A gauge, not a counter: recompute after the merge.
        self._lease_notes["shards_quarantined"] = float(len(self._quarantined))
        if report.quarantined and self._checkpoint_dir is not None:
            policy = self._lease_policy or LeasePolicy()
            atomic_write_text(
                self._checkpoint_dir / "quarantine.json",
                json.dumps(
                    report.quarantine_record(policy.max_failures),
                    sort_keys=True,
                ),
            )

    def _crawl_shard(
        self,
        shard_id: int,
        sites: list[RankedSite],
        by_url: dict,
        failed_urls: set[str],
    ) -> ShardState:
        tracer = current_tracer()
        ledger_on = self._ledger is not None
        state = ShardState(shard_id=shard_id)
        accumulator = SiftAccumulator(groups=state.tallies)
        # A fresh engine per shard, like each cluster node ran its own
        # Chrome; page behaviour is site-keyed, so sharding cannot change it.
        browser = BrowserEngine(seed=NODE_ENGINE_SEED)
        labeler = RequestLabeler(
            self._oracle, propagate_ancestry=self.config.propagate_ancestry
        )
        counters = LabeledCrawl(participation=state.participation)
        extension = (
            CrawlExtension(self._database) if self._retain else None
        )
        # Crawl vs label time interleaves per site, so the stage spans are
        # accumulated (Tracer.add) rather than contiguous; both the clock
        # reads and the per-site ledger hashing are skipped entirely when
        # no tracer/ledger is attached — the instrumented hot path costs
        # nothing by default.
        crawl_seconds = label_seconds = 0.0
        with span("shard", shard=shard_id, sites=len(sites)):
            for site in sites:
                website = by_url.get(site.url)
                if website is None or site.url in failed_urls:
                    state.pages_failed += 1
                    if ledger_on:
                        self._crawl_digests[site.url] = "failed"
                        self._label_digests[site.url] = "failed"
                    continue
                if tracer is None:
                    page = browser.load(website)
                else:
                    loaded = time.perf_counter()
                    page = browser.load(website)
                    crawl_seconds += time.perf_counter() - loaded
                if extension is not None:
                    extension.capture_page(page)
                if ledger_on:
                    # str concat + one bulk stream_digest, not per-event
                    # f-strings through StreamHasher.update(): this loop
                    # runs per request and is what keeps the attached
                    # ledger inside the <5% bench_obs overhead budget.
                    self._crawl_digests[site.url] = stream_digest(
                        [
                            event.url
                            + ("|1|" if event.script_initiated else "|0|")
                            + event.resource_type
                            for event in page.requests
                        ]
                    )
                    label_parts: list[str] = []
                    label_append = label_parts.append
                labeled = time.perf_counter() if tracer is not None else 0.0
                # iter_labeled drains the oracle through its chunked batch
                # path (label_request_many), amortizing decision-cache lock
                # rounds per page while keeping stream order and the
                # label_cache_* note accounting byte-identical.
                for analyzed in labeler.iter_labeled(
                    page.requests, counters=counters
                ):
                    accumulator.add(analyzed)
                    if ledger_on:
                        # The url is deliberately absent: label order is
                        # the script-initiated subsequence of the crawl
                        # stream, so once the crawl digests agree the
                        # urls at each label position already agree.
                        label_append(
                            analyzed.label.value
                            + "|" + analyzed.script
                            + "|" + analyzed.method
                        )
                    if self._retain:
                        self._retained.requests.append(analyzed)
                if tracer is not None:
                    label_seconds += time.perf_counter() - labeled
                if ledger_on:
                    self._label_digests[site.url] = stream_digest(label_parts)
                state.pages_crawled += 1
            if tracer is not None:
                tracer.add(
                    "shard.crawl",
                    crawl_seconds,
                    shard=shard_id,
                    pages=state.pages_crawled,
                )
                tracer.add(
                    "shard.label",
                    label_seconds,
                    shard=shard_id,
                    requests=accumulator.total_requests,
                )
        state.labeled_requests = accumulator.total_requests
        state.excluded_non_script = counters.excluded_non_script
        state.excluded_unparseable = counters.excluded_unparseable
        return state

    # -- end to end -----------------------------------------------------------
    def run(self, web: SyntheticWeb | None = None) -> PipelineResult:
        """Run (or finish) the study and assemble the result."""
        self.process_shards(web)
        web = self._web
        assert web is not None  # process_shards always pins the web
        accumulator = SiftAccumulator()
        # Aggregates are rebuilt from the shard states on every call, so a
        # repeated run() stays idempotent; only the retained request list
        # (appended at crawl time, and shards never re-crawl) is shared.
        labeled = LabeledCrawl(requests=self._retained.requests)
        pages_crawled = pages_failed = 0
        with span("sift", shards=self._shards):
            for shard_id in range(self._shards):
                if shard_id in self._quarantined:
                    # Explicitly degraded: the shard exhausted its retry
                    # budget and its contribution is absent from every
                    # aggregate below — flagged in notes, recorded in
                    # quarantine.json, retried by the next resume.
                    continue
                state = self._states[shard_id]
                accumulator.merge(state.tallies, state.labeled_requests)
                pages_crawled += state.pages_crawled
                pages_failed += state.pages_failed
                labeled.excluded_non_script += state.excluded_non_script
                labeled.excluded_unparseable += state.excluded_unparseable
                for script, (tracking, functional) in state.participation.items():
                    entry = labeled.participation.setdefault(script, [0, 0])
                    entry[0] += tracking
                    entry[1] += functional
            report = accumulator.report(sifter_for(self.config))
        if self._ledger is not None and not self._ledger_recorded:
            self._record_ledger(web, accumulator, report)
            self._ledger_recorded = True
        notes: dict[str, float] = {
            "shards": float(self._shards),
            "workers": float(self._workers),
            "shards_resumed": float(self._resumed_shards),
            "labeled_requests": float(accumulator.total_requests),
            "distinct_resources": float(accumulator.distinct_resources),
        }
        notes.update(self._lease_notes)
        if self._checkpoints_discarded:
            notes["checkpoints_discarded"] = float(self._checkpoints_discarded)
        if self._quarantined:
            notes["degraded"] = 1.0
            notes["quarantined_shard_ids"] = ",".join(
                str(shard_id) for shard_id in sorted(self._quarantined)
            )
        if self._workers > 1:
            # Fan-out overhead breakdown: parent-side materialization of
            # the slice store + compiled oracle, and the summed per-worker
            # startup (artifact load), transfer (slice loads) and compute
            # seconds shipped back with the shard outcomes.
            notes["fanout_materialize_seconds"] = (
                self._fanout_materialize_seconds
            )
            notes["fanout_bytes"] = float(self._fanout_bytes)
            notes["worker_startup_seconds"] = self._worker_startup_seconds
            notes["worker_transfer_seconds"] = self._worker_transfer_seconds
            notes["worker_compute_seconds"] = self._worker_compute_seconds
        stats = self._oracle.cache_stats
        if stats is not None:
            # Parent-side lookups plus the counters worker processes
            # shipped back with their shard outcomes.
            hits = stats.hits - self._stats_baseline[0] + self._worker_hits
            misses = (
                stats.misses - self._stats_baseline[1] + self._worker_misses
            )
            lookups = hits + misses
            notes["label_cache_hits"] = float(hits)
            notes["label_cache_misses"] = float(misses)
            notes["label_cache_hit_rate"] = hits / lookups if lookups else 0.0
        return PipelineResult(
            config=self.config,
            web=web,
            database=self._database,
            labeled=labeled,
            report=report,
            pages_crawled=pages_crawled,
            pages_failed=pages_failed,
            notes=notes,
        )

    def _record_ledger(
        self,
        web: SyntheticWeb,
        accumulator: SiftAccumulator,
        report: SiftReport,
    ) -> None:
        """Record the full stage chain into the attached ledger.

        Every stage's state is shard-count- and worker-count-invariant:
        list/matcher identity comes from the matcher itself (identical
        whether parsed fresh or loaded from an artifact), the crawl and
        label stages are per-*site* stream digests keyed by URL, and the
        sift stage is the merged tally map — so all execution paths of
        one study must produce the identical chain, and the first
        divergent stage localizes any determinism bug.
        """
        ledger = self._ledger
        assert ledger is not None
        matcher = self._oracle.matcher
        plain = matcher.wrapped if isinstance(matcher, CachedMatcher) else matcher
        automaton = plain.automaton
        ledger.record(
            "filterlists",
            {"lists": list(plain.list_names), "rule_count": plain.rule_count},
        )
        ledger.record(
            "matcher",
            {
                "rule_count": plain.rule_count,
                "revision": plain.revision,
                "automaton_keys": (
                    automaton.vocabulary_size if automaton else 0
                ),
                "unsupported_rules": plain.unsupported_rule_count,
            },
        )
        ledger.record(
            "web",
            {"fingerprint": _web_fingerprint(web), "sites": len(web.websites)},
        )
        ledger.record(
            "crawl",
            self._crawl_digests,
            sites=len(self._crawl_digests),
            shards_resumed=self._resumed_shards,
        )
        ledger.record(
            "labels",
            self._label_digests,
            requests=int(accumulator.total_requests),
        )
        ledger.record(
            "sift",
            {
                "tallies": sorted(
                    [*key, tracking, functional]
                    for key, (tracking, functional) in accumulator.groups.items()
                ),
                "total_requests": accumulator.total_requests,
            },
            distinct_resources=accumulator.distinct_resources,
        )
        ledger.record("report", _report_state(report), levels=len(report.levels))


def _report_state(report: SiftReport) -> dict:
    """A :class:`SiftReport` reduced to its canonical-JSON-able content."""
    return {
        "total_requests": report.total_requests,
        "levels": [
            {
                "granularity": level.granularity,
                "resources": {
                    key: [
                        result.counts.tracking,
                        result.counts.functional,
                        result.resource_class.value,
                    ]
                    for key, result in level.resources.items()
                },
            }
            for level in report.levels
        ],
    }


def _web_fingerprint(web: SyntheticWeb) -> int:
    """Identity of a web's *content*, not just its site list.

    Two webs with the same URLs but different planned behaviour (mutated
    scripts, methods, invocations) are different simulated universes; the
    fingerprint covers enough structure to tell them apart so shard states
    never merge across them.
    """
    parts: list[object] = []
    for website in web.websites:
        parts.append(website.url)
        parts.append(website.rank)
        for script in website.scripts:
            parts.append(script.url)
            for method in script.methods:
                parts.append(method.name)
                parts.append(len(method.invocations))
                parts.append(
                    sum(len(inv.requests) for inv in method.invocations)
                )
    return stable_hash(*parts)


def sifter_for(config: PipelineConfig) -> HierarchicalSifter:
    """The sifter a config asks for — shared by both pipeline front doors."""
    return HierarchicalSifter(
        RatioClassifier(config.threshold),
        descent_classifier=(
            RatioClassifier(config.descent_threshold)
            if config.descent_threshold is not None
            else None
        ),
    )


def _atomic_write(path: Path, text: str) -> None:
    # Kept as the engine's single write seam (tests monkeypatch it);
    # durability itself lives in repro.durable.
    atomic_write_text(path, text)
