"""End-to-end TrackerSift pipeline: generate → crawl → label → sift.

This is the orchestration a user runs to reproduce the paper's study at
some scale.  Every stage is swappable — bring your own web (or a recorded
event database), your own filter lists, your own threshold — which is also
how the ablation benchmarks are built.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crawler.cluster import CrawlCluster
from ..crawler.storage import RequestDatabase
from ..filterlists.oracle import FilterListOracle
from ..labeling.labeler import LabeledCrawl, RequestLabeler
from ..webmodel.generator import SyntheticWeb, SyntheticWebGenerator
from .classifier import RatioClassifier
from .hierarchy import HierarchicalSifter
from .results import SiftReport

__all__ = ["PipelineConfig", "PipelineResult", "TrackerSiftPipeline", "run_study"]


@dataclass(frozen=True)
class PipelineConfig:
    """Study parameters (defaults mirror the paper, scaled down)."""

    sites: int = 2_000
    seed: int = 7
    cluster_nodes: int = 13
    threshold: float = 2.0
    failure_rate: float = 0.0
    propagate_ancestry: bool = True


@dataclass
class PipelineResult:
    """Everything the study produced, stage by stage."""

    config: PipelineConfig
    web: SyntheticWeb
    database: RequestDatabase
    labeled: LabeledCrawl
    report: SiftReport
    pages_crawled: int = 0
    pages_failed: int = 0
    notes: dict[str, float] = field(default_factory=dict)

    @property
    def total_script_requests(self) -> int:
        return len(self.labeled.requests)


class TrackerSiftPipeline:
    """Composable pipeline; each stage can also be called on its own."""

    def __init__(
        self,
        config: PipelineConfig | None = None,
        *,
        oracle: FilterListOracle | None = None,
    ) -> None:
        self.config = config or PipelineConfig()
        self._oracle = oracle or FilterListOracle()

    # -- stages --------------------------------------------------------------
    def generate(self) -> SyntheticWeb:
        return SyntheticWebGenerator(
            sites=self.config.sites, seed=self.config.seed
        ).build()

    def crawl(self, web: SyntheticWeb) -> tuple[RequestDatabase, int, int]:
        cluster = CrawlCluster(
            web,
            nodes=self.config.cluster_nodes,
            failure_rate=self.config.failure_rate,
        )
        result = cluster.crawl()
        return result.database, result.pages_crawled, result.pages_failed

    def label(self, database: RequestDatabase) -> LabeledCrawl:
        labeler = RequestLabeler(
            self._oracle, propagate_ancestry=self.config.propagate_ancestry
        )
        return labeler.label_crawl(database)

    def sift(self, labeled: LabeledCrawl) -> SiftReport:
        sifter = HierarchicalSifter(RatioClassifier(self.config.threshold))
        return sifter.sift(labeled.requests)

    # -- end to end -------------------------------------------------------------
    def run(self, web: SyntheticWeb | None = None) -> PipelineResult:
        web = web or self.generate()
        database, crawled, failed = self.crawl(web)
        labeled = self.label(database)
        report = self.sift(labeled)
        return PipelineResult(
            config=self.config,
            web=web,
            database=database,
            labeled=labeled,
            report=report,
            pages_crawled=crawled,
            pages_failed=failed,
        )


def run_study(
    sites: int = 2_000, seed: int = 7, threshold: float = 2.0
) -> PipelineResult:
    """One-call reproduction of the measurement study at a given scale."""
    config = PipelineConfig(sites=sites, seed=seed, threshold=threshold)
    return TrackerSiftPipeline(config).run()
