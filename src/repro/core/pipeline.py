"""End-to-end TrackerSift pipeline: generate → crawl → label → sift.

This is the orchestration a user runs to reproduce the paper's study at
some scale.  Every stage is swappable — bring your own web (or a recorded
event database), your own filter lists, your own threshold — which is also
how the ablation benchmarks are built.

Since the streaming engine landed, :class:`TrackerSiftPipeline` is a thin
compatibility wrapper over :class:`~repro.core.engine.StreamingPipeline`
in retain mode: one engine shard per cluster node reproduces the classic
batch crawl bit-for-bit (same event order, same request ids, same failure
set) while the report itself comes from the engine's grouped sift — so
batch and streaming share one implementation.  The individual stage
methods (:meth:`~TrackerSiftPipeline.generate` /
:meth:`~TrackerSiftPipeline.crawl` / :meth:`~TrackerSiftPipeline.label` /
:meth:`~TrackerSiftPipeline.sift`) still run standalone for ablations.
"""

from __future__ import annotations

from ..crawler.cluster import CrawlCluster
from ..crawler.storage import RequestDatabase
from ..filterlists.oracle import FilterListOracle
from ..labeling.labeler import LabeledCrawl, RequestLabeler
from ..obs.ledger import Ledger
from ..webmodel.generator import SyntheticWeb, SyntheticWebGenerator
from .engine import PipelineConfig, PipelineResult, StreamingPipeline, sifter_for
from .results import SiftReport

__all__ = ["PipelineConfig", "PipelineResult", "TrackerSiftPipeline", "run_study"]


class TrackerSiftPipeline:
    """Composable pipeline; each stage can also be called on its own.

    ``workers`` selects the engine's process-parallel mode: the crawl
    fans out to that many shard workers and the report stays bit-identical
    to a sequential run.  Parallel runs carry aggregates only — like the
    streaming door, ``result.database`` and ``result.labeled.requests``
    stay empty, because materialized event streams cannot be reproduced
    identically across process boundaries (request ids are process-global).
    Keep ``workers=1`` when a stage needs the materialized crawl.
    """

    def __init__(
        self,
        config: PipelineConfig | None = None,
        *,
        oracle: FilterListOracle | None = None,
        workers: int = 1,
        ledger: Ledger | None = None,
    ) -> None:
        self.config = config or PipelineConfig()
        if workers < 1:
            raise ValueError("need at least one worker")
        self._workers = workers
        self._oracle = oracle or FilterListOracle()
        # Determinism ledger, passed through to the engine each run().
        # Run once per ledger: every run() appends a fresh stage chain.
        self._ledger = ledger
        # One caching view shared by every run() of this pipeline: repeat
        # runs reuse warm decisions, the caller's oracle stays unmutated.
        self._cached_oracle = self._oracle.cached_view()

    # -- stages --------------------------------------------------------------
    def generate(self) -> SyntheticWeb:
        return SyntheticWebGenerator(
            sites=self.config.sites, seed=self.config.seed
        ).build()

    def crawl(self, web: SyntheticWeb) -> tuple[RequestDatabase, int, int]:
        cluster = CrawlCluster(
            web,
            nodes=self.config.cluster_nodes,
            failure_rate=self.config.failure_rate,
        )
        result = cluster.crawl()
        return result.database, result.pages_crawled, result.pages_failed

    def label(self, database: RequestDatabase) -> LabeledCrawl:
        labeler = RequestLabeler(
            self._oracle, propagate_ancestry=self.config.propagate_ancestry
        )
        return labeler.label_crawl(database)

    def sift(self, labeled: LabeledCrawl) -> SiftReport:
        return sifter_for(self.config).sift(labeled.requests)

    # -- end to end -------------------------------------------------------------
    def run(self, web: SyntheticWeb | None = None) -> PipelineResult:
        engine = StreamingPipeline(
            self.config,
            shards=self.config.cluster_nodes,
            workers=self._workers,
            oracle=self._cached_oracle,
            retain_events=self._workers == 1,
            ledger=self._ledger,
        )
        return engine.run(web)


def run_study(
    sites: int = 2_000, seed: int = 7, threshold: float = 2.0
) -> PipelineResult:
    """One-call reproduction of the measurement study at a given scale."""
    config = PipelineConfig(sites=sites, seed=seed, threshold=threshold)
    return TrackerSiftPipeline(config).run()
