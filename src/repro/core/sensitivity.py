"""Threshold sensitivity analysis (paper §5, Figure 4).

The paper sweeps the classification threshold from 1.0 to 3.0 in steps of
0.1 and plots the share of scripts classified as mixed, observing a plateau
around the chosen ±2.  We reproduce the sweep over any granularity: the
per-entity ratios of a level are fixed by the data, so re-thresholding is a
pure re-bucketing (no re-crawl, no re-sift).

Note the subtlety the paper glosses over: changing the threshold at an
*upper* level changes which requests descend.  Figure 4 holds the upstream
levels at the default threshold and varies only the level under study,
which is what :func:`threshold_sweep` does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..labeling.labeler import AnalyzedRequest
from .classifier import RatioClassifier
from .hierarchy import HierarchicalSifter
from .results import LevelReport

__all__ = ["SensitivityPoint", "SensitivityResult", "threshold_sweep", "sweep_level"]


@dataclass(frozen=True, slots=True)
class SensitivityPoint:
    """One point on the Figure 4 curve."""

    threshold: float
    mixed_entities: int
    total_entities: int

    @property
    def mixed_share(self) -> float:
        if self.total_entities == 0:
            return 0.0
        return self.mixed_entities / self.total_entities


@dataclass
class SensitivityResult:
    """The full sweep for one granularity."""

    granularity: str
    points: list[SensitivityPoint]

    def shares(self) -> list[float]:
        return [p.mixed_share for p in self.points]

    def is_monotone_nondecreasing(self) -> bool:
        """Widening the mixed band can only add mixed entities."""
        shares = self.shares()
        return all(a <= b + 1e-12 for a, b in zip(shares, shares[1:]))

    def plateau_start(self, tolerance: float = 0.002) -> float:
        """First threshold after which the curve stays within ``tolerance``.

        The paper's claim is that this lands near 2.0 — i.e. almost no
        entity has |ratio| between ~2 and 3, so the exact cut is stable.
        """
        shares = self.shares()
        final = shares[-1]
        for point, share in zip(self.points, shares):
            if final - share <= tolerance:
                return point.threshold
        return self.points[-1].threshold


def sweep_level(
    ratios: list[float],
    granularity: str,
    thresholds: list[float] | None = None,
) -> SensitivityResult:
    """Sweep thresholds over a fixed list of per-entity ratios."""
    if thresholds is None:
        thresholds = [round(1.0 + 0.1 * i, 1) for i in range(21)]  # 1.0..3.0
    points = []
    finite_or_inf = [r for r in ratios if not math.isnan(r)]
    total = len(finite_or_inf)
    for threshold in thresholds:
        mixed = sum(1 for r in finite_or_inf if -threshold < r < threshold)
        points.append(
            SensitivityPoint(
                threshold=threshold, mixed_entities=mixed, total_entities=total
            )
        )
    return SensitivityResult(granularity=granularity, points=points)


def threshold_sweep(
    requests: list[AnalyzedRequest],
    granularity: str = "script",
    thresholds: list[float] | None = None,
    *,
    upstream_threshold: float = 2.0,
) -> SensitivityResult:
    """Figure 4: sweep the threshold at one granularity.

    Upstream levels are held at ``upstream_threshold`` so the request
    population reaching the studied level is the paper's.
    """
    sifter = HierarchicalSifter(RatioClassifier(upstream_threshold))
    report = sifter.sift(requests)
    level: LevelReport = report.level(granularity)
    return sweep_level(level.ratios(), granularity, thresholds)
