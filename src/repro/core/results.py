"""Result containers for the hierarchical sift.

A :class:`LevelReport` holds, for one granularity, every resource's request
counts, its class, and the request totals per class — everything Tables 1-2
and Figure 3 need.  A :class:`SiftReport` chains the four levels together
and carries the cumulative separation factors (the 54% → 65% → 94% → 98%
sequence of Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .classifier import ResourceClass, ResourceCounts

__all__ = ["Granularity", "ResourceResult", "LevelReport", "SiftReport"]

#: Granularity order, coarse to fine (the paper's Figure 1 arrow).
Granularity = str
GRANULARITIES: tuple[Granularity, ...] = ("domain", "hostname", "script", "method")


@dataclass(frozen=True, slots=True)
class ResourceResult:
    """One resource's outcome at one granularity."""

    key: str
    counts: ResourceCounts
    resource_class: ResourceClass

    @property
    def ratio(self) -> float:
        return self.counts.ratio


@dataclass
class LevelReport:
    """Classification outcome for one granularity level."""

    granularity: Granularity
    resources: dict[str, ResourceResult] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.granularity not in GRANULARITIES:
            raise ValueError(f"unknown granularity {self.granularity!r}")

    # -- entity-side views -----------------------------------------------
    def by_class(self, resource_class: ResourceClass) -> list[ResourceResult]:
        return [
            r for r in self.resources.values() if r.resource_class is resource_class
        ]

    def entity_count(self, resource_class: ResourceClass | None = None) -> int:
        if resource_class is None:
            return len(self.resources)
        return len(self.by_class(resource_class))

    def mixed_keys(self) -> set[str]:
        return {
            key
            for key, result in self.resources.items()
            if result.resource_class is ResourceClass.MIXED
        }

    def ratios(self) -> list[float]:
        """Per-entity log ratios (Figure 3's histogram input)."""
        return [r.ratio for r in self.resources.values()]

    # -- request-side views -----------------------------------------------
    def request_count(self, resource_class: ResourceClass | None = None) -> int:
        if resource_class is None:
            return sum(r.counts.total for r in self.resources.values())
        return sum(r.counts.total for r in self.by_class(resource_class))

    @property
    def separation_factor(self) -> float:
        """Share of this level's requests attributed to pure resources."""
        total = self.request_count()
        if total == 0:
            return 0.0
        pure = self.request_count(ResourceClass.TRACKING) + self.request_count(
            ResourceClass.FUNCTIONAL
        )
        return pure / total

    def summary_row(self) -> dict:
        """One Table 1 row (requests) and Table 2 row (entities) combined."""
        return {
            "granularity": self.granularity,
            "requests_tracking": self.request_count(ResourceClass.TRACKING),
            "requests_functional": self.request_count(ResourceClass.FUNCTIONAL),
            "requests_mixed": self.request_count(ResourceClass.MIXED),
            "entities_tracking": self.entity_count(ResourceClass.TRACKING),
            "entities_functional": self.entity_count(ResourceClass.FUNCTIONAL),
            "entities_mixed": self.entity_count(ResourceClass.MIXED),
            "separation_factor": self.separation_factor,
        }


@dataclass
class SiftReport:
    """The chained four-level outcome of a hierarchical sift."""

    levels: list[LevelReport] = field(default_factory=list)
    total_requests: int = 0

    def level(self, granularity: Granularity) -> LevelReport:
        for level in self.levels:
            if level.granularity == granularity:
                return level
        raise KeyError(granularity)

    @property
    def domain(self) -> LevelReport:
        return self.level("domain")

    @property
    def hostname(self) -> LevelReport:
        return self.level("hostname")

    @property
    def script(self) -> LevelReport:
        return self.level("script")

    @property
    def method(self) -> LevelReport:
        return self.level("method")

    def cumulative_separation(self) -> list[float]:
        """Cumulative separation factor after each level.

        Defined over the total request population: after level *k*, the
        share of all requests attributed to a pure resource at some level
        ``<= k``.
        """
        if self.total_requests == 0:
            return [0.0] * len(self.levels)
        attributed = 0
        out: list[float] = []
        for level in self.levels:
            attributed += level.request_count(
                ResourceClass.TRACKING
            ) + level.request_count(ResourceClass.FUNCTIONAL)
            out.append(attributed / self.total_requests)
        return out

    @property
    def final_separation(self) -> float:
        """The headline number: 98% in the paper."""
        cumulative = self.cumulative_separation()
        return cumulative[-1] if cumulative else 0.0

    @property
    def unattributed_requests(self) -> int:
        """Requests still mixed after the finest level (<2% in the paper)."""
        if not self.levels:
            return 0
        return self.levels[-1].request_count(ResourceClass.MIXED)

    def summary(self) -> list[dict]:
        rows = []
        for level, cumulative in zip(self.levels, self.cumulative_separation()):
            row = level.summary_row()
            row["cumulative_separation"] = cumulative
            rows.append(row)
        return rows
