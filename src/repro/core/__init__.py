"""TrackerSift core: the paper's primary contribution.

* :mod:`classifier` — Equation 1 and the ±2 threshold classifier,
* :mod:`hierarchy` — progressive domain → hostname → script → method sift,
* :mod:`results` — level reports, separation factors,
* :mod:`engine` — streaming sharded execution with memoized labeling,
* :mod:`pipeline` — end-to-end study orchestration,
* :mod:`sensitivity` — Figure 4 threshold sweep,
* :mod:`callstack_analysis` — Figure 5 point-of-divergence search,
* :mod:`surrogate` — automated surrogate scripts for mixed scripts,
* :mod:`guards` — invariant-inference guards for residual mixed methods.
"""

from .callstack_analysis import (
    CallGraph,
    DivergenceResult,
    analyze_mixed_method,
    build_call_graph,
)
from .classifier import (
    DEFAULT_THRESHOLD,
    RatioClassifier,
    ResourceClass,
    ResourceCounts,
    log_ratio,
)
from .guards import (
    GuardEvaluation,
    InvocationObservation,
    MethodGuard,
    collect_observations,
    evaluate_guard,
    infer_guard,
    mixed_method_guards,
)
from .engine import ShardState, SiftAccumulator, StreamingPipeline
from .hierarchy import HierarchicalSifter, sift_requests
from .pipeline import PipelineConfig, PipelineResult, TrackerSiftPipeline, run_study
from .results import LevelReport, ResourceResult, SiftReport
from .rulegen import (
    BlockingStrategy,
    FilterRecommendation,
    StrategyOutcome,
    compare_strategies,
    evaluate_strategy,
    generate_recommendation,
)
from .sensitivity import (
    SensitivityPoint,
    SensitivityResult,
    sweep_level,
    threshold_sweep,
)
from .surrogate import (
    SurrogateScript,
    SurrogateValidation,
    generate_surrogate,
    validate_surrogate,
)

__all__ = [
    "log_ratio",
    "DEFAULT_THRESHOLD",
    "ResourceClass",
    "ResourceCounts",
    "RatioClassifier",
    "LevelReport",
    "ResourceResult",
    "SiftReport",
    "HierarchicalSifter",
    "sift_requests",
    "PipelineConfig",
    "PipelineResult",
    "TrackerSiftPipeline",
    "StreamingPipeline",
    "SiftAccumulator",
    "ShardState",
    "run_study",
    "SensitivityPoint",
    "SensitivityResult",
    "sweep_level",
    "threshold_sweep",
    "CallGraph",
    "DivergenceResult",
    "build_call_graph",
    "analyze_mixed_method",
    "SurrogateScript",
    "SurrogateValidation",
    "generate_surrogate",
    "validate_surrogate",
    "InvocationObservation",
    "MethodGuard",
    "GuardEvaluation",
    "collect_observations",
    "infer_guard",
    "evaluate_guard",
    "mixed_method_guards",
    "BlockingStrategy",
    "FilterRecommendation",
    "StrategyOutcome",
    "generate_recommendation",
    "evaluate_strategy",
    "compare_strategies",
]
