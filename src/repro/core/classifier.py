"""The ratio classifier — Equation 1 plus the ±2 threshold (paper §4).

At every granularity, TrackerSift computes the common-log ratio of
tracking to functional requests per resource and classifies:

* ``ratio >= +threshold``  → tracking  (100x more tracking than functional),
* ``ratio <= -threshold``  → functional,
* otherwise               → mixed, to be descended into.

The threshold defaults to the paper's 2.0; Figure 4's sensitivity analysis
sweeps it, so it is an explicit parameter here.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..logratio import DEFAULT_THRESHOLD, log_ratio

__all__ = [
    "ResourceClass",
    "ResourceCounts",
    "RatioClassifier",
    "log_ratio",
    "DEFAULT_THRESHOLD",
]


class ResourceClass(str, Enum):
    """TrackerSift's verdict for one resource at one granularity."""

    TRACKING = "tracking"
    FUNCTIONAL = "functional"
    MIXED = "mixed"


@dataclass(frozen=True, slots=True)
class ResourceCounts:
    """Per-resource request tallies, the classifier's only input."""

    tracking: int = 0
    functional: int = 0

    @property
    def total(self) -> int:
        return self.tracking + self.functional

    @property
    def ratio(self) -> float:
        return log_ratio(self.tracking, self.functional)

    def add(self, tracking: bool) -> "ResourceCounts":
        if tracking:
            return ResourceCounts(self.tracking + 1, self.functional)
        return ResourceCounts(self.tracking, self.functional + 1)


@dataclass(frozen=True, slots=True)
class RatioClassifier:
    """Threshold classifier over request-count ratios.

    >>> RatioClassifier().classify_counts(1000, 3)
    <ResourceClass.TRACKING: 'tracking'>
    """

    threshold: float = DEFAULT_THRESHOLD

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise ValueError(f"threshold must be positive, got {self.threshold}")

    def classify_ratio(self, ratio: float) -> ResourceClass:
        if ratio >= self.threshold:
            return ResourceClass.TRACKING
        if ratio <= -self.threshold:
            return ResourceClass.FUNCTIONAL
        return ResourceClass.MIXED

    def classify_counts(self, tracking: int, functional: int) -> ResourceClass:
        return self.classify_ratio(log_ratio(tracking, functional))

    def classify(self, counts: ResourceCounts) -> ResourceClass:
        return self.classify_counts(counts.tracking, counts.functional)

    def with_threshold(self, threshold: float) -> "RatioClassifier":
        return RatioClassifier(threshold=threshold)
