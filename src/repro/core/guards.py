"""Guard inference for mixed methods (paper §5, "Blocking mixed scripts").

For methods that stay mixed even at the finest granularity, the paper
proposes a *guard*: "a predicate that blocks tracking execution but allows
functional execution", generated with classic invariant-inference over the
method's calling context, scope and arguments — if an online invocation
satisfies the invariant, the guard blocks it.

We implement a Daikon-style inference over invocation observations:

* per argument key, collect the value sets seen under tracking vs
  functional invocations;
* keep keys whose tracking values are disjoint from functional values
  (set-membership invariants) — the safe direction: the guard only blocks
  invocations matching a *tracking-only* value;
* calling-context invariants use the caller chain the same way.

The inferred guard plugs directly into
:class:`~repro.browser.engine.BlockingPolicy.guards`, and the evaluator
reports precision/recall on held-out invocations, which is how the
benchmark quantifies how many of the residual mixed methods become
blockable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..webmodel.generator import SyntheticWeb
from ..webmodel.resources import Category, Invocation

__all__ = [
    "InvocationObservation",
    "MethodGuard",
    "GuardEvaluation",
    "collect_observations",
    "infer_guard",
    "evaluate_guard",
]


@dataclass(frozen=True)
class InvocationObservation:
    """One observed invocation of a mixed method, with its context."""

    args: dict[str, str]
    caller: str  # "script@method" of the nearest caller, "" at top level
    is_tracking: bool


@dataclass(frozen=True)
class MethodGuard:
    """An inferred blocking predicate for one mixed method.

    ``arg_invariants`` maps an argument key to the set of values that, in
    every observation, co-occurred *only* with tracking behaviour.
    ``caller_invariants`` does the same for the nearest caller.

    Blocking is deliberately conservative — the paper's guard must "block
    tracking execution but allow functional execution", so false blocks are
    the failure mode to avoid.  An invocation is blocked only when *every*
    argument invariant agrees it looks like tracking (conjunction); a
    single incidental key (say, a destination host both behaviours use)
    can therefore never veto a functional invocation on its own.  The
    caller invariant is consulted only when no argument invariant exists.
    """

    script: str
    method: str
    arg_invariants: dict[str, frozenset[str]] = field(default_factory=dict)
    caller_invariants: frozenset[str] = frozenset()

    @property
    def vacuous(self) -> bool:
        """True when inference found nothing separable."""
        return not self.arg_invariants and not self.caller_invariants

    def should_block(self, args: dict[str, str], caller: str = "") -> bool:
        if self.arg_invariants:
            return all(
                args.get(key) in tracking_values
                for key, tracking_values in self.arg_invariants.items()
            )
        return bool(caller) and caller in self.caller_invariants

    def as_policy_guard(self):
        """Adapter for :class:`~repro.browser.engine.BlockingPolicy`."""

        def predicate(script: str, method: str, args: dict[str, str]) -> bool:
            return self.should_block(args)

        return (self.script, self.method, predicate)


def collect_observations(
    web: SyntheticWeb, script_url: str, method_name: str
) -> list[InvocationObservation]:
    """Extract the invocation contexts of one method from the web plan.

    This models the extra runtime instrumentation the paper says guard
    generation needs ("collecting the context information, e.g., program
    scope, method arguments, and stack trace, for each request").
    """
    script = web.script(script_url)
    method = script.method(method_name)
    observations: list[InvocationObservation] = []
    for invocation in method.invocations:
        observations.append(_observe(invocation))
    return observations


def _observe(invocation: Invocation) -> InvocationObservation:
    caller = ""
    if invocation.caller_chain:
        frame = invocation.caller_chain[0]
        caller = f"{frame.script_url}@{frame.method}"
    is_tracking = any(r.tracking for r in invocation.requests)
    return InvocationObservation(
        args=dict(invocation.args), caller=caller, is_tracking=is_tracking
    )


def infer_guard(
    script: str,
    method: str,
    observations: list[InvocationObservation],
) -> MethodGuard:
    """Infer set-membership invariants that separate tracking invocations."""
    arg_values: dict[str, tuple[set[str], set[str]]] = {}
    caller_tracking: set[str] = set()
    caller_functional: set[str] = set()
    for obs in observations:
        bucket = 0 if obs.is_tracking else 1
        for key, value in obs.args.items():
            sets = arg_values.setdefault(key, (set(), set()))
            sets[bucket].add(value)
        if obs.caller:
            (caller_tracking if obs.is_tracking else caller_functional).add(
                obs.caller
            )

    arg_invariants: dict[str, frozenset[str]] = {}
    for key, (tracking_values, functional_values) in arg_values.items():
        only_tracking = tracking_values - functional_values
        if only_tracking and not (tracking_values & functional_values):
            # Fully disjoint: every tracking observation is covered and no
            # functional observation can ever fire the guard.
            arg_invariants[key] = frozenset(only_tracking)
    caller_invariants = frozenset(caller_tracking - caller_functional)
    return MethodGuard(
        script=script,
        method=method,
        arg_invariants=arg_invariants,
        caller_invariants=caller_invariants,
    )


@dataclass(frozen=True)
class GuardEvaluation:
    """Held-out precision/recall of a guard."""

    guard: MethodGuard
    true_blocks: int
    false_blocks: int
    missed_tracking: int
    allowed_functional: int

    @property
    def precision(self) -> float:
        fired = self.true_blocks + self.false_blocks
        return self.true_blocks / fired if fired else 1.0

    @property
    def recall(self) -> float:
        tracking = self.true_blocks + self.missed_tracking
        return self.true_blocks / tracking if tracking else 1.0

    @property
    def breaks_functionality(self) -> bool:
        return self.false_blocks > 0


def evaluate_guard(
    guard: MethodGuard,
    observations: list[InvocationObservation],
    *,
    train_fraction: float = 0.6,
    seed: int = 11,
) -> GuardEvaluation:
    """Re-infer on a train split and score on the held-out remainder.

    The passed ``guard`` identifies the method; inference is repeated on
    the training split so the evaluation is honest (no test leakage).
    """
    rng = random.Random(seed)
    shuffled = observations[:]
    rng.shuffle(shuffled)
    cut = max(1, int(len(shuffled) * train_fraction))
    train, test = shuffled[:cut], shuffled[cut:]
    trained = infer_guard(guard.script, guard.method, train)

    true_blocks = false_blocks = missed = allowed_functional = 0
    for obs in test:
        blocked = trained.should_block(obs.args, obs.caller)
        if blocked and obs.is_tracking:
            true_blocks += 1
        elif blocked and not obs.is_tracking:
            false_blocks += 1
        elif not blocked and obs.is_tracking:
            missed += 1
        else:
            allowed_functional += 1
    return GuardEvaluation(
        guard=trained,
        true_blocks=true_blocks,
        false_blocks=false_blocks,
        missed_tracking=missed,
        allowed_functional=allowed_functional,
    )


def mixed_method_guards(web: SyntheticWeb) -> list[tuple[MethodGuard, GuardEvaluation]]:
    """Infer and evaluate guards for every planned mixed method."""
    out: list[tuple[MethodGuard, GuardEvaluation]] = []
    for script in web.scripts:
        for method in script.methods:
            if method.category is not Category.MIXED:
                continue
            observations = [_observe(inv) for inv in method.invocations]
            if len(observations) < 4:
                continue
            guard = infer_guard(script.url, method.name, observations)
            evaluation = evaluate_guard(guard, observations)
            out.append((guard, evaluation))
    return out
