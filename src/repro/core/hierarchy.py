"""The hierarchical sifter — TrackerSift's progressive classification.

Section 2 of the paper, in code:

1. **Domain** — every labeled script-initiated request is attributed to its
   eTLD+1; each domain's tracking/functional tallies are classified.
2. **Hostname** — requests belonging to *mixed* domains are re-attributed
   to their full hostname and classified again.
3. **Script** — requests belonging to mixed hostnames are attributed to the
   initiator script from the call stack.
4. **Method** — requests belonging to mixed scripts are attributed to the
   initiator method (scoped to its script).

Requests attributed to a pure resource are "set aside" at that level; only
the mixed remainder descends, which is what makes the separation factors of
Table 1 cumulative.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Iterable

from ..labeling.labeler import AnalyzedRequest
from .classifier import RatioClassifier, ResourceCounts
from .results import LevelReport, ResourceResult, SiftReport

__all__ = ["HierarchicalSifter", "sift_requests"]

_KeyFunc = Callable[[AnalyzedRequest], str]


def _method_key(request: AnalyzedRequest) -> str:
    # Methods are scoped to their script: `m2` in clone.js is a different
    # resource from `m2` in app.js.
    return f"{request.script}@{request.method}"


_LEVELS: tuple[tuple[str, _KeyFunc], ...] = (
    ("domain", lambda r: r.domain),
    ("hostname", lambda r: r.hostname),
    ("script", lambda r: r.script),
    ("method", _method_key),
)


class HierarchicalSifter:
    """Runs the four-level progressive classification.

    The classifier (and its threshold) is injectable for the Figure 4
    sensitivity sweep and the ablation benchmarks.
    """

    def __init__(self, classifier: RatioClassifier | None = None) -> None:
        self._classifier = classifier or RatioClassifier()

    @property
    def classifier(self) -> RatioClassifier:
        return self._classifier

    def classify_level(
        self,
        granularity: str,
        requests: Iterable[AnalyzedRequest],
        key_func: _KeyFunc,
    ) -> LevelReport:
        """Group requests by ``key_func`` and classify every group."""
        tallies: dict[str, list[int]] = defaultdict(lambda: [0, 0])
        for request in requests:
            entry = tallies[key_func(request)]
            entry[0 if request.is_tracking else 1] += 1
        report = LevelReport(granularity=granularity)
        for key, (tracking, functional) in tallies.items():
            counts = ResourceCounts(tracking=tracking, functional=functional)
            report.resources[key] = ResourceResult(
                key=key,
                counts=counts,
                resource_class=self._classifier.classify(counts),
            )
        return report

    def sift(self, requests: list[AnalyzedRequest]) -> SiftReport:
        """Run all four levels, descending only through mixed resources."""
        report = SiftReport(total_requests=len(requests))
        remaining = requests
        for granularity, key_func in _LEVELS:
            level = self.classify_level(granularity, remaining, key_func)
            report.levels.append(level)
            mixed = level.mixed_keys()
            remaining = [r for r in remaining if key_func(r) in mixed]
            if not remaining:
                break
        return report

    def sift_flat(
        self, requests: list[AnalyzedRequest], granularity: str
    ) -> LevelReport:
        """Ablation: classify *all* requests at a single granularity.

        This is what a non-hierarchical tool would do — e.g. classifying
        every request by initiator script without first peeling off pure
        domains/hostnames.  Compared against the hierarchy in
        ``benchmarks/bench_ablation_hierarchy.py``.
        """
        for name, key_func in _LEVELS:
            if name == granularity:
                return self.classify_level(name, requests, key_func)
        raise KeyError(granularity)


def sift_requests(
    requests: list[AnalyzedRequest], threshold: float = 2.0
) -> SiftReport:
    """Convenience wrapper around :class:`HierarchicalSifter`."""
    return HierarchicalSifter(RatioClassifier(threshold=threshold)).sift(requests)
