"""The hierarchical sifter — TrackerSift's progressive classification.

Section 2 of the paper, in code:

1. **Domain** — every labeled script-initiated request is attributed to its
   eTLD+1; each domain's tracking/functional tallies are classified.
2. **Hostname** — requests belonging to *mixed* domains are re-attributed
   to their full hostname and classified again.
3. **Script** — requests belonging to mixed hostnames are attributed to the
   initiator script from the call stack.
4. **Method** — requests belonging to mixed scripts are attributed to the
   initiator method (scoped to its script).

Requests attributed to a pure resource are "set aside" at that level; only
the mixed remainder descends, which is what makes the separation factors of
Table 1 cumulative.

Two refinements over a naive implementation:

* The sift is computed over **grouped tallies** rather than raw request
  lists: every request is reduced to its attribution key (domain, hostname,
  script, script-scoped method) plus its label, and identical keys are
  merged.  :meth:`HierarchicalSifter.sift_grouped` is the single
  implementation both the batch path and the streaming engine
  (:mod:`repro.core.engine`) share, so the two can never drift — and the
  memory footprint is bounded by the number of *distinct* attribution
  tuples, not the number of requests.
* The **descent policy is separable from the report classifier**.  The
  report classifier decides the class each resource is *published* with;
  the descent classifier decides which requests flow down to the next
  granularity.  When comparing reports across thresholds (Figure 4, the
  separation-factor monotonicity property) the descent must be held fixed,
  otherwise each threshold classifies a *different* request population at
  every level below the first and the per-level separation factors are not
  comparable — the subtlety :mod:`repro.core.sensitivity` documents.
  :func:`sift_requests` therefore descends by the paper's canonical ±2
  band regardless of the report threshold; :class:`HierarchicalSifter`
  keeps descent coupled to the report classifier unless told otherwise.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Iterable, Mapping

from ..labeling.labeler import AnalyzedRequest
from .classifier import RatioClassifier, ResourceClass, ResourceCounts
from .results import LevelReport, ResourceResult, SiftReport

__all__ = [
    "AttributionKey",
    "HierarchicalSifter",
    "attribution_key",
    "sift_requests",
]

_KeyFunc = Callable[[AnalyzedRequest], str]

#: One request's identity at every granularity at once:
#: ``(domain, hostname, script, method)``.  The method component is the raw
#: method name; it is scoped to its script on demand (see ``_LEVEL_KEYS``).
AttributionKey = tuple[str, str, str, str]


def attribution_key(request: AnalyzedRequest) -> AttributionKey:
    """Reduce a request to the four keys the hierarchy attributes it by."""
    return (request.domain, request.hostname, request.script, request.method)


def _method_key(request: AnalyzedRequest) -> str:
    # Methods are scoped to their script: `m2` in clone.js is a different
    # resource from `m2` in app.js.
    return f"{request.script}@{request.method}"


_LEVELS: tuple[tuple[str, _KeyFunc], ...] = (
    ("domain", lambda r: r.domain),
    ("hostname", lambda r: r.hostname),
    ("script", lambda r: r.script),
    ("method", _method_key),
)

#: Level key derived from an :data:`AttributionKey`, mirroring ``_LEVELS``.
_LEVEL_KEYS: tuple[tuple[str, Callable[[AttributionKey], str]], ...] = (
    ("domain", lambda k: k[0]),
    ("hostname", lambda k: k[1]),
    ("script", lambda k: k[2]),
    ("method", lambda k: f"{k[2]}@{k[3]}"),
)


class HierarchicalSifter:
    """Runs the four-level progressive classification.

    The classifier (and its threshold) is injectable for the Figure 4
    sensitivity sweep and the ablation benchmarks.  ``descent_classifier``
    optionally decouples which resources are *descended into* from how they
    are *reported*: by default both use ``classifier`` (the paper's single
    ±2 hierarchy), while threshold-comparison analyses pin the descent so
    every threshold classifies the same population at each level.
    """

    def __init__(
        self,
        classifier: RatioClassifier | None = None,
        *,
        descent_classifier: RatioClassifier | None = None,
    ) -> None:
        self._classifier = classifier or RatioClassifier()
        self._descent = descent_classifier or self._classifier

    @property
    def classifier(self) -> RatioClassifier:
        return self._classifier

    @property
    def descent_classifier(self) -> RatioClassifier:
        return self._descent

    def classify_level(
        self,
        granularity: str,
        requests: Iterable[AnalyzedRequest],
        key_func: _KeyFunc,
    ) -> LevelReport:
        """Group requests by ``key_func`` and classify every group."""
        tallies: dict[str, list[int]] = defaultdict(lambda: [0, 0])
        for request in requests:
            entry = tallies[key_func(request)]
            entry[0 if request.is_tracking else 1] += 1
        return self._build_level(granularity, tallies)

    def _build_level(
        self, granularity: str, tallies: Mapping[str, list[int]]
    ) -> LevelReport:
        report = LevelReport(granularity=granularity)
        for key, (tracking, functional) in tallies.items():
            counts = ResourceCounts(tracking=tracking, functional=functional)
            report.resources[key] = ResourceResult(
                key=key,
                counts=counts,
                resource_class=self._classifier.classify(counts),
            )
        return report

    def sift(self, requests: list[AnalyzedRequest]) -> SiftReport:
        """Run all four levels, descending only through mixed resources."""
        groups: dict[AttributionKey, list[int]] = defaultdict(lambda: [0, 0])
        for request in requests:
            groups[attribution_key(request)][0 if request.is_tracking else 1] += 1
        return self.sift_grouped(groups, total_requests=len(requests))

    def sift_grouped(
        self,
        groups: Mapping[AttributionKey, Iterable[int]],
        total_requests: int,
    ) -> SiftReport:
        """Sift pre-grouped ``(tracking, functional)`` tallies.

        ``groups`` maps each distinct :data:`AttributionKey` to its request
        tallies.  This produces exactly the report :meth:`sift` would for a
        request list with the same tallies — it *is* the implementation
        :meth:`sift` delegates to, and the entry point the streaming
        engine's shard accumulators merge into.
        """
        report = SiftReport(total_requests=total_requests)
        remaining: list[tuple[AttributionKey, int, int]] = [
            (key, tracking, functional)
            for key, (tracking, functional) in groups.items()
        ]
        for granularity, level_key in _LEVEL_KEYS:
            tallies: dict[str, list[int]] = defaultdict(lambda: [0, 0])
            for key, tracking, functional in remaining:
                entry = tallies[level_key(key)]
                entry[0] += tracking
                entry[1] += functional
            report.levels.append(self._build_level(granularity, tallies))
            # Descend by the descent classifier, which the report classes
            # above may deliberately differ from (threshold comparisons).
            mixed = {
                key
                for key, (tracking, functional) in tallies.items()
                if self._descent.classify_counts(tracking, functional)
                is ResourceClass.MIXED
            }
            remaining = [
                item for item in remaining if level_key(item[0]) in mixed
            ]
            if not remaining:
                break
        return report

    def sift_flat(
        self, requests: list[AnalyzedRequest], granularity: str
    ) -> LevelReport:
        """Ablation: classify *all* requests at a single granularity.

        This is what a non-hierarchical tool would do — e.g. classifying
        every request by initiator script without first peeling off pure
        domains/hostnames.  Compared against the hierarchy in
        ``benchmarks/bench_ablation_hierarchy.py``.
        """
        for name, key_func in _LEVELS:
            if name == granularity:
                return self.classify_level(name, requests, key_func)
        raise KeyError(granularity)


def sift_requests(
    requests: list[AnalyzedRequest], threshold: float = 2.0
) -> SiftReport:
    """Convenience sift reporting at ``threshold``.

    The *descent* is always the paper's canonical ±2 band
    (:data:`~repro.logratio.DEFAULT_THRESHOLD`), independent of the report
    threshold.  This is what makes per-level separation factors comparable
    — and provably monotone — across thresholds: every threshold
    classifies the *same* request population at every level, so widening
    the mixed band can only shrink each level's pure share.  Descending by
    the report threshold instead would let a looser threshold push extra
    requests downward, where a one-sided method can be pure at *any*
    threshold and lift a deeper level's separation factor above the
    tighter run's (the seed regression
    ``test_separation_factor_decreases_with_threshold`` guards this).
    """
    return HierarchicalSifter(
        RatioClassifier(threshold=threshold),
        descent_classifier=RatioClassifier(),
    ).sift(requests)
