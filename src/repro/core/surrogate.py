"""Surrogate-script generation (paper §5, "Blocking mixed scripts").

Content blockers already shim known-problematic scripts with hand-written
*surrogate scripts* (NoScript, uBlock Origin, AdGuard, Firefox SmartBlock).
TrackerSift automates this: once method classification has labeled the
methods of a mixed script, removing the tracking methods yields a surrogate
that keeps the functional behaviour.

The paper also flags the risk: dynamic analysis has coverage gaps, so a
method that *looked* tracking-only (or was never observed) might carry
functional duties; naive removal then breaks the page.  The validator
replays the page with the surrogate installed and reports both the tracking
requests removed and any functionality broken.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..browser.breakage import BreakageLevel, grade_breakage
from ..browser.engine import BlockingPolicy, BrowserEngine
from ..webmodel.resources import ScriptSpec
from ..webmodel.website import Website
from .classifier import ResourceClass
from .results import SiftReport

__all__ = ["SurrogateScript", "SurrogateValidation", "generate_surrogate", "validate_surrogate"]


@dataclass(frozen=True)
class SurrogateScript:
    """A mixed script with its tracking methods stripped."""

    original_url: str
    removed_methods: tuple[str, ...]
    kept_methods: tuple[str, ...]

    @property
    def policy(self) -> BlockingPolicy:
        """The blocking policy that installs this surrogate at runtime."""
        return BlockingPolicy(
            removed_methods=frozenset(
                (self.original_url, method) for method in self.removed_methods
            )
        )

    @property
    def is_noop(self) -> bool:
        return not self.removed_methods


def generate_surrogate(
    script: ScriptSpec,
    report: SiftReport,
    *,
    remove_mixed: bool = False,
) -> SurrogateScript:
    """Build a surrogate for ``script`` from a sift report's method level.

    Methods classified tracking are removed; functional methods are kept.
    Methods the sift never saw (no observed requests, or below the method
    level because the script resolved earlier) are conservatively kept.
    ``remove_mixed`` additionally strips methods still classified as mixed —
    more tracking removed, more breakage risk; the benchmark quantifies the
    trade-off.
    """
    method_level = report.method
    removed: list[str] = []
    kept: list[str] = []
    for method in script.methods:
        key = f"{script.url}@{method.name}"
        result = method_level.resources.get(key)
        if result is None:
            kept.append(method.name)
            continue
        if result.resource_class is ResourceClass.TRACKING:
            removed.append(method.name)
        elif result.resource_class is ResourceClass.MIXED and remove_mixed:
            removed.append(method.name)
        else:
            kept.append(method.name)
    return SurrogateScript(
        original_url=script.url,
        removed_methods=tuple(removed),
        kept_methods=tuple(kept),
    )


@dataclass(frozen=True)
class SurrogateValidation:
    """Replay outcome: what the surrogate removed and what it broke."""

    surrogate: SurrogateScript
    website: str
    tracking_removed: int
    tracking_remaining: int
    functional_removed: int
    functional_remaining: int
    breakage: BreakageLevel
    broken_features: tuple[str, ...]

    @property
    def tracking_removal_rate(self) -> float:
        total = self.tracking_removed + self.tracking_remaining
        return self.tracking_removed / total if total else 0.0

    @property
    def collateral_rate(self) -> float:
        total = self.functional_removed + self.functional_remaining
        return self.functional_removed / total if total else 0.0

    @property
    def safe(self) -> bool:
        return self.breakage is BreakageLevel.NONE and self.functional_removed == 0


def validate_surrogate(
    website: Website,
    script: ScriptSpec,
    surrogate: SurrogateScript,
    *,
    oracle_label=None,
    engine: BrowserEngine | None = None,
) -> SurrogateValidation:
    """Replay ``website`` with the surrogate installed and diff behaviour.

    ``oracle_label`` is a callable ``url -> bool`` (is tracking); by default
    the embedded filter-list oracle is used, so validation judges requests
    exactly the way the measurement pipeline does.
    """
    if oracle_label is None:
        from ..filterlists.oracle import FilterListOracle

        oracle = FilterListOracle()

        def oracle_label(url: str) -> bool:
            return oracle.label(url).is_tracking

    engine = engine or BrowserEngine()
    control = engine.load(website)
    treatment = engine.load(website, policy=surrogate.policy)

    def counts(page, from_script: str) -> tuple[int, int]:
        tracking = functional = 0
        for event in page.script_initiated_requests:
            if event.initiator_script != from_script:
                continue
            if oracle_label(event.url):
                tracking += 1
            else:
                functional += 1
        return tracking, functional

    control_t, control_f = counts(control, script.url)
    treat_t, treat_f = counts(treatment, script.url)
    level, core, secondary = grade_breakage(
        control.functionality, treatment.functionality, website
    )
    return SurrogateValidation(
        surrogate=surrogate,
        website=website.url,
        tracking_removed=control_t - treat_t,
        tracking_remaining=treat_t,
        functional_removed=control_f - treat_f,
        functional_remaining=treat_f,
        breakage=level,
        broken_features=core + secondary,
    )
