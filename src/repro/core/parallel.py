"""Process-parallel shard execution over on-disk fan-out artifacts.

:class:`~repro.core.engine.StreamingPipeline` already proved that sharding
has zero semantic surface: per-site determinism (site-keyed coverage RNG,
``node_failure_seed`` keyed on the *cluster* assignment) means any
re-grouping of sites reproduces the batch crawl's exact observable
behaviour.  That is precisely the property that makes shards safe to run
in *separate processes*: each worker crawls, labels and accumulates its
shard completely independently, serializes the resulting
:class:`~repro.core.engine.ShardState` (the same JSON the checkpoint files
hold), and the parent merges states through the exact same
:meth:`~repro.core.engine.SiftAccumulator.merge` path a sequential run
uses — so the output is bit-identical for every worker count.

**What moves between processes is paths, not objects.**  The first
parallel engine shipped the whole study to every worker — the entire
``SyntheticWeb`` and a full oracle, pickled once per pool process — and
``BENCH_parallel.json`` showed the fan-out cost swallowing the fan-out
win (2 workers ran at 0.96x sequential).  Now the parent materializes the
expensive state exactly once into a :class:`ShardSliceStore`:

* one compiled oracle artifact (:mod:`repro.filterlists.compile`) that
  every worker loads without parsing or index construction, and
* one *slice* file per pending shard, holding only that shard's sites,
  websites and failure set,

and a :class:`WorkerSpec` carries nothing but the store directory, the
artifact path and the study config.  A worker's startup cost is one
artifact load; a shard's transfer cost is one slice load — both measured
and shipped back in the :class:`ShardOutcome` overhead fields, so the
parallel bench can attribute wall-clock to transfer/startup/compute
instead of guessing.

Design notes:

* **The worker unit is a shard, the worker state is a process.**  Each
  pool process builds one :class:`_ShardWorker` (config, compiled oracle)
  in its initializer and reuses it for every shard it is handed, so the
  label cache stays warm across a worker's shards.
* **The parent stores outcomes as they complete**, which preserves
  checkpoint semantics: a worker crash (or a kill -9 of the whole pool)
  loses only the shards still in flight — everything already returned was
  checkpointed by the parent and resumes from disk.
* **Workers never checkpoint.**  Only the parent touches
  ``checkpoint_dir``, so there is exactly one writer per file and the
  atomic-rename protocol of the sequential engine carries over unchanged.
* **Cache counters travel with the outcome.**  Each worker's oracle keeps
  its own decision cache; per-shard hit/miss deltas are shipped back so
  ``PipelineResult.notes`` still accounts for every lookup the study made
  (the hit *rate* differs from a shared-cache sequential run — each
  worker warms its own cache — but hits + misses always equals the number
  of labeled requests).
"""

from __future__ import annotations

import json
import pickle
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from ..crawler.tranco import RankedSite
    from ..webmodel.website import Website
    from .engine import PipelineConfig

__all__ = [
    "ShardOutcome",
    "ShardSlice",
    "ShardSliceStore",
    "WorkerSpec",
    "ShardExecutionError",
    "run_shards_parallel",
]


@dataclass(frozen=True)
class ShardOutcome:
    """One shard's result as shipped from a worker back to the parent.

    ``state_json`` is exactly what :meth:`ShardState.to_json` produced in
    the worker — the parent re-hydrates and stores it through the same
    `_store` path a sequential crawl uses, so checkpoints written by a
    parallel run are indistinguishable from sequential ones.

    The overhead fields attribute the worker's wall-clock:
    ``startup_seconds`` is the one-time worker initialization (compiled
    oracle load + pipeline construction), reported with the worker's
    *first* outcome only so the parent can sum without double counting;
    ``transfer_seconds`` is this shard's slice load; ``compute_seconds``
    is the crawl+label+sift itself.

    ``spans`` carries the worker-side trace for this shard as exported
    span dicts — always at least the ``worker.startup`` /
    ``worker.transfer`` / ``worker.compute`` synthetic spans (the parent
    derives the overhead *notes* from these), plus the full in-shard
    span tree when the parent ran with a tracer attached.  The parent
    :meth:`~repro.obs.trace.Tracer.adopt`\\ s them under its fan-out
    span.  ``crawl_digests`` / ``label_digests`` are the per-site
    determinism-ledger fingerprints (``(url, digest)`` pairs) collected
    when the parent runs with a ledger; empty otherwise.
    """

    shard_id: int
    state_json: str
    cache_hits: int
    cache_misses: int
    startup_seconds: float = 0.0
    transfer_seconds: float = 0.0
    compute_seconds: float = 0.0
    spans: tuple = ()
    crawl_digests: tuple = ()
    label_digests: tuple = ()


@dataclass(frozen=True)
class ShardSlice:
    """Everything one shard's crawl needs, loaded from its slice file."""

    shard_id: int
    sites: "list[RankedSite]"
    websites: "list[Website]"
    failed_urls: set[str]

    @property
    def by_url(self) -> dict:
        return {website.url: website for website in self.websites}


class ShardSliceStore:
    """Per-shard site slices on disk — the parent's fan-out unit.

    The parent calls :meth:`materialize` once; each worker then loads only
    the slices of the shards it is actually handed.  Slice files are plain
    pickles (same trust model as the process pool itself: the store lives
    in a parent-owned temporary directory for exactly one pool run).
    """

    MANIFEST = "slices.json"

    def __init__(self, directory: str | Path) -> None:
        self._directory = Path(directory)

    @property
    def directory(self) -> Path:
        return self._directory

    def _slice_path(self, shard_id: int) -> Path:
        return self._directory / f"slice-{shard_id:04d}.pkl"

    def materialize(
        self,
        shard_ids: list[int],
        shard_sites: "list[list[RankedSite]]",
        by_url: dict,
        failed_urls: set[str],
    ) -> int:
        """Write one slice file per pending shard; returns bytes written.

        Each slice carries only its shard's sites, websites and failure
        subset, so per-worker transfer no longer scales with the whole
        web — a worker handed 2 of 13 shards reads ~2/13ths of it.
        """
        self._directory.mkdir(parents=True, exist_ok=True)
        total = 0
        for shard_id in shard_ids:
            sites = shard_sites[shard_id]
            websites = [
                by_url[site.url] for site in sites if site.url in by_url
            ]
            record = ShardSlice(
                shard_id=shard_id,
                sites=sites,
                websites=websites,
                failed_urls={
                    site.url for site in sites if site.url in failed_urls
                },
            )
            data = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
            self._slice_path(shard_id).write_bytes(data)
            total += len(data)
        manifest = {
            "format": 1,
            "shard_ids": sorted(shard_ids),
            "bytes": total,
        }
        (self._directory / self.MANIFEST).write_text(
            json.dumps(manifest, sort_keys=True), encoding="utf-8"
        )
        return total

    def load(self, shard_id: int) -> ShardSlice:
        """Load one shard's slice (worker side)."""
        path = self._slice_path(shard_id)
        try:
            data = path.read_bytes()
        except OSError as error:
            raise FileNotFoundError(
                f"shard slice {path} is missing or unreadable: {error}"
            ) from error
        # A slice unpickles thousands of long-lived objects; same
        # rationale (and same helper) as artifact loading.
        from ..filterlists.compile import gc_paused

        with gc_paused():
            record = pickle.loads(data)
        if record.shard_id != shard_id:
            raise ValueError(
                f"slice file {path} holds shard {record.shard_id}, "
                f"expected {shard_id}"
            )
        return record


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker process needs — as *paths*, not objects.

    ``store_dir`` names the parent's :class:`ShardSliceStore`;
    ``oracle_artifact`` the compiled ``.tsoracle`` the parent wrote from
    its own matcher (so worker decisions are the sequential run's
    decisions by construction).  The spec itself pickles in microseconds,
    which is the whole point: pool startup no longer re-ships the study.

    ``oracle`` is the compatibility escape hatch for :class:`oracle
    subclasses <repro.filterlists.oracle.FilterListOracle>`: an artifact
    reconstructs the *base* class, which would silently drop overridden
    labeling behavior — so when the engine sees a subclass it ships the
    object itself (the pre-artifact transfer path) and workers use it
    verbatim, keeping worker output identical to sequential for any
    oracle type.

    ``trace`` / ``ledger`` mirror the parent's observability state: with
    ``trace`` the worker activates a local tracer around each shard (so
    the full in-shard span tree ships back), with ``ledger`` the worker
    collects per-site determinism fingerprints.  Both default off — the
    baseline parallel path pays nothing.
    """

    config: "PipelineConfig"
    shards: int
    store_dir: str
    oracle_artifact: str
    oracle: "object | None" = None
    trace: bool = False
    ledger: bool = False


class ShardExecutionError(RuntimeError):
    """One or more shard workers failed; completed shards were kept.

    ``failed_shards`` lists the shards whose work was lost.  With a
    ``checkpoint_dir`` every *completed* shard was already persisted by
    the parent, so re-running the pipeline resumes from those and only
    re-crawls the failed remainder.
    """

    def __init__(self, failures: list[tuple[int, BaseException]]) -> None:
        self.failed_shards = tuple(shard_id for shard_id, _ in failures)
        first = failures[0][1]
        super().__init__(
            f"{len(failures)} shard worker(s) failed "
            f"(shards {list(self.failed_shards)}): {first!r}; "
            "completed shards were stored and resume from checkpoint"
        )


# Per-process worker state, built once by the pool initializer.
_WORKER: "_ShardWorker | None" = None


class _ShardWorker:
    """A worker process's resident crawl context.

    Wraps a private :class:`StreamingPipeline` (no checkpoint dir — the
    parent owns persistence) whose oracle comes straight from the compiled
    artifact, and exposes exactly one operation: load one shard's slice,
    crawl it, return its serialized state plus the label-cache delta and
    the overhead breakdown.
    """

    def __init__(self, spec: WorkerSpec) -> None:
        from ..filterlists.oracle import FilterListOracle
        from ..obs.ledger import Ledger
        from .engine import StreamingPipeline

        started = time.perf_counter()
        oracle = (
            spec.oracle
            if spec.oracle is not None
            else FilterListOracle.from_artifact(spec.oracle_artifact)
        )
        self._pipeline = StreamingPipeline(
            spec.config,
            shards=spec.shards,
            oracle=oracle,
            # A throwaway ledger switches on per-site digest collection;
            # the digests travel back with each outcome and the *parent's*
            # ledger records the merged chain.
            ledger=Ledger() if spec.ledger else None,
        )
        self._store = ShardSliceStore(spec.store_dir)
        self._trace = spec.trace
        self._startup_seconds = time.perf_counter() - started
        self._startup_reported = False
        self._last_stats = self._stats()

    def _stats(self) -> tuple[int, int]:
        stats = self._pipeline.oracle.cache_stats
        return (stats.hits, stats.misses) if stats is not None else (0, 0)

    def run(self, shard_id: int) -> ShardOutcome:
        from ..obs.trace import Tracer

        # One tracer per shard run: the worker.* synthetic spans always
        # ship (the parent derives its overhead notes from them); the full
        # in-shard span tree only when the parent traces too.
        tracer = Tracer()
        startup_seconds = (
            0.0 if self._startup_reported else self._startup_seconds
        )
        if startup_seconds:
            tracer.add("worker.startup", startup_seconds)
        loaded = time.perf_counter()
        shard_slice = self._store.load(shard_id)
        transfer_seconds = time.perf_counter() - loaded
        tracer.add("worker.transfer", transfer_seconds, shard=shard_id)
        if self._trace:
            with tracer.activate():
                with tracer.span("worker.compute", shard=shard_id) as record:
                    state = self._pipeline._crawl_shard(
                        shard_id,
                        shard_slice.sites,
                        shard_slice.by_url,
                        shard_slice.failed_urls,
                    )
            compute_seconds = record.duration
        else:
            computed = time.perf_counter()
            state = self._pipeline._crawl_shard(
                shard_id,
                shard_slice.sites,
                shard_slice.by_url,
                shard_slice.failed_urls,
            )
            compute_seconds = time.perf_counter() - computed
            tracer.add("worker.compute", compute_seconds, shard=shard_id)
        crawl_digests, label_digests = self._pipeline.take_site_digests()
        hits, misses = self._stats()
        outcome = ShardOutcome(
            shard_id=shard_id,
            state_json=state.to_json(),
            cache_hits=hits - self._last_stats[0],
            cache_misses=misses - self._last_stats[1],
            startup_seconds=startup_seconds,
            transfer_seconds=transfer_seconds,
            compute_seconds=compute_seconds,
            spans=tuple(tracer.export()),
            crawl_digests=crawl_digests,
            label_digests=label_digests,
        )
        self._startup_reported = True
        self._last_stats = (hits, misses)
        return outcome


def _init_worker(spec: WorkerSpec) -> None:
    global _WORKER
    # Forked children inherit the parent's contextvars — including the
    # span that was active at fork time, whose id would alias into this
    # process's own tracer.  Start from a clean observability context.
    from ..obs.trace import reset_context

    reset_context()
    _WORKER = _ShardWorker(spec)


def _run_shard(shard_id: int) -> ShardOutcome:
    assert _WORKER is not None, "pool initializer did not run"
    return _WORKER.run(shard_id)


def run_shards_parallel(
    spec: WorkerSpec,
    shard_ids: list[int],
    workers: int,
    store: Callable[[ShardOutcome], None],
) -> int:
    """Crawl ``shard_ids`` on a process pool; returns how many completed.

    ``store`` is invoked in the parent, in completion order, as each
    shard's outcome arrives — the engine checkpoints there, so an
    interrupted pool run retains every finished shard.  If any worker
    fails, the remaining outcomes are still stored before a
    :class:`ShardExecutionError` is raised.
    """
    if not shard_ids:
        return 0
    max_workers = min(workers, len(shard_ids))
    completed = 0
    failures: list[tuple[int, BaseException]] = []
    pool = ProcessPoolExecutor(
        max_workers=max_workers, initializer=_init_worker, initargs=(spec,)
    )
    try:
        futures = {
            pool.submit(_run_shard, shard_id): shard_id for shard_id in shard_ids
        }
        for future in as_completed(futures):
            shard_id = futures[future]
            try:
                outcome = future.result()
            except Exception as error:  # noqa: BLE001 - collected & re-raised
                failures.append((shard_id, error))
                continue
            store(outcome)
            completed += 1
    finally:
        # On early exit (KeyboardInterrupt, a checkpoint write failing in
        # store()) cancel queued shards instead of silently crawling them
        # to discarded results; shards already running finish and are the
        # only work lost.  A normal exit has nothing queued — no-op.
        pool.shutdown(wait=True, cancel_futures=True)
    if failures:
        failures.sort(key=lambda item: item[0])
        raise ShardExecutionError(failures) from failures[0][1]
    return completed
