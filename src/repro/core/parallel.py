"""Process-parallel shard execution for the streaming engine.

:class:`~repro.core.engine.StreamingPipeline` already proved that sharding
has zero semantic surface: per-site determinism (site-keyed coverage RNG,
``node_failure_seed`` keyed on the *cluster* assignment) means any
re-grouping of sites reproduces the batch crawl's exact observable
behaviour.  That is precisely the property that makes shards safe to run
in *separate processes*: each worker crawls, labels and accumulates its
shard completely independently, serializes the resulting
:class:`~repro.core.engine.ShardState` (the same JSON the checkpoint files
hold), and the parent merges states through the exact same
:meth:`~repro.core.engine.SiftAccumulator.merge` path a sequential run
uses — so the output is bit-identical for every worker count.

Design notes:

* **The worker unit is a shard, the worker state is a process.**  Each
  pool process builds one :class:`_ShardWorker` (config, web, memoized
  oracle) in its initializer and reuses it for every shard it is handed,
  so the label cache stays warm across a worker's shards.
* **The parent stores outcomes as they complete**, which preserves
  checkpoint semantics: a worker crash (or a kill -9 of the whole pool)
  loses only the shards still in flight — everything already returned was
  checkpointed by the parent and resumes from disk.
* **Workers never checkpoint.**  Only the parent touches
  ``checkpoint_dir``, so there is exactly one writer per file and the
  atomic-rename protocol of the sequential engine carries over unchanged.
* **Cache counters travel with the outcome.**  Each worker's oracle keeps
  its own decision cache; per-shard hit/miss deltas are shipped back so
  ``PipelineResult.notes`` still accounts for every lookup the study made
  (the hit *rate* differs from a shared-cache sequential run — each
  worker warms its own cache — but hits + misses always equals the number
  of labeled requests).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from ..filterlists.oracle import FilterListOracle
    from ..webmodel.generator import SyntheticWeb
    from .engine import PipelineConfig

__all__ = ["ShardOutcome", "WorkerSpec", "ShardExecutionError", "run_shards_parallel"]


@dataclass(frozen=True)
class ShardOutcome:
    """One shard's result as shipped from a worker back to the parent.

    ``state_json`` is exactly what :meth:`ShardState.to_json` produced in
    the worker — the parent re-hydrates and stores it through the same
    `_store` path a sequential crawl uses, so checkpoints written by a
    parallel run are indistinguishable from sequential ones.
    """

    shard_id: int
    state_json: str
    cache_hits: int
    cache_misses: int


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker process needs to reproduce the parent's study.

    ``web`` is ``None`` when the parent generated its web from the config —
    workers then regenerate it deterministically instead of paying the
    pickle transfer; a hand-built web is shipped as-is.  ``oracle`` is the
    parent's caching oracle view (typically cold; a warm cache transfers
    its decisions to every worker as a head start).
    """

    config: "PipelineConfig"
    shards: int
    web: "SyntheticWeb | None"
    oracle: "FilterListOracle"


class ShardExecutionError(RuntimeError):
    """One or more shard workers failed; completed shards were kept.

    ``failed_shards`` lists the shards whose work was lost.  With a
    ``checkpoint_dir`` every *completed* shard was already persisted by
    the parent, so re-running the pipeline resumes from those and only
    re-crawls the failed remainder.
    """

    def __init__(self, failures: list[tuple[int, BaseException]]) -> None:
        self.failed_shards = tuple(shard_id for shard_id, _ in failures)
        first = failures[0][1]
        super().__init__(
            f"{len(failures)} shard worker(s) failed "
            f"(shards {list(self.failed_shards)}): {first!r}; "
            "completed shards were stored and resume from checkpoint"
        )


# Per-process worker state, built once by the pool initializer.
_WORKER: "_ShardWorker | None" = None


class _ShardWorker:
    """A worker process's resident crawl context.

    Wraps a private :class:`StreamingPipeline` (no checkpoint dir — the
    parent owns persistence) and exposes exactly one operation: crawl one
    shard, return its serialized state plus the label-cache delta.
    """

    def __init__(self, spec: WorkerSpec) -> None:
        from ..crawler.cluster import round_robin_shards
        from .engine import StreamingPipeline

        self._pipeline = StreamingPipeline(
            spec.config, shards=spec.shards, oracle=spec.oracle
        )
        web = spec.web if spec.web is not None else self._pipeline.generate()
        sites = self._pipeline._site_list(web)
        self._shard_sites = round_robin_shards(sites, spec.shards)
        self._by_url = {website.url: website for website in web.websites}
        self._failed_urls = self._pipeline._failed_urls(sites)
        self._last_stats = self._stats()

    def _stats(self) -> tuple[int, int]:
        stats = self._pipeline.oracle.cache_stats
        return (stats.hits, stats.misses) if stats is not None else (0, 0)

    def run(self, shard_id: int) -> ShardOutcome:
        state = self._pipeline._crawl_shard(
            shard_id,
            self._shard_sites[shard_id],
            self._by_url,
            self._failed_urls,
        )
        hits, misses = self._stats()
        outcome = ShardOutcome(
            shard_id=shard_id,
            state_json=state.to_json(),
            cache_hits=hits - self._last_stats[0],
            cache_misses=misses - self._last_stats[1],
        )
        self._last_stats = (hits, misses)
        return outcome


def _init_worker(spec: WorkerSpec) -> None:
    global _WORKER
    _WORKER = _ShardWorker(spec)


def _run_shard(shard_id: int) -> ShardOutcome:
    assert _WORKER is not None, "pool initializer did not run"
    return _WORKER.run(shard_id)


def run_shards_parallel(
    spec: WorkerSpec,
    shard_ids: list[int],
    workers: int,
    store: Callable[[ShardOutcome], None],
) -> int:
    """Crawl ``shard_ids`` on a process pool; returns how many completed.

    ``store`` is invoked in the parent, in completion order, as each
    shard's outcome arrives — the engine checkpoints there, so an
    interrupted pool run retains every finished shard.  If any worker
    fails, the remaining outcomes are still stored before a
    :class:`ShardExecutionError` is raised.
    """
    if not shard_ids:
        return 0
    max_workers = min(workers, len(shard_ids))
    completed = 0
    failures: list[tuple[int, BaseException]] = []
    pool = ProcessPoolExecutor(
        max_workers=max_workers, initializer=_init_worker, initargs=(spec,)
    )
    try:
        futures = {
            pool.submit(_run_shard, shard_id): shard_id for shard_id in shard_ids
        }
        for future in as_completed(futures):
            shard_id = futures[future]
            try:
                outcome = future.result()
            except Exception as error:  # noqa: BLE001 - collected & re-raised
                failures.append((shard_id, error))
                continue
            store(outcome)
            completed += 1
    finally:
        # On early exit (KeyboardInterrupt, a checkpoint write failing in
        # store()) cancel queued shards instead of silently crawling them
        # to discarded results; shards already running finish and are the
        # only work lost.  A normal exit has nothing queued — no-op.
        pool.shutdown(wait=True, cancel_futures=True)
    if failures:
        failures.sort(key=lambda item: item[0])
        raise ShardExecutionError(failures) from failures[0][1]
    return completed
