"""Lease-based, work-stealing shard execution over on-disk fan-out artifacts.

:class:`~repro.core.engine.StreamingPipeline` already proved that sharding
has zero semantic surface: per-site determinism (site-keyed coverage RNG,
``node_failure_seed`` keyed on the *cluster* assignment) means any
re-grouping of sites reproduces the batch crawl's exact observable
behaviour.  That is precisely the property that makes shards safe to run
in *separate processes* — and, since this revision, safe to run *twice*:
each worker crawls, labels and accumulates a shard completely
independently, serializes the resulting
:class:`~repro.core.engine.ShardState` (the same JSON the checkpoint files
hold), and the parent merges states through the exact same
:meth:`~repro.core.engine.SiftAccumulator.merge` path a sequential run
uses — so the output is bit-identical for every worker count, every retry
count, and every race outcome.

**What moves between processes is paths, not objects.**  The parent
materializes the expensive state exactly once into a
:class:`ShardSliceStore` (one compiled oracle artifact plus one slice file
per pending shard) and a :class:`WorkerSpec` carries nothing but the store
directory, the artifact path and the study config.  A worker's startup
cost is one artifact load; a shard's transfer cost is one slice load —
both measured and shipped back in the :class:`ShardOutcome` overhead
fields.

**Shards are leased, not assigned.**  The previous fan-out handed a
``ProcessPoolExecutor`` a static future per shard; one crashed or hung
worker raised :class:`ShardExecutionError` and lost its in-flight shards
(``BrokenProcessPool`` takes the whole pool with it).  Now the parent
runs its own small scheduler (:func:`run_shards_leased`):

* **Leases with deadlines.**  Workers pull one shard lease at a time over
  a duplex pipe.  A background thread in each worker heartbeats while a
  shard is running; a lease that goes ``lease_seconds`` without a
  heartbeat is declared hung, the worker is killed, and the shard is
  re-queued.
* **Capped jittered retry.**  A failed execution (worker death, lease
  timeout, a transient crawl exception) re-queues the shard with
  exponential backoff plus deterministic jitter
  (:attr:`LeasePolicy.jitter_seed`), up to
  :attr:`LeasePolicy.max_failures` attempts.
* **Quarantine instead of dying.**  A shard that exhausts its attempts is
  quarantined — recorded with its full failure history in the
  :class:`LeaseReport` (and, via the engine, in a durable
  ``quarantine.json``) — and the run *completes*, explicitly degraded,
  instead of raising.  Strict callers (``quarantine=False``) get the old
  :class:`ShardExecutionError` behaviour.
* **Work stealing for stragglers.**  Heartbeats double as progress
  reports: when idle workers exist, the queue is drained, and a lease has
  run ``straggler_factor ×`` the median completed duration, the shard is
  *stolen* — a duplicate execution races the slow worker and the first
  result wins.  This is safe precisely because shard output is
  deterministic: both racers produce byte-identical state, so the gates
  that pin parallel output to sequential output stay enforced.
* **Worker restarts with backoff.**  Dead workers are replaced (up to
  :attr:`LeasePolicy.max_worker_restarts` per run) with exponential
  backoff between spawns, so a crash-looping fleet degrades instead of
  spinning.

**Fault injection is first-class.**  A :class:`~repro.faults.FaultPlan`
riding on the :class:`WorkerSpec` lets chaos tests schedule crashes,
hangs, stragglers and transient exceptions against exact ``(shard,
execution)`` coordinates — execution numbers are 1-based and monotonic
per shard (a retry or a stolen duplicate is a new execution), which makes
an entire chaos run deterministic and therefore comparable, byte for
byte, against a fault-free one.

Design notes carried over from the pool era:

* **The worker unit is a shard, the worker state is a process.**  Each
  worker process builds one :class:`_ShardWorker` (config, compiled
  oracle) at boot and reuses it for every lease, so the label cache stays
  warm across a worker's shards.
* **The parent stores outcomes as they complete**, preserving checkpoint
  semantics: a mid-run crash of the whole fleet loses only in-flight
  shards — everything already returned was checkpointed by the parent and
  resumes from disk.
* **Workers never checkpoint.**  Only the parent touches
  ``checkpoint_dir``, so there is exactly one writer per file and the
  durable atomic-write protocol (:mod:`repro.durable`) has a single
  enforcement point.
* **Cache counters travel with the outcome.**  Hits + misses always
  equals the number of labeled requests; the hit *rate* may differ from
  sequential (each worker warms its own cache) and that is the only
  permitted difference.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pickle
import random
import threading
import time
from dataclasses import dataclass, field, replace
from multiprocessing import connection
from pathlib import Path
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from ..crawler.tranco import RankedSite
    from ..faults import FaultPlan
    from ..webmodel.website import Website
    from .engine import PipelineConfig

__all__ = [
    "LeasePolicy",
    "LeaseReport",
    "ShardOutcome",
    "ShardSlice",
    "ShardSliceStore",
    "WorkerSpec",
    "ShardExecutionError",
    "run_shards_leased",
    "run_shards_parallel",
]


@dataclass(frozen=True)
class ShardOutcome:
    """One shard's result as shipped from a worker back to the parent.

    ``state_json`` is exactly what :meth:`ShardState.to_json` produced in
    the worker — the parent re-hydrates and stores it through the same
    `_store` path a sequential crawl uses, so checkpoints written by a
    parallel run are indistinguishable from sequential ones.

    The overhead fields attribute the worker's wall-clock:
    ``startup_seconds`` is the one-time worker initialization (compiled
    oracle load + pipeline construction), reported with the worker's
    *first* outcome only so the parent can sum without double counting;
    ``transfer_seconds`` is this shard's slice load; ``compute_seconds``
    is the crawl+label+sift itself.

    ``spans`` carries the worker-side trace for this shard as exported
    span dicts — always at least the ``worker.startup`` /
    ``worker.transfer`` / ``worker.compute`` synthetic spans (the parent
    derives the overhead *notes* from these), plus the full in-shard
    span tree when the parent ran with a tracer attached.  The parent
    :meth:`~repro.obs.trace.Tracer.adopt`\\ s them under its fan-out
    span.  ``crawl_digests`` / ``label_digests`` are the per-site
    determinism-ledger fingerprints (``(url, digest)`` pairs) collected
    when the parent runs with a ledger; empty otherwise.
    """

    shard_id: int
    state_json: str
    cache_hits: int
    cache_misses: int
    startup_seconds: float = 0.0
    transfer_seconds: float = 0.0
    compute_seconds: float = 0.0
    spans: tuple = ()
    crawl_digests: tuple = ()
    label_digests: tuple = ()


@dataclass(frozen=True)
class ShardSlice:
    """Everything one shard's crawl needs, loaded from its slice file."""

    shard_id: int
    sites: "list[RankedSite]"
    websites: "list[Website]"
    failed_urls: set[str]

    @property
    def by_url(self) -> dict:
        return {website.url: website for website in self.websites}


class ShardSliceStore:
    """Per-shard site slices on disk — the parent's fan-out unit.

    The parent calls :meth:`materialize` once; each worker then loads only
    the slices of the shards it is actually handed.  Slice files are plain
    pickles (same trust model as the worker fleet itself: the store lives
    in a parent-owned temporary directory for exactly one run).
    """

    MANIFEST = "slices.json"

    def __init__(self, directory: str | Path) -> None:
        self._directory = Path(directory)

    @property
    def directory(self) -> Path:
        return self._directory

    def _slice_path(self, shard_id: int) -> Path:
        return self._directory / f"slice-{shard_id:04d}.pkl"

    def materialize(
        self,
        shard_ids: list[int],
        shard_sites: "list[list[RankedSite]]",
        by_url: dict,
        failed_urls: set[str],
    ) -> int:
        """Write one slice file per pending shard; returns bytes written.

        Each slice carries only its shard's sites, websites and failure
        subset, so per-worker transfer no longer scales with the whole
        web — a worker handed 2 of 13 shards reads ~2/13ths of it.
        """
        self._directory.mkdir(parents=True, exist_ok=True)
        total = 0
        for shard_id in shard_ids:
            sites = shard_sites[shard_id]
            websites = [
                by_url[site.url] for site in sites if site.url in by_url
            ]
            record = ShardSlice(
                shard_id=shard_id,
                sites=sites,
                websites=websites,
                failed_urls={
                    site.url for site in sites if site.url in failed_urls
                },
            )
            data = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
            self._slice_path(shard_id).write_bytes(data)
            total += len(data)
        manifest = {
            "format": 1,
            "shard_ids": sorted(shard_ids),
            "bytes": total,
        }
        (self._directory / self.MANIFEST).write_text(
            json.dumps(manifest, sort_keys=True), encoding="utf-8"
        )
        return total

    def load(self, shard_id: int) -> ShardSlice:
        """Load one shard's slice (worker side)."""
        path = self._slice_path(shard_id)
        try:
            data = path.read_bytes()
        except OSError as error:
            raise FileNotFoundError(
                f"shard slice {path} is missing or unreadable: {error}"
            ) from error
        # A slice unpickles thousands of long-lived objects; same
        # rationale (and same helper) as artifact loading.
        from ..filterlists.compile import gc_paused

        with gc_paused():
            record = pickle.loads(data)
        if record.shard_id != shard_id:
            raise ValueError(
                f"slice file {path} holds shard {record.shard_id}, "
                f"expected {shard_id}"
            )
        return record


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker process needs — as *paths*, not objects.

    ``store_dir`` names the parent's :class:`ShardSliceStore`;
    ``oracle_artifact`` the compiled ``.tsoracle`` the parent wrote from
    its own matcher (so worker decisions are the sequential run's
    decisions by construction).  The spec itself pickles in microseconds,
    which is the whole point: fleet startup no longer re-ships the study.

    ``oracle`` is the compatibility escape hatch for :class:`oracle
    subclasses <repro.filterlists.oracle.FilterListOracle>`: an artifact
    reconstructs the *base* class, which would silently drop overridden
    labeling behavior — so when the engine sees a subclass it ships the
    object itself (the pre-artifact transfer path) and workers use it
    verbatim, keeping worker output identical to sequential for any
    oracle type.

    ``trace`` / ``ledger`` mirror the parent's observability state: with
    ``trace`` the worker activates a local tracer around each shard (so
    the full in-shard span tree ships back), with ``ledger`` the worker
    collects per-site determinism fingerprints.  Both default off — the
    baseline parallel path pays nothing.

    ``fault_plan`` is the chaos hook: workers consult it at the
    ``worker.shard`` site before each execution, so an injected crash,
    hang, straggler or transient exception lands on an exact ``(shard,
    execution)`` coordinate.  ``None`` (the default) costs nothing.
    """

    config: "PipelineConfig"
    shards: int
    store_dir: str
    oracle_artifact: str
    oracle: "object | None" = None
    trace: bool = False
    ledger: bool = False
    fault_plan: "FaultPlan | None" = None


class ShardExecutionError(RuntimeError):
    """One or more shards exhausted their attempts; completed shards kept.

    ``failed_shards`` lists the shards whose work was lost.  With a
    ``checkpoint_dir`` every *completed* shard was already persisted by
    the parent, so re-running the pipeline resumes from those and only
    re-crawls the failed remainder.
    """

    def __init__(self, failures: list[tuple[int, BaseException]]) -> None:
        self.failed_shards = tuple(shard_id for shard_id, _ in failures)
        first = failures[0][1]
        super().__init__(
            f"{len(failures)} shard(s) failed "
            f"(shards {list(self.failed_shards)}): {first!r}; "
            "completed shards were stored and resume from checkpoint"
        )


@dataclass(frozen=True)
class LeasePolicy:
    """Knobs for the lease scheduler; defaults suit production studies.

    Tests and the chaos bench shrink the time constants so faults resolve
    in milliseconds; the *logic* is identical at every scale.
    """

    #: a lease this long without a heartbeat is hung: kill + re-queue.
    lease_seconds: float = 30.0
    #: worker heartbeat period while a shard is executing.
    heartbeat_seconds: float = 0.25
    #: failed executions before a shard is quarantined (the "N" in
    #: "shards that fail N times").
    max_failures: int = 3
    #: exponential retry backoff: base * 2**(failures-1), capped, then
    #: multiplied by a deterministic jitter in [1, 2).
    retry_base_seconds: float = 0.05
    retry_cap_seconds: float = 2.0
    #: steal a running lease once it exceeds
    #: max(straggler_min_seconds, straggler_factor * median completed
    #: duration) — only when workers are idle and the queue is drained.
    straggler_factor: float = 4.0
    straggler_min_seconds: float = 1.5
    #: replacement processes allowed per run (beyond the initial fleet).
    max_worker_restarts: int = 6
    #: backoff between replacement spawns (doubles, capped).
    restart_base_seconds: float = 0.05
    restart_cap_seconds: float = 1.0
    #: True: exhausted shards are quarantined and the run completes
    #: degraded.  False: the old strict behaviour — raise
    #: :class:`ShardExecutionError` once every attempt is spent.
    quarantine: bool = True
    #: seeds retry jitter so a chaos run's schedule is reproducible.
    jitter_seed: int = 0
    #: a worker that has not finished booting by then is replaced.
    ready_timeout_seconds: float = 60.0


@dataclass
class LeaseReport:
    """What the lease scheduler did — the engine folds this into notes.

    ``quarantined`` / ``failures`` map shard ids to their failure-reason
    histories; ``executions`` counts how many executions each shard
    started (1 == clean first attempt).
    """

    completed: int = 0
    leases_granted: int = 0
    retries: int = 0
    steals: int = 0
    steals_won: int = 0
    worker_crashes: int = 0
    worker_hangs: int = 0
    workers_restarted: int = 0
    restart_backoff_seconds: float = 0.0
    quarantined: dict = field(default_factory=dict)
    failures: dict = field(default_factory=dict)
    executions: dict = field(default_factory=dict)

    @property
    def degraded(self) -> bool:
        return bool(self.quarantined)

    def to_notes(self) -> dict:
        """Flat float-valued counters for ``PipelineResult.notes``."""
        return {
            "lease_retries": float(self.retries),
            "leases_stolen": float(self.steals),
            "lease_steals_won": float(self.steals_won),
            "lease_worker_crashes": float(self.worker_crashes),
            "lease_worker_hangs": float(self.worker_hangs),
            "lease_workers_restarted": float(self.workers_restarted),
            "shards_quarantined": float(len(self.quarantined)),
        }

    def quarantine_record(self, max_failures: int) -> dict:
        """The ``quarantine.json`` payload for this report."""
        return {
            "format": 1,
            "max_failures": max_failures,
            "quarantined": [
                {
                    "shard": shard_id,
                    "failures": list(reasons),
                    "executions": self.executions.get(shard_id, 0),
                }
                for shard_id, reasons in sorted(self.quarantined.items())
            ],
        }


class _ShardWorker:
    """A worker process's resident crawl context.

    Wraps a private :class:`StreamingPipeline` (no checkpoint dir — the
    parent owns persistence) whose oracle comes straight from the compiled
    artifact, and exposes exactly one operation: load one shard's slice,
    crawl it, return its serialized state plus the label-cache delta and
    the overhead breakdown.
    """

    def __init__(self, spec: WorkerSpec) -> None:
        from ..filterlists.oracle import FilterListOracle
        from ..obs.ledger import Ledger
        from .engine import StreamingPipeline

        started = time.perf_counter()
        oracle = (
            spec.oracle
            if spec.oracle is not None
            else FilterListOracle.from_artifact(spec.oracle_artifact)
        )
        self._pipeline = StreamingPipeline(
            spec.config,
            shards=spec.shards,
            oracle=oracle,
            # A throwaway ledger switches on per-site digest collection;
            # the digests travel back with each outcome and the *parent's*
            # ledger records the merged chain.
            ledger=Ledger() if spec.ledger else None,
        )
        self._store = ShardSliceStore(spec.store_dir)
        self._trace = spec.trace
        self._startup_seconds = time.perf_counter() - started
        self._startup_reported = False
        self._last_stats = self._stats()

    def _stats(self) -> tuple[int, int]:
        stats = self._pipeline.oracle.cache_stats
        return (stats.hits, stats.misses) if stats is not None else (0, 0)

    def run(self, shard_id: int) -> ShardOutcome:
        from ..obs.trace import Tracer

        # One tracer per shard run: the worker.* synthetic spans always
        # ship (the parent derives its overhead notes from them); the full
        # in-shard span tree only when the parent traces too.
        tracer = Tracer()
        startup_seconds = (
            0.0 if self._startup_reported else self._startup_seconds
        )
        if startup_seconds:
            tracer.add("worker.startup", startup_seconds)
        loaded = time.perf_counter()
        shard_slice = self._store.load(shard_id)
        transfer_seconds = time.perf_counter() - loaded
        tracer.add("worker.transfer", transfer_seconds, shard=shard_id)
        if self._trace:
            with tracer.activate():
                with tracer.span("worker.compute", shard=shard_id) as record:
                    state = self._pipeline._crawl_shard(
                        shard_id,
                        shard_slice.sites,
                        shard_slice.by_url,
                        shard_slice.failed_urls,
                    )
            compute_seconds = record.duration
        else:
            computed = time.perf_counter()
            state = self._pipeline._crawl_shard(
                shard_id,
                shard_slice.sites,
                shard_slice.by_url,
                shard_slice.failed_urls,
            )
            compute_seconds = time.perf_counter() - computed
            tracer.add("worker.compute", compute_seconds, shard=shard_id)
        crawl_digests, label_digests = self._pipeline.take_site_digests()
        hits, misses = self._stats()
        outcome = ShardOutcome(
            shard_id=shard_id,
            state_json=state.to_json(),
            cache_hits=hits - self._last_stats[0],
            cache_misses=misses - self._last_stats[1],
            startup_seconds=startup_seconds,
            transfer_seconds=transfer_seconds,
            compute_seconds=compute_seconds,
            spans=tuple(tracer.export()),
            crawl_digests=crawl_digests,
            label_digests=label_digests,
        )
        self._startup_reported = True
        self._last_stats = (hits, misses)
        return outcome

    def discard_partial(self) -> None:
        """Reset per-shard carry-over after a failed execution.

        A crawl that died mid-shard may have left ledger digests and
        cache-counter deltas behind; draining them here keeps the *next*
        outcome's digests and counters scoped to its own shard, which is
        what the accounting invariants assume.
        """
        self._pipeline.take_site_digests()
        self._last_stats = self._stats()


def _lease_worker_main(index, spec, policy, conn) -> None:
    """Worker process entry point: boot once, then serve leases forever.

    The protocol is tiny and one-directional per message:

    * parent → worker: ``("lease", shard_id, execution)`` or ``("stop",)``
    * worker → parent: ``("ready", index, pid)``, ``("boot-error", index,
      reason)``, ``("beat", index, shard, execution)``, ``("done", index,
      shard, execution, outcome)``, ``("fail", index, shard, execution,
      reason)``

    A background thread heartbeats while an execution is in flight; the
    send lock keeps its pipe writes from interleaving with result sends.
    Fault hooks fire per ``(shard, execution)`` coordinate *before* the
    crawl, so injected faults never leave partial state behind.
    """
    from ..faults import TransientFault
    from ..obs.trace import reset_context

    # Forked children inherit the parent's contextvars — including the
    # span that was active at fork time, whose id would alias into this
    # process's own tracer.  Start from a clean observability context.
    reset_context()
    send_lock = threading.Lock()

    def send(message) -> None:
        try:
            with send_lock:
                conn.send(message)
        except (BrokenPipeError, OSError):
            pass  # the parent is gone; our exit is imminent either way

    current = {"shard": None, "execution": 0, "beating": False}
    stop_beat = threading.Event()

    def heartbeat() -> None:
        while not stop_beat.wait(policy.heartbeat_seconds):
            if current["beating"]:
                send(("beat", index, current["shard"], current["execution"]))

    threading.Thread(
        target=heartbeat, name="lease-heartbeat", daemon=True
    ).start()
    try:
        worker = _ShardWorker(spec)
    except BaseException as error:  # noqa: BLE001 - reported, then exit
        send(("boot-error", index, f"{type(error).__name__}: {error}"))
        return
    send(("ready", index, os.getpid()))
    plan = spec.fault_plan
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message[0] == "stop":
            return
        _, shard_id, execution = message
        fault = (
            plan.at("worker.shard", shard_id, execution)
            if plan is not None
            else None
        )
        if fault is not None and fault.kind == "crash":
            os._exit(70)
        if fault is not None and fault.kind == "hang":
            # Heartbeats stay muted (beating never flips on): the parent
            # sees a silent lease, declares it hung and kills us.  The
            # exit below is only a backstop against enormous deadlines.
            time.sleep(fault.seconds)
            os._exit(71)
        current["shard"] = shard_id
        current["execution"] = execution
        current["beating"] = True
        try:
            if fault is not None and fault.kind == "slow":
                # A straggler, not a failure: sleep *while heartbeating*
                # so the parent steals the shard instead of killing us.
                time.sleep(fault.seconds)
            if fault is not None and fault.kind == "transient":
                raise TransientFault(
                    f"injected transient crawl fault "
                    f"(shard {shard_id}, execution {execution})"
                )
            outcome = worker.run(shard_id)
        except BaseException as error:  # noqa: BLE001 - shipped to parent
            worker.discard_partial()
            send(
                (
                    "fail",
                    index,
                    shard_id,
                    execution,
                    f"{type(error).__name__}: {error}",
                )
            )
        else:
            send(("done", index, shard_id, execution, outcome))
        finally:
            current["beating"] = False


class _LeasedWorker:
    """Parent-side handle on one worker process."""

    __slots__ = (
        "index",
        "process",
        "pipe",
        "ready",
        "lease",
        "assigned_at",
        "last_beat",
        "spawned_at",
    )

    def __init__(self, index, process, pipe, now) -> None:
        self.index = index
        self.process = process
        self.pipe = pipe
        self.ready = False
        self.lease = None  # (shard_id, execution) while one is out
        self.assigned_at = 0.0
        self.last_beat = now
        self.spawned_at = now


def run_shards_leased(
    spec: WorkerSpec,
    shard_ids: list[int],
    workers: int,
    store: Callable[[ShardOutcome], None],
    policy: LeasePolicy | None = None,
) -> LeaseReport:
    """Crawl ``shard_ids`` on a self-healing leased worker fleet.

    ``store`` is invoked in the parent, in completion order, exactly once
    per shard (first result wins when a stolen duplicate races) — the
    engine checkpoints there, so an interrupted run retains every
    finished shard.  Returns a :class:`LeaseReport`; with
    ``policy.quarantine`` (the default) a shard that exhausts
    ``max_failures`` attempts lands in ``report.quarantined`` and the
    call still returns.  With ``quarantine=False`` the same condition
    raises :class:`ShardExecutionError` after the remaining shards
    finish.  :class:`ShardExecutionError` is also raised — in either
    mode — if the worker-restart budget is exhausted with no fleet left.
    """
    policy = policy or LeasePolicy()
    report = LeaseReport()
    if not shard_ids:
        return report
    context = multiprocessing.get_context("fork")
    rng = random.Random(policy.jitter_seed)
    total = set(shard_ids)
    done: set[int] = set()
    executions_started = report.executions
    inflight: dict[int, dict[int, float]] = {}  # shard -> execution -> t0
    stolen: dict[int, int] = {}  # shard -> the stolen execution number
    pending: list[tuple[int, float]] = [(s, 0.0) for s in shard_ids]
    durations: list[float] = []
    live: dict[int, _LeasedWorker] = {}
    next_index = 0
    restarts_used = 0
    respawn_backoff = policy.restart_base_seconds
    next_spawn_at = 0.0
    tick = max(0.01, min(0.05, policy.heartbeat_seconds / 2))

    def unresolved() -> int:
        return len(total) - len(done) - len(report.quarantined)

    def spawn(now: float) -> None:
        nonlocal next_index
        parent_end, child_end = context.Pipe(duplex=True)
        process = context.Process(
            target=_lease_worker_main,
            args=(next_index, spec, policy, child_end),
            name=f"lease-worker-{next_index}",
            daemon=True,
        )
        process.start()
        child_end.close()
        live[next_index] = _LeasedWorker(next_index, process, parent_end, now)
        next_index += 1

    def record_failure(shard_id: int, reason: str, now: float) -> None:
        if shard_id in done or shard_id in report.quarantined:
            return
        history = report.failures.setdefault(shard_id, [])
        history.append(reason)
        if inflight.get(shard_id):
            # A racing duplicate is still out; let it decide the shard.
            return
        if len(history) >= policy.max_failures:
            report.quarantined[shard_id] = list(history)
        else:
            report.retries += 1
            delay = min(
                policy.retry_cap_seconds,
                policy.retry_base_seconds * (2 ** (len(history) - 1)),
            ) * (1.0 + rng.random())
            pending.append((shard_id, now + delay))

    def mark_dead(
        worker: _LeasedWorker, reason: str, now: float, *, hang: bool = False
    ) -> None:
        live.pop(worker.index, None)
        try:
            worker.pipe.close()
        except OSError:
            pass
        if worker.process.is_alive():
            worker.process.kill()
        worker.process.join(timeout=5.0)
        if hang:
            report.worker_hangs += 1
        else:
            report.worker_crashes += 1
        if worker.lease is not None:
            shard_id, execution = worker.lease
            worker.lease = None
            inflight.get(shard_id, {}).pop(execution, None)
            record_failure(shard_id, reason, now)

    def assign(worker: _LeasedWorker, shard_id: int, now: float) -> None:
        execution = executions_started.get(shard_id, 0) + 1
        executions_started[shard_id] = execution
        worker.lease = (shard_id, execution)
        worker.assigned_at = now
        worker.last_beat = now
        inflight.setdefault(shard_id, {})[execution] = now
        report.leases_granted += 1
        try:
            worker.pipe.send(("lease", shard_id, execution))
        except (BrokenPipeError, OSError):
            mark_dead(worker, "worker pipe closed before lease send", now)

    def handle(worker: _LeasedWorker, message, now: float) -> None:
        worker.last_beat = now
        kind = message[0]
        if kind == "ready":
            worker.ready = True
        elif kind == "boot-error":
            mark_dead(worker, f"worker failed to start: {message[2]}", now)
        elif kind == "beat":
            pass  # last_beat update above is the whole point
        elif kind == "done":
            _, _, shard_id, execution, outcome = message
            if worker.lease == (shard_id, execution):
                worker.lease = None
            started = inflight.get(shard_id, {}).pop(execution, None)
            if shard_id in done:
                return  # a duplicate lost the race; discard
            done.add(shard_id)
            report.completed += 1
            if started is not None:
                durations.append(now - started)
            if stolen.get(shard_id) == execution:
                report.steals_won += 1
            store(outcome)
        elif kind == "fail":
            _, _, shard_id, execution, reason = message
            if worker.lease == (shard_id, execution):
                worker.lease = None
            inflight.get(shard_id, {}).pop(execution, None)
            record_failure(shard_id, reason, now)

    try:
        now = time.monotonic()
        for _ in range(min(workers, len(shard_ids))):
            spawn(now)
        while unresolved() > 0:
            now = time.monotonic()
            # -- replace dead workers, with backoff and a budget --------
            if (
                len(live) < min(workers, unresolved())
                and restarts_used < policy.max_worker_restarts
                and now >= next_spawn_at
            ):
                spawn(now)
                restarts_used += 1
                report.workers_restarted += 1
                report.restart_backoff_seconds += respawn_backoff
                next_spawn_at = now + respawn_backoff
                respawn_backoff = min(
                    respawn_backoff * 2.0, policy.restart_cap_seconds
                )
            if not live:
                if restarts_used >= policy.max_worker_restarts:
                    pairs = []
                    for shard_id in sorted(total - done):
                        reasons = report.failures.get(shard_id) or [
                            "worker restart budget exhausted "
                            "before the shard could run"
                        ]
                        pairs.append((shard_id, RuntimeError(reasons[-1])))
                    raise ShardExecutionError(pairs)
                time.sleep(min(tick, max(0.0, next_spawn_at - now)))
                continue
            # -- hand out leases ----------------------------------------
            idle = [
                w for w in live.values() if w.ready and w.lease is None
            ]
            ready_entries = []
            for entry in list(pending):
                shard_id, not_before = entry
                if shard_id in done or shard_id in report.quarantined:
                    pending.remove(entry)
                elif not_before <= now:
                    ready_entries.append(entry)
            while idle and ready_entries:
                entry = ready_entries.pop(0)
                pending.remove(entry)
                assign(idle.pop(0), entry[0], now)
            # -- steal from stragglers ----------------------------------
            if idle and not ready_entries and durations:
                median = sorted(durations)[len(durations) // 2]
                threshold = max(
                    policy.straggler_min_seconds,
                    policy.straggler_factor * median,
                )
                candidates = sorted(
                    (
                        w
                        for w in live.values()
                        if w.lease is not None
                        and w.lease[0] not in stolen
                        and w.lease[0] not in done
                        and now - w.assigned_at > threshold
                    ),
                    key=lambda w: w.assigned_at,
                )
                for thief, victim in zip(idle, candidates):
                    shard_id = victim.lease[0]
                    assign(thief, shard_id, now)
                    if thief.lease is not None:
                        stolen[shard_id] = thief.lease[1]
                        report.steals += 1
            # -- drain worker messages ----------------------------------
            pipes = {w.pipe: w for w in live.values()}
            try:
                readable = connection.wait(list(pipes), timeout=tick)
            except OSError:
                readable = []
            now = time.monotonic()
            for pipe in readable:
                worker = pipes.get(pipe)
                if worker is None or worker.index not in live:
                    continue
                try:
                    while True:
                        message = pipe.recv()
                        handle(worker, message, now)
                        if worker.index not in live or not pipe.poll():
                            break
                except (EOFError, OSError):
                    if worker.index in live:
                        mark_dead(
                            worker, "worker process died (pipe closed)", now
                        )
            # -- liveness: dead processes, hung leases, stuck boots -----
            now = time.monotonic()
            for worker in list(live.values()):
                if not worker.process.is_alive():
                    mark_dead(
                        worker,
                        "worker process exited "
                        f"(code {worker.process.exitcode})",
                        now,
                    )
                elif (
                    worker.lease is not None
                    and now - worker.last_beat > policy.lease_seconds
                ):
                    mark_dead(
                        worker,
                        f"lease deadline expired after "
                        f"{policy.lease_seconds:.1f}s without a heartbeat",
                        now,
                        hang=True,
                    )
                elif (
                    not worker.ready
                    and now - worker.spawned_at > policy.ready_timeout_seconds
                ):
                    mark_dead(
                        worker,
                        "worker did not become ready within "
                        f"{policy.ready_timeout_seconds:.1f}s",
                        now,
                    )
    finally:
        for worker in list(live.values()):
            try:
                worker.pipe.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
            try:
                worker.pipe.close()
            except OSError:
                pass
        for worker in list(live.values()):
            worker.process.join(timeout=1.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join()
        live.clear()
    if report.quarantined and not policy.quarantine:
        pairs = [
            (shard_id, RuntimeError(reasons[-1]))
            for shard_id, reasons in sorted(report.quarantined.items())
        ]
        raise ShardExecutionError(pairs)
    return report


def run_shards_parallel(
    spec: WorkerSpec,
    shard_ids: list[int],
    workers: int,
    store: Callable[[ShardOutcome], None],
    policy: LeasePolicy | None = None,
) -> int:
    """Strict-mode fan-out; returns how many shards completed.

    Compatibility wrapper around :func:`run_shards_leased` preserving the
    historical contract: any shard that exhausts its attempts raises
    :class:`ShardExecutionError` (after the rest finish and are stored)
    instead of quarantining.  Transient failures still get the lease
    scheduler's retries — strictness is about the *end state*, not about
    giving up on the first wobble.
    """
    strict = replace(policy or LeasePolicy(), quarantine=False)
    report = run_shards_leased(spec, shard_ids, workers, store, policy=strict)
    return report.completed
