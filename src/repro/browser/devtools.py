"""DevTools-style network events.

The paper's purpose-built Chrome extension listens to two DevTools network
events and stores their payloads (§3, Figure 2):

* ``requestWillBeSent`` — request id, top-level URL, frame URL, resource
  type, headers, timestamp and the initiator ``call_stack``;
* ``responseReceived`` — response headers and body.

We model exactly those payloads.  The analysis pipeline consumes
:class:`RequestWillBeSent`; responses exist for schema fidelity and for the
storage round-trip tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .callstack import CallStack

__all__ = ["RequestWillBeSent", "ResponseReceived", "next_request_id"]


_REQUEST_COUNTER = {"value": 0}


def next_request_id() -> str:
    """Monotonic request ids in the DevTools ``"1000.42"`` style."""
    _REQUEST_COUNTER["value"] += 1
    return f"1000.{_REQUEST_COUNTER['value']}"


@dataclass(frozen=True)
class RequestWillBeSent:
    """One captured HTTP request, as the crawling extension stores it."""

    request_id: str
    url: str
    top_level_url: str
    frame_url: str
    resource_type: str
    timestamp: float
    call_stack: CallStack | None = None
    headers: dict[str, str] = field(default_factory=dict)
    method: str = "GET"

    @property
    def script_initiated(self) -> bool:
        """Paper §3: only script-initiated requests enter the analysis."""
        return self.call_stack is not None

    @property
    def initiator_script(self) -> str:
        if self.call_stack is None:
            raise ValueError(f"request {self.request_id} is not script-initiated")
        return self.call_stack.initiator_script

    @property
    def initiator_method(self) -> str:
        if self.call_stack is None:
            raise ValueError(f"request {self.request_id} is not script-initiated")
        return self.call_stack.initiator_method

    def to_dict(self) -> dict:
        return {
            "request_id": self.request_id,
            "url": self.url,
            "top_level_url": self.top_level_url,
            "frame_url": self.frame_url,
            "resource_type": self.resource_type,
            "timestamp": self.timestamp,
            "call_stack": self.call_stack.to_dict() if self.call_stack else None,
            "headers": dict(self.headers),
            "method": self.method,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RequestWillBeSent":
        stack_data = data.get("call_stack")
        return cls(
            request_id=data["request_id"],
            url=data["url"],
            top_level_url=data["top_level_url"],
            frame_url=data.get("frame_url", data["top_level_url"]),
            resource_type=data.get("resource_type", "other"),
            timestamp=float(data.get("timestamp", 0.0)),
            call_stack=CallStack.from_dict(stack_data) if stack_data else None,
            headers=dict(data.get("headers", {})),
            method=data.get("method", "GET"),
        )


@dataclass(frozen=True)
class ResponseReceived:
    """The paired HTTP response event."""

    request_id: str
    url: str
    status: int
    mime_type: str
    timestamp: float
    headers: dict[str, str] = field(default_factory=dict)
    body_size: int = 0

    def to_dict(self) -> dict:
        return {
            "request_id": self.request_id,
            "url": self.url,
            "status": self.status,
            "mime_type": self.mime_type,
            "timestamp": self.timestamp,
            "headers": dict(self.headers),
            "body_size": self.body_size,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ResponseReceived":
        return cls(
            request_id=data["request_id"],
            url=data["url"],
            status=int(data.get("status", 200)),
            mime_type=data.get("mime_type", "application/octet-stream"),
            timestamp=float(data.get("timestamp", 0.0)),
            headers=dict(data.get("headers", {})),
            body_size=int(data.get("body_size", 0)),
        )
