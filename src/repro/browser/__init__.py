"""Instrumented-browser substrate.

Simulates the paper's Chrome + DevTools + purpose-built extension setup:
deterministic page loads over the synthetic web, ``requestWillBeSent`` /
``responseReceived`` events with full (async-aware) call stacks, blocking
policies for treatment/control experiments, and the automated breakage
grader used for Table 3.
"""

from .breakage import (
    BreakageAnalyzer,
    BreakageLevel,
    BreakageReport,
    assess_breakage,
)
from .callstack import CallFrame, CallStack
from .devtools import RequestWillBeSent, ResponseReceived, next_request_id
from .engine import BlockingPolicy, BrowserEngine, PageLoad
from .extension import CaptureStats, CrawlExtension, EventSink

__all__ = [
    "CallFrame",
    "CallStack",
    "RequestWillBeSent",
    "ResponseReceived",
    "next_request_id",
    "BlockingPolicy",
    "BrowserEngine",
    "PageLoad",
    "CrawlExtension",
    "CaptureStats",
    "EventSink",
    "BreakageLevel",
    "BreakageReport",
    "assess_breakage",
    "BreakageAnalyzer",
]
