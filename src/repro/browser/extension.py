"""The crawler's "purpose-built Chrome extension" (paper §3, Figure 2).

The real study attached an extension that subscribed to the DevTools
``requestWillBeSent`` and ``responseReceived`` events and wrote their
payloads to a database.  This module reproduces that capture layer as an
observer object: the engine produces events, the extension filters and
forwards them to whatever sink the crawler wires in (usually a
:class:`~repro.crawler.storage.RequestDatabase`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

from .devtools import RequestWillBeSent, ResponseReceived
from .engine import PageLoad

__all__ = ["EventSink", "CaptureStats", "CrawlExtension"]


class EventSink(Protocol):
    """Anything that can persist captured events."""

    def add_request(self, event: RequestWillBeSent) -> None: ...

    def add_response(self, event: ResponseReceived) -> None: ...


@dataclass
class CaptureStats:
    """Bookkeeping the extension keeps during a crawl."""

    pages: int = 0
    requests_seen: int = 0
    responses_seen: int = 0
    script_initiated: int = 0
    dropped_non_script: int = 0


class CrawlExtension:
    """Captures DevTools events during page loads and forwards them.

    ``keep_non_script`` controls whether parser-initiated requests are
    stored at all.  The paper stores everything and filters during
    labeling; that is the default here too, but dropping at capture time is
    supported for storage-constrained crawls (an explicit knob rather than
    silent behaviour).
    """

    def __init__(
        self,
        sink: EventSink,
        *,
        keep_non_script: bool = True,
        on_request: Callable[[RequestWillBeSent], None] | None = None,
    ) -> None:
        self._sink = sink
        self._keep_non_script = keep_non_script
        self._on_request = on_request
        self.stats = CaptureStats()

    # -- DevTools listeners -------------------------------------------------
    def request_will_be_sent(self, event: RequestWillBeSent) -> None:
        self.stats.requests_seen += 1
        if event.script_initiated:
            self.stats.script_initiated += 1
        elif not self._keep_non_script:
            self.stats.dropped_non_script += 1
            return
        self._sink.add_request(event)
        if self._on_request is not None:
            self._on_request(event)

    def response_received(self, event: ResponseReceived) -> None:
        self.stats.responses_seen += 1
        self._sink.add_response(event)

    # -- convenience ----------------------------------------------------------
    def capture_page(self, page: PageLoad) -> None:
        """Feed one simulated page load through both listeners."""
        self.stats.pages += 1
        for request in page.requests:
            self.request_will_be_sent(request)
        for response in page.responses:
            self.response_received(response)
