"""JavaScript call-stack model, matching the DevTools ``Runtime.StackTrace``.

The paper's crawler records, for every script-initiated network request, a
``call_stack`` object "containing the initiator information and the stack
trace".  For asynchronous JavaScript "the stack trace that preceded the
request is prepended in the stack" — DevTools represents this as a chain of
``parent`` stack traces; flattening that chain gives the full ancestry the
labeler and the call-stack analysis (Figure 5) operate on.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..webmodel.resources import Frame

__all__ = ["CallFrame", "CallStack", "Frame"]


@dataclass(frozen=True, slots=True)
class CallFrame:
    """One stack frame as DevTools reports it."""

    url: str
    function_name: str
    line_number: int = 0
    column_number: int = 0

    @property
    def script_url(self) -> str:
        return self.url

    @property
    def method(self) -> str:
        return self.function_name

    def as_frame(self) -> Frame:
        return Frame(script_url=self.url, method=self.function_name)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return f"{self.url}@{self.function_name}()"


@dataclass(frozen=True)
class CallStack:
    """A stack trace, optionally chained to the async stack that spawned it.

    ``frames[0]`` is the innermost frame — the method that actually issued
    the request (the *initiator*).  ``parent`` is the stack captured when
    the asynchronous task was scheduled (``setTimeout``, promise, XHR
    callback); per the paper it is prepended, i.e. its frames extend the
    ancestry below ours.
    """

    frames: tuple[CallFrame, ...]
    parent: "CallStack | None" = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.frames and self.parent is None:
            raise ValueError("a call stack needs at least one frame")

    @property
    def initiator(self) -> CallFrame:
        """The frame that issued the request (top of the innermost stack)."""
        if self.frames:
            return self.frames[0]
        assert self.parent is not None
        return self.parent.initiator

    @property
    def initiator_script(self) -> str:
        return self.initiator.url

    @property
    def initiator_method(self) -> str:
        return self.initiator.function_name

    def flattened(self) -> tuple[CallFrame, ...]:
        """All frames, innermost first, across the async parent chain."""
        out: list[CallFrame] = list(self.frames)
        parent = self.parent
        while parent is not None:
            out.extend(parent.frames)
            parent = parent.parent
        return tuple(out)

    def scripts(self) -> tuple[str, ...]:
        """Unique script URLs in ancestry order (innermost first)."""
        seen: set[str] = set()
        out: list[str] = []
        for frame in self.flattened():
            if frame.url not in seen:
                seen.add(frame.url)
                out.append(frame.url)
        return tuple(out)

    @property
    def depth(self) -> int:
        return len(self.flattened())

    def to_dict(self) -> dict:
        """Serialise to the JSON shape DevTools uses."""
        data: dict = {
            "callFrames": [
                {
                    "url": f.url,
                    "functionName": f.function_name,
                    "lineNumber": f.line_number,
                    "columnNumber": f.column_number,
                }
                for f in self.frames
            ]
        }
        if self.description:
            data["description"] = self.description
        if self.parent is not None:
            data["parent"] = self.parent.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "CallStack":
        frames = tuple(
            CallFrame(
                url=f.get("url", ""),
                function_name=f.get("functionName", ""),
                line_number=int(f.get("lineNumber", 0)),
                column_number=int(f.get("columnNumber", 0)),
            )
            for f in data.get("callFrames", ())
        )
        parent_data = data.get("parent")
        parent = cls.from_dict(parent_data) if parent_data else None
        return cls(
            frames=frames,
            parent=parent,
            description=data.get("description", ""),
        )

    @classmethod
    def from_frames(
        cls,
        frames: tuple[Frame, ...] | list[Frame],
        async_frames: tuple[Frame, ...] | list[Frame] = (),
    ) -> "CallStack":
        """Build a stack from webmodel frames; async frames become parent."""
        call_frames = tuple(
            CallFrame(url=f.script_url, function_name=f.method) for f in frames
        )
        parent = None
        if async_frames:
            parent = cls(
                frames=tuple(
                    CallFrame(url=f.script_url, function_name=f.method)
                    for f in async_frames
                ),
                description="async",
            )
        return cls(frames=call_frames, parent=parent)
