"""Simulated browser: deterministic page loads over the synthetic web.

The engine plays the role of Chrome in the paper's infrastructure: given a
:class:`~repro.webmodel.website.Website`, it "loads" the page — executing
every script method invocation the generator planned — and emits
DevTools-style events.  It also accepts a :class:`BlockingPolicy`, which is
how the breakage analysis (Table 3), surrogate scripts and guards (§5) are
evaluated: the policy suppresses scripts, methods or individual invocations
and the engine reports what broke.

Determinism: an engine seed fixes which low-coverage methods are observed,
so a crawl is reproducible, while *different* engine seeds model the
coverage gaps of dynamic analysis the paper warns about.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from ..stablehash import stable_hash
from ..webmodel.resources import Invocation, MethodSpec, ScriptSpec
from ..webmodel.website import Website
from .callstack import CallStack
from .devtools import RequestWillBeSent, ResponseReceived, next_request_id

__all__ = ["BlockingPolicy", "PageLoad", "BrowserEngine"]

#: A guard predicate: (script_url, method_name, invocation args) -> block?
GuardPredicate = Callable[[str, str, dict[str, str]], bool]

_PAGE_LOAD_SECONDS = 10.0  # average page-load time reported in §3
_POST_LOAD_WAIT_SECONDS = 10.0  # crawler waits 10 extra seconds


@dataclass(frozen=True)
class BlockingPolicy:
    """What a content blocker removes during a page load.

    ``blocked_scripts`` models script-level filter rules; ``removed_methods``
    models a surrogate script with tracking methods stripped;
    ``guards`` models runtime predicates that veto individual invocations
    of a mixed method (paper §5, "Blocking mixed methods").
    """

    blocked_scripts: frozenset[str] = frozenset()
    removed_methods: frozenset[tuple[str, str]] = frozenset()
    guards: tuple[tuple[str, str, GuardPredicate], ...] = ()

    @classmethod
    def none(cls) -> "BlockingPolicy":
        return cls()

    def blocks_invocation(
        self, script_url: str, method: str, args: dict[str, str]
    ) -> bool:
        if script_url in self.blocked_scripts:
            return True
        if (script_url, method) in self.removed_methods:
            return True
        for guard_script, guard_method, predicate in self.guards:
            if guard_script == script_url and guard_method == method:
                if predicate(script_url, method, args):
                    return True
        return False


@dataclass
class PageLoad:
    """Everything one crawl of one landing page produced."""

    website: Website
    requests: list[RequestWillBeSent] = field(default_factory=list)
    responses: list[ResponseReceived] = field(default_factory=list)
    #: invocations suppressed by the blocking policy, for experiment audits.
    blocked_invocations: list[tuple[str, str]] = field(default_factory=list)
    #: feature name -> works?, under the applied policy.
    functionality: dict[str, bool] = field(default_factory=dict)
    load_time: float = _PAGE_LOAD_SECONDS

    @property
    def script_initiated_requests(self) -> list[RequestWillBeSent]:
        return [r for r in self.requests if r.script_initiated]

    def broken_features(self) -> list[str]:
        return [name for name, works in self.functionality.items() if not works]


class BrowserEngine:
    """Deterministic page-load simulator with DevTools instrumentation.

    ``forced_execution`` models a forced-execution framework (the paper's
    §5 limitation cites J-Force): every planned method invocation runs
    regardless of its dynamic coverage, eliminating the observation gaps
    that make naive surrogate generation risky.
    """

    def __init__(self, seed: int = 1729, *, forced_execution: bool = False) -> None:
        self._seed = seed
        self._forced = forced_execution
        self._clock = 0.0

    def _coverage_rng(self, site_url: str, script_url: str, method: str) -> random.Random:
        # stable_hash, not hash(): coverage observations must be identical
        # across processes or a checkpointed crawl resumed after a restart
        # would see different page behaviour than the shards already done.
        return random.Random(
            stable_hash(self._seed, site_url, script_url, method)
        )

    def load(
        self, website: Website, policy: BlockingPolicy | None = None
    ) -> PageLoad:
        """Load one landing page and return the captured events.

        The crawl is *stateless*: nothing persists between loads (the paper
        clears cookies and local state between consecutive crawls), so every
        call starts from the same planned behaviour.
        """
        policy = policy or BlockingPolicy.none()
        page = PageLoad(website=website)
        timestamp = self._clock
        self._clock += _PAGE_LOAD_SECONDS + _POST_LOAD_WAIT_SECONDS

        # Parser-initiated fetches: the document and each external script.
        # These carry no call stack, and §3 excludes them from analysis —
        # keeping them in the event stream exercises that exclusion.
        page.requests.append(
            self._emit(website.url, website, timestamp, "document", None, page)
        )
        ordered_invocations: list[tuple[ScriptSpec, MethodSpec, Invocation]] = []
        for script in website.scripts:
            if script.kind.value == "external":
                page.requests.append(
                    self._emit(
                        script.url, website, timestamp, "script", None, page
                    )
                )
            for method in script.methods:
                rng = self._coverage_rng(website.url, script.url, method.name)
                for invocation in method.invocations:
                    if invocation.site != website.url:
                        continue
                    observed = self._forced or (
                        method.coverage >= 1.0 or rng.random() <= method.coverage
                    )
                    if not observed:
                        continue  # dynamic analysis never observed this path
                    ordered_invocations.append((script, method, invocation))

        ordered_invocations.sort(key=lambda item: item[2].sequence)
        step = _PAGE_LOAD_SECONDS / (len(ordered_invocations) + 1)
        for index, (script, method, invocation) in enumerate(ordered_invocations):
            if policy.blocks_invocation(script.url, method.name, invocation.args):
                page.blocked_invocations.append((script.url, method.name))
                continue
            stack = self._build_stack(script, method, invocation)
            at = timestamp + step * (index + 1)
            for planned in invocation.requests:
                event = self._emit(
                    planned.url,
                    website,
                    at,
                    planned.resource_type,
                    stack,
                    page,
                )
                page.requests.append(event)

        page.functionality = website.functionality_status(
            blocked_scripts=policy.blocked_scripts,
            removed_methods=policy.removed_methods,
        )
        return page

    def _build_stack(
        self, script: ScriptSpec, method: MethodSpec, invocation: Invocation
    ) -> CallStack:
        from ..webmodel.resources import Frame

        frames = (Frame(script.url, method.name),) + tuple(invocation.caller_chain)
        stack = CallStack.from_frames(frames, invocation.async_chain)
        if method.line or method.column:
            # DevTools reports source positions; anonymous functions are
            # only distinguishable through them.
            from .callstack import CallFrame

            top = CallFrame(
                url=script.url,
                function_name=method.name,
                line_number=method.line,
                column_number=method.column,
            )
            stack = CallStack(
                frames=(top,) + stack.frames[1:], parent=stack.parent
            )
        return stack

    def _emit(
        self,
        url: str,
        website: Website,
        timestamp: float,
        resource_type: str,
        stack: CallStack | None,
        page: PageLoad,
    ) -> RequestWillBeSent:
        request_id = next_request_id()
        event = RequestWillBeSent(
            request_id=request_id,
            url=url,
            top_level_url=website.url,
            frame_url=website.url,
            resource_type=resource_type,
            timestamp=timestamp,
            call_stack=stack,
            headers={"User-Agent": "ReproChrome/79.0.3945.79"},
        )
        page.responses.append(
            ResponseReceived(
                request_id=request_id,
                url=url,
                status=200,
                mime_type=_mime_for(resource_type),
                timestamp=timestamp + 0.05,
                headers={"Server": "synthetic-web"},
                body_size=512,
            )
        )
        return event


def _mime_for(resource_type: str) -> str:
    return {
        "document": "text/html",
        "script": "application/javascript",
        "stylesheet": "text/css",
        "image": "image/png",
        "font": "font/woff2",
        "media": "video/mp4",
        "xmlhttprequest": "application/json",
        "ping": "text/plain",
    }.get(resource_type, "application/octet-stream")
