"""Functionality-breakage analysis (paper §5, Table 3).

The paper manually loaded a sample of websites with (treatment) and without
(control) blocking the mixed scripts TrackerSift found, and graded the
damage:

* **major** — core functionality broken (search bar, menu, images, page
  navigation, page load …),
* **minor** — secondary functionality broken (comments/reviews, media
  widgets, video player, icons …),
* **none** — treatment and control behave the same (missing ads are
  explicitly *not* breakage).

Our websites carry an explicit functionality model, so the comparison is
automated: load control, load treatment, diff the feature status maps.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..webmodel.website import FunctionalityTier, Website
from .engine import BlockingPolicy, BrowserEngine

__all__ = ["BreakageLevel", "BreakageReport", "assess_breakage", "grade_breakage", "BreakageAnalyzer"]


class BreakageLevel(str, Enum):
    """The paper's three-way severity grading."""

    MAJOR = "major"
    MINOR = "minor"
    NONE = "none"


@dataclass(frozen=True)
class BreakageReport:
    """Outcome of one treatment/control comparison."""

    website: str
    blocked_scripts: tuple[str, ...]
    level: BreakageLevel
    broken_core: tuple[str, ...]
    broken_secondary: tuple[str, ...]
    #: requests removed by the treatment (tracking *and* functional).
    requests_removed: int
    tracking_requests_removed: int

    @property
    def comment(self) -> str:
        """A Table 3-style human-readable description of the damage."""
        if self.level is BreakageLevel.NONE:
            return "no visible functionality breakage"
        broken = list(self.broken_core) + list(self.broken_secondary)
        if "page load" in self.broken_core:
            return "page did not load"
        if len(broken) == 1:
            return f"{broken[0]} missing"
        return f"{', '.join(broken[:-1])} and {broken[-1]} missing"


def grade_breakage(
    control: dict[str, bool],
    treatment: dict[str, bool],
    website: Website,
) -> tuple[BreakageLevel, tuple[str, ...], tuple[str, ...]]:
    tiers = {f.name: f.tier for f in website.functionalities}
    broken = [
        name
        for name, works in treatment.items()
        if not works and control.get(name, True)
    ]
    core = tuple(n for n in broken if tiers.get(n) is FunctionalityTier.CORE)
    secondary = tuple(
        n for n in broken if tiers.get(n) is FunctionalityTier.SECONDARY
    )
    if core:
        return BreakageLevel.MAJOR, core, secondary
    if secondary:
        return BreakageLevel.MINOR, core, secondary
    return BreakageLevel.NONE, (), ()


def assess_breakage(
    website: Website,
    blocked_scripts: frozenset[str],
    *,
    engine: BrowserEngine | None = None,
) -> BreakageReport:
    """Compare a control load against a treatment load with blocking."""
    engine = engine or BrowserEngine()
    control = engine.load(website)
    treatment = engine.load(
        website, policy=BlockingPolicy(blocked_scripts=blocked_scripts)
    )
    level, core, secondary = grade_breakage(
        control.functionality, treatment.functionality, website
    )
    removed = len(control.script_initiated_requests) - len(
        treatment.script_initiated_requests
    )
    tracking_removed = _tracking_delta(website, blocked_scripts)
    return BreakageReport(
        website=website.url,
        blocked_scripts=tuple(sorted(blocked_scripts)),
        level=level,
        broken_core=core,
        broken_secondary=secondary,
        requests_removed=removed,
        tracking_requests_removed=tracking_removed,
    )


def _tracking_delta(website: Website, blocked: frozenset[str]) -> int:
    count = 0
    for script in website.scripts:
        if script.url not in blocked:
            continue
        tracking, _ = script.request_counts()
        count += tracking
    return count


class BreakageAnalyzer:
    """Batch treatment/control analysis over many sites."""

    def __init__(self, engine: BrowserEngine | None = None) -> None:
        self._engine = engine or BrowserEngine()

    def analyze(
        self, cases: list[tuple[Website, frozenset[str]]]
    ) -> list[BreakageReport]:
        return [
            assess_breakage(site, blocked, engine=self._engine)
            for site, blocked in cases
        ]

    def summary(self, reports: list[BreakageReport]) -> dict[BreakageLevel, int]:
        counts = {level: 0 for level in BreakageLevel}
        for report in reports:
            counts[report.level] += 1
        return counts
