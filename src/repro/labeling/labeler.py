"""Labeling stage: apply the filter-list oracle to the crawled requests.

Paper §3 ("Labeling"): every *script-initiated* network request is matched
against EasyList and EasyPrivacy; matches are tracking, the rest are
functional.  Non-script-initiated requests "can not be trivially classified
... we exclude them from our analysis".

The labeler also implements the paper's ancestral propagation: because the
captured call stack (with async stacks prepended) lists every ancestral
script that led to a request, each labeled request records its full script
ancestry, and the participation index exposes per-script tracking /
functional involvement for the call-stack analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..browser.callstack import CallStack
from ..browser.devtools import RequestWillBeSent
from ..crawler.storage import RequestDatabase
from ..filterlists.oracle import FilterListOracle, Label
from ..filterlists.rules import ResourceType
from ..urlkit import URLError, hostname, registrable_domain
from ..urlkit.dns import CnameResolver, DnsError

__all__ = ["AnalyzedRequest", "LabeledCrawl", "RequestLabeler"]


@dataclass(frozen=True)
class AnalyzedRequest:
    """One labeled, attribution-ready request.

    Carries every key the hierarchy needs: the target's registrable domain
    and hostname, and the initiator script/method from the call stack.
    """

    url: str
    label: Label
    domain: str
    hostname: str
    script: str
    method: str
    page: str
    resource_type: str
    ancestry: tuple[str, ...]
    #: flattened (script, method) frames, innermost first — the raw stack
    #: snapshot the call-stack analysis (Figure 5) consumes.
    frames: tuple[tuple[str, str], ...] = ()
    matched_rule: str = ""
    matched_list: str = ""

    @property
    def is_tracking(self) -> bool:
        return self.label is Label.TRACKING

    @property
    def method_key(self) -> tuple[str, str]:
        """Method identity: methods are scoped to their script."""
        return (self.script, self.method)


@dataclass
class LabeledCrawl:
    """The full labeled dataset plus exclusion accounting."""

    requests: list[AnalyzedRequest] = field(default_factory=list)
    excluded_non_script: int = 0
    excluded_unparseable: int = 0
    #: script URL -> (tracking, functional) request participation counts,
    #: counting every request whose *ancestry* (not just initiator)
    #: contains the script — the paper's ancestral label propagation.
    participation: dict[str, list[int]] = field(default_factory=dict)

    @property
    def tracking_count(self) -> int:
        return sum(1 for r in self.requests if r.is_tracking)

    @property
    def functional_count(self) -> int:
        return len(self.requests) - self.tracking_count

    def script_participation(self, script_url: str) -> tuple[int, int]:
        entry = self.participation.get(script_url)
        if entry is None:
            return (0, 0)
        return (entry[0], entry[1])


class RequestLabeler:
    """Applies the oracle and builds attribution keys for every request.

    ``resolver`` enables CNAME uncloaking (the Brave / uBlock-Origin-on-
    Firefox defence): before matching, the request host is replaced by its
    canonical DNS name, so ``||tracker.example^`` rules catch requests to
    first-party aliases.  Attribution keys (domain/hostname) stay on the
    *observed* host — the measurement reports what the browser saw.
    """

    def __init__(
        self,
        oracle: FilterListOracle | None = None,
        *,
        propagate_ancestry: bool = True,
        resolver: CnameResolver | None = None,
        anonymous_by_position: bool = False,
    ) -> None:
        self._oracle = oracle or FilterListOracle()
        self._propagate = propagate_ancestry
        self._resolver = resolver
        # Paper §5 limitation: "our method-level analysis does not
        # distinguish between different anonymous functions ... can be
        # addressed by using the line and column number information".
        # This flag turns that fix on.
        self._anonymous_by_position = anonymous_by_position

    def _matching_url(self, url: str, host: str) -> str:
        """The URL used for rule matching (uncloaked when configured)."""
        if self._resolver is None:
            return url
        try:
            canonical = self._resolver.canonical_name(host)
        except DnsError:
            return url
        if canonical == host:
            return url
        return url.replace(f"//{host}", f"//{canonical}", 1)

    @property
    def oracle(self) -> FilterListOracle:
        return self._oracle

    def label_event(self, event: RequestWillBeSent) -> AnalyzedRequest | None:
        """Label one event; ``None`` when it is excluded from analysis."""
        if not event.script_initiated:
            return None
        prepared = self._prepare(event)
        if prepared is None:
            return None
        _, host, domain, resource_type, match_url = prepared
        labeled = self._oracle.label_request(
            match_url,
            resource_type=resource_type,
            page_url=event.top_level_url,
        )
        return self._finish(event, host, domain, labeled)

    def _prepare(
        self, event: RequestWillBeSent
    ) -> tuple[RequestWillBeSent, str, str, ResourceType, str] | None:
        """Everything about an event that must be known *before* the
        oracle is consulted; ``None`` when the event is unparseable."""
        try:
            host = hostname(event.url)
        except URLError:
            return None
        domain = registrable_domain(host)
        if domain is None:
            # IP literals / bare public suffixes have no eTLD+1; the paper's
            # domain granularity cannot hold them.
            return None
        resource_type = _resource_type(event.resource_type)
        match_url = self._matching_url(event.url, host)
        return (event, host, domain, resource_type, match_url)

    def _finish(
        self,
        event: RequestWillBeSent,
        host: str,
        domain: str,
        labeled,
    ) -> AnalyzedRequest:
        """Assemble the analyzed request from an oracle verdict."""
        stack: CallStack = event.call_stack  # type: ignore[assignment]
        ancestry = stack.scripts() if self._propagate else (stack.initiator_script,)
        frames = tuple((f.url, f.function_name) for f in stack.flattened())
        method = stack.initiator_method
        if self._anonymous_by_position and method in ("", "anonymous"):
            initiator = stack.initiator
            method = (
                f"anonymous@L{initiator.line_number}:C{initiator.column_number}"
            )
        return AnalyzedRequest(
            url=event.url,
            label=labeled.label,
            domain=domain,
            hostname=host,
            script=stack.initiator_script,
            method=method,
            page=event.top_level_url,
            resource_type=event.resource_type,
            ancestry=ancestry,
            frames=frames,
            matched_rule=labeled.matched_rule,
            matched_list=labeled.matched_list,
        )

    def iter_labeled(
        self,
        events: Iterable[RequestWillBeSent],
        *,
        counters: LabeledCrawl,
        batch_size: int = 256,
    ) -> Iterator[AnalyzedRequest]:
        """Label an event stream, yielding each analyzed request.

        Exclusion tallies and the participation index accumulate into
        ``counters`` (its ``requests`` list is *not* appended to — the
        caller decides whether to retain requests at all).  This is the
        streaming engine's entry point: one pass, nothing but the current
        chunk materialized.

        Oracle consultations drain through
        :meth:`FilterListOracle.label_request_many` in chunks of
        ``batch_size``, amortizing decision-cache lock rounds across the
        chunk.  Events are prepared, decided, and yielded strictly in
        stream order, and the batch path's cache accounting is exactly
        the sequential loop's, so labels, attribution, and the
        ``label_cache_hits``/``misses`` pipeline notes are byte-identical
        to per-event labeling.
        """
        chunk: list[tuple[RequestWillBeSent, str, str, ResourceType, str]] = []
        for event in events:
            if not event.script_initiated:
                counters.excluded_non_script += 1
                continue
            prepared = self._prepare(event)
            if prepared is None:
                counters.excluded_unparseable += 1
                continue
            chunk.append(prepared)
            if len(chunk) >= batch_size:
                yield from self._drain(chunk, counters)
                chunk = []
        if chunk:
            yield from self._drain(chunk, counters)

    def _drain(
        self,
        chunk: list[tuple[RequestWillBeSent, str, str, ResourceType, str]],
        counters: LabeledCrawl,
    ) -> Iterator[AnalyzedRequest]:
        """Decide one prepared chunk through the oracle's batch path and
        yield its analyzed requests, updating participation per event."""
        labeled = self._oracle.label_request_many(
            (match_url, resource_type, event.top_level_url)
            for event, _host, _domain, resource_type, match_url in chunk
        )
        for (event, host, domain, _resource_type, _match_url), verdict in zip(
            chunk, labeled
        ):
            analyzed = self._finish(event, host, domain, verdict)
            index = 0 if analyzed.is_tracking else 1
            for script in analyzed.ancestry:
                entry = counters.participation.setdefault(script, [0, 0])
                entry[index] += 1
            yield analyzed

    def label_events(
        self, events: Iterable[RequestWillBeSent]
    ) -> LabeledCrawl:
        """Label an event stream, retaining every analyzed request."""
        crawl = LabeledCrawl()
        crawl.requests.extend(self.iter_labeled(events, counters=crawl))
        return crawl

    def label_crawl(self, database: RequestDatabase) -> LabeledCrawl:
        """Label a whole crawl database."""
        return self.label_events(database.iter_requests())


def _resource_type(name: str) -> ResourceType:
    try:
        return ResourceType(name)
    except ValueError:
        return ResourceType.OTHER
