"""Request labeling: the filter-list oracle applied to crawled events,
with ancestral-script propagation through call stacks."""

from .labeler import AnalyzedRequest, LabeledCrawl, RequestLabeler

__all__ = ["AnalyzedRequest", "LabeledCrawl", "RequestLabeler"]
