"""The one sanctioned runtime-output channel for library code.

``src/repro`` is a library first: modules under it must not scatter
naked ``print`` calls (a lint in ``scripts/lint_prints.py`` enforces
this).  Long-running entry points that legitimately talk to an operator
— the serve front ends, the supervisor — route through :func:`say`,
which keeps output suppressible (tests, embedding) and flushed (these
messages are progress markers around blocking calls, so they must not
sit in a buffer while the process serves).
"""

from __future__ import annotations

import sys
import threading

__all__ = ["say", "quiet"]

_lock = threading.Lock()
_quiet = False


def quiet(enabled: bool = True) -> None:
    """Globally suppress :func:`say` output (embedding / tests)."""
    global _quiet
    _quiet = enabled


def say(message: str) -> None:
    """Write one operator-facing line to stdout, flushed."""
    if _quiet:
        return
    with _lock:
        sys.stdout.write(message + "\n")
        sys.stdout.flush()
