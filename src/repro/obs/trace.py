"""Structured tracing: lightweight spans over the monotonic clock.

A :class:`Tracer` collects :class:`SpanRecord` objects — named, timed,
attribute-carrying intervals with parent/child nesting.  Instrumented
code never holds a tracer reference: it calls the module-level
:func:`span` context manager, which resolves the *active* tracer through
a :mod:`contextvars` variable (so nesting follows threads and asyncio
tasks correctly) and is a cheap no-op when no tracer is active — the
engine, the artifact compiler and the serve layer all stay instrumented
at zero cost until someone attaches a tracer.

Spans cross process boundaries as plain dicts: a shard worker runs its
own tracer, ships :meth:`Tracer.export` output back with its
:class:`~repro.core.parallel.ShardOutcome`, and the parent
:meth:`Tracer.adopt`\\ s the records under its fan-out span — ids are
remapped on adoption, so worker-local ids can never collide.

The JSONL export (one span per line, ``trackersift`` writes it via
``--trace-out``) feeds :func:`summarize_spans`: per-stage totals plus
the critical path — the single deepest root-to-leaf chain by duration,
which is where wall-clock optimization effort should go first.
"""

from __future__ import annotations

import contextvars
import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "SpanRecord",
    "Tracer",
    "current_tracer",
    "reset_context",
    "span",
    "summarize_spans",
    "render_summary",
    "read_spans",
]

_ACTIVE_TRACER: contextvars.ContextVar["Tracer | None"] = contextvars.ContextVar(
    "trackersift_tracer", default=None
)
_ACTIVE_SPAN: contextvars.ContextVar[int] = contextvars.ContextVar(
    "trackersift_span", default=0
)


@dataclass
class SpanRecord:
    """One completed (or synthetic) span.

    ``start`` is a monotonic-clock reading local to the process that
    recorded the span; durations are comparable across processes, start
    offsets only within one.  ``span_id`` 0 is reserved for "no parent".
    """

    span_id: int
    parent_id: int
    name: str
    start: float
    duration: float
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "SpanRecord":
        return cls(
            span_id=int(record["span_id"]),
            parent_id=int(record["parent_id"]),
            name=str(record["name"]),
            start=float(record["start"]),
            duration=float(record["duration"]),
            attrs=dict(record.get("attrs") or {}),
        )


class Tracer:
    """Collects spans; thread-safe; activated via :meth:`activate`.

    >>> tracer = Tracer()
    >>> with tracer.activate():
    ...     with span("study", sites=10):
    ...         with span("crawl"):
    ...             pass
    >>> [record.name for record in tracer.records]
    ['crawl', 'study']
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: list[SpanRecord] = []
        self._next_id = 1

    @property
    def records(self) -> tuple[SpanRecord, ...]:
        with self._lock:
            return tuple(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def _new_id(self) -> int:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return span_id

    @contextmanager
    def activate(self) -> Iterator["Tracer"]:
        """Make this tracer the ambient one for the current context.

        Also starts a fresh span stack: a span id inherited from another
        tracer's context (e.g. across a process fork) belongs to that
        tracer's id space and must not parent spans recorded here.
        """
        token = _ACTIVE_TRACER.set(self)
        span_token = _ACTIVE_SPAN.set(0)
        try:
            yield self
        finally:
            _ACTIVE_SPAN.reset(span_token)
            _ACTIVE_TRACER.reset(token)

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[SpanRecord]:
        """Record a timed span, nested under the context's active span."""
        span_id = self._new_id()
        parent = _ACTIVE_SPAN.get()
        token = _ACTIVE_SPAN.set(span_id)
        record = SpanRecord(
            span_id=span_id,
            parent_id=parent,
            name=name,
            start=time.monotonic(),
            duration=0.0,
            attrs=dict(attrs),
        )
        started = time.perf_counter()
        try:
            yield record
        finally:
            record.duration = time.perf_counter() - started
            _ACTIVE_SPAN.reset(token)
            with self._lock:
                self._records.append(record)

    def add(
        self,
        name: str,
        duration: float,
        *,
        parent_id: int | None = None,
        start: float | None = None,
        **attrs,
    ) -> SpanRecord:
        """Record a synthetic span with an externally-measured duration.

        The engine uses this for stage times that are *accumulated*
        across an interleaved loop (crawl vs label inside one shard walk)
        and therefore have no single contiguous interval.  With no
        explicit ``parent_id`` the context's active span is the parent.
        """
        record = SpanRecord(
            span_id=self._new_id(),
            parent_id=(
                parent_id if parent_id is not None else _ACTIVE_SPAN.get()
            ),
            name=name,
            start=time.monotonic() if start is None else start,
            duration=duration,
            attrs=dict(attrs),
        )
        with self._lock:
            self._records.append(record)
        return record

    def adopt(
        self, records: Iterable[dict], *, parent_id: int | None = None
    ) -> int:
        """Graft exported spans (e.g. from a worker process) into this
        tracer, re-parenting their roots under ``parent_id`` (default:
        the context's active span).  Ids are remapped, so adopting the
        same worker export twice can never alias.  Returns how many
        spans were adopted."""
        root = parent_id if parent_id is not None else _ACTIVE_SPAN.get()
        imported = [SpanRecord.from_dict(record) for record in records]
        mapping: dict[int, int] = {}
        for record in imported:
            mapping[record.span_id] = self._new_id()
        with self._lock:
            for record in imported:
                self._records.append(
                    SpanRecord(
                        span_id=mapping[record.span_id],
                        parent_id=mapping.get(record.parent_id, root),
                        name=record.name,
                        start=record.start,
                        duration=record.duration,
                        attrs=record.attrs,
                    )
                )
        return len(imported)

    # -- export --------------------------------------------------------------
    def export(self) -> list[dict]:
        with self._lock:
            return [record.to_dict() for record in self._records]

    def to_jsonl(self) -> str:
        return "".join(
            json.dumps(record, sort_keys=True) + "\n" for record in self.export()
        )

    def write_jsonl(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_jsonl(), encoding="utf-8")
        return path


def current_tracer() -> Tracer | None:
    """The context's active tracer, or ``None`` when tracing is off."""
    return _ACTIVE_TRACER.get()


def reset_context() -> None:
    """Drop any inherited tracer/span context.

    Forked worker processes inherit the parent's contextvars wholesale;
    the parent's active span id is meaningless in the child's tracer and
    would corrupt parentage of everything the child records (worst case
    it aliases a child-local id).  Pool initializers call this first.
    """
    _ACTIVE_TRACER.set(None)
    _ACTIVE_SPAN.set(0)


class _NullSpan:
    """Shared no-op context manager — the cost of tracing when disabled."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


def span(name: str, **attrs):
    """Open a span on the active tracer; a shared no-op without one.

    This is the one instrumentation entry point the rest of the codebase
    uses — call sites never need to thread a tracer object around.
    """
    tracer = _ACTIVE_TRACER.get()
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **attrs)


def add_span(name: str, duration: float, **attrs) -> SpanRecord | None:
    """Synthetic-span twin of :func:`span`; no-op without a tracer."""
    tracer = _ACTIVE_TRACER.get()
    if tracer is None:
        return None
    return tracer.add(name, duration, **attrs)


# ---------------------------------------------------------------------------
# Summaries
# ---------------------------------------------------------------------------

def read_spans(path: str | Path) -> list[dict]:
    """Load a ``--trace-out`` JSONL file back into span dicts."""
    records: list[dict] = []
    for line_number, line in enumerate(
        Path(path).read_text(encoding="utf-8").splitlines(), start=1
    ):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(
                f"{path}:{line_number}: not a JSON span record: {error}"
            ) from None
        if not isinstance(record, dict) or "name" not in record:
            raise ValueError(
                f"{path}:{line_number}: span records need at least a 'name'"
            )
        records.append(record)
    return records


def summarize_spans(records: list[dict]) -> dict:
    """Per-stage time breakdown plus the critical path.

    * ``stages``: per span name — count, total/mean/max duration, and
      *self* time (duration minus child durations, so interleaved
      parents don't double-count their children);
    * ``critical_path``: the root-to-leaf chain with the largest summed
      duration — the chain to attack first when the wall-clock is too
      long;
    * ``wall_seconds``: total duration of root spans (no parent in the
      file).
    """
    spans = [SpanRecord.from_dict(record) for record in records]
    by_id = {record.span_id: record for record in spans}
    children: dict[int, list[SpanRecord]] = {}
    roots: list[SpanRecord] = []
    for record in spans:
        if record.parent_id in by_id:
            children.setdefault(record.parent_id, []).append(record)
        else:
            roots.append(record)

    stages: dict[str, dict] = {}
    for record in spans:
        entry = stages.setdefault(
            record.name,
            {"count": 0, "total_seconds": 0.0, "max_seconds": 0.0,
             "self_seconds": 0.0},
        )
        entry["count"] += 1
        entry["total_seconds"] += record.duration
        entry["max_seconds"] = max(entry["max_seconds"], record.duration)
        child_total = sum(
            child.duration for child in children.get(record.span_id, [])
        )
        entry["self_seconds"] += max(0.0, record.duration - child_total)
    for entry in stages.values():
        entry["mean_seconds"] = (
            entry["total_seconds"] / entry["count"] if entry["count"] else 0.0
        )

    def deepest(record: SpanRecord) -> tuple[float, list[SpanRecord]]:
        best_cost, best_chain = 0.0, []
        for child in children.get(record.span_id, []):
            cost, chain = deepest(child)
            if cost > best_cost:
                best_cost, best_chain = cost, chain
        return record.duration + best_cost, [record] + best_chain

    critical: list[SpanRecord] = []
    critical_cost = 0.0
    for root in roots:
        cost, chain = deepest(root)
        if cost > critical_cost:
            critical_cost, critical = cost, chain

    return {
        "spans": len(spans),
        "wall_seconds": sum(record.duration for record in roots),
        "stages": stages,
        "critical_path": [
            {
                "name": record.name,
                "duration_seconds": record.duration,
                "attrs": record.attrs,
            }
            for record in critical
        ],
        "critical_path_seconds": critical_cost,
    }


def render_summary(summary: dict) -> str:
    """Human-readable rendering of :func:`summarize_spans` output."""
    lines = [
        f"{summary['spans']} spans, "
        f"{summary['wall_seconds']:.3f}s total root wall-clock",
        "",
        f"{'stage':28s} {'count':>6s} {'total':>9s} {'self':>9s} "
        f"{'mean':>9s} {'max':>9s}",
    ]
    ordered = sorted(
        summary["stages"].items(),
        key=lambda item: item[1]["total_seconds"],
        reverse=True,
    )
    for name, entry in ordered:
        lines.append(
            f"{name:28s} {entry['count']:>6d} "
            f"{entry['total_seconds']:>8.3f}s {entry['self_seconds']:>8.3f}s "
            f"{entry['mean_seconds']:>8.3f}s {entry['max_seconds']:>8.3f}s"
        )
    lines.append("")
    lines.append(
        f"critical path ({summary['critical_path_seconds']:.3f}s):"
    )
    for hop in summary["critical_path"]:
        attrs = ""
        if hop["attrs"]:
            rendered = ", ".join(
                f"{key}={value}" for key, value in sorted(hop["attrs"].items())
            )
            attrs = f"  [{rendered}]"
        lines.append(
            f"  {hop['name']:26s} {hop['duration_seconds']:>8.3f}s{attrs}"
        )
    return "\n".join(lines)
