"""The determinism fingerprint ledger.

Every execution path answers the same study through the same logical
stages: parse filter lists → compile a matcher → crawl per-shard events
→ label the request stream → accumulate sift classifications → emit the
final report (the serve paths: snapshot identity → per-revision
decision-stream digests).  A :class:`Ledger` records one
:class:`LedgerEntry` per stage — a stage name plus the sha256
fingerprint of that stage's canonical-JSON intermediate state — in
order.  Two paths that are supposed to be equivalent must produce
*identical chains*; when they don't, :func:`diff_ledgers` points at the
first stage whose fingerprints differ, which localizes the bug to one
stage instead of one byte-diff of final reports.

Canonicalization rules (:func:`canonical_json`): dict keys sorted,
tuples become lists, sets become sorted lists, floats repr'd by
``json`` (shortest round-trip), separators compact, non-ASCII
preserved.  The result — and therefore :func:`fingerprint` — is
invariant to dict insertion order and to ``PYTHONHASHSEED`` (pinned by
hypothesis tests in ``tests/test_obs_ledger.py``).

High-volume stages (the per-request label stream) fingerprint through
:class:`StreamHasher` (incremental, for streams that arrive one item at
a time) or :func:`stream_digest` (its one-shot, byte-identical fast
path over a materialized list): compact per-item byte reprs under a
running sha256, so the hot path never pays a ``json.dumps`` of the
whole stream at the end.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator

__all__ = [
    "LedgerEntry",
    "Ledger",
    "StreamHasher",
    "stream_digest",
    "canonical_json",
    "fingerprint",
    "diff_ledgers",
    "render_diff",
]


def _canonicalize(value: Any) -> Any:
    """Reduce *value* to a JSON-stable structure: sorted dict keys come
    from ``json.dumps(sort_keys=True)``; here we only need to fold the
    non-JSON container types into deterministic JSON ones."""
    if isinstance(value, dict):
        return {str(key): _canonicalize(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonicalize(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(
            (_canonicalize(item) for item in value),
            key=lambda item: json.dumps(item, sort_keys=True),
        )
    if isinstance(value, bytes):
        return value.hex()
    return value


def canonical_json(value: Any) -> str:
    """Serialize *value* deterministically: sorted keys, compact
    separators, tuples/sets folded to (sorted) lists."""
    return json.dumps(
        _canonicalize(value),
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=False,
    )


def fingerprint(value: Any) -> str:
    """sha256 hex digest of the canonical JSON of *value*."""
    return hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()


class StreamHasher:
    """Incremental fingerprint for high-volume stages.

    ``update()`` feeds one compact byte repr per item into a running
    sha256 — O(1) memory and no whole-stream ``json.dumps``, which is
    what keeps the ledger inside the <5% overhead gate on the
    per-request label stream.  Items must already be deterministic
    strings (the caller formats e.g. ``f"{url}|{label}"``).
    """

    __slots__ = ("_hash", "_count")

    def __init__(self) -> None:
        self._hash = hashlib.sha256()
        self._count = 0

    @property
    def count(self) -> int:
        return self._count

    def update(self, item: str) -> None:
        self._hash.update(item.encode("utf-8"))
        self._hash.update(b"\x1e")  # record separator: "ab"+"c" != "a"+"bc"
        self._count += 1

    def update_many(self, items: Iterable[str]) -> None:
        update = self._hash.update
        count = 0
        for item in items:
            update(item.encode("utf-8"))
            update(b"\x1e")
            count += 1
        self._count += count

    def hexdigest(self) -> str:
        return self._hash.hexdigest()


def stream_digest(items: list[str]) -> str:
    """One-shot :class:`StreamHasher` digest over a materialized list.

    Byte-identical to ``StreamHasher().update_many(items)`` (pinned by a
    test), but ~3x cheaper on the pipeline's per-site hot path: the
    separator-joined blob is encoded and hashed in one C call instead of
    two ``update()`` calls per item.  Use this when the items are already
    in a list; use :class:`StreamHasher` when they arrive incrementally
    (the serve path's decision stream).
    """
    if not items:
        return hashlib.sha256(b"").hexdigest()
    return hashlib.sha256(
        ("\x1e".join(items) + "\x1e").encode("utf-8")
    ).hexdigest()


@dataclass(frozen=True)
class LedgerEntry:
    """One stage's fingerprint plus small human-facing metadata.

    Only ``stage`` and ``fingerprint`` participate in chain equality —
    ``meta`` is for diagnostics (counts, shard ids) and may differ
    between equivalent paths (e.g. wall-clock-free counts should match,
    but meta is deliberately not part of the contract).
    """

    stage: str
    fingerprint: str
    meta: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "stage": self.stage,
            "fingerprint": self.fingerprint,
            "meta": self.meta,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "LedgerEntry":
        return cls(
            stage=str(record["stage"]),
            fingerprint=str(record["fingerprint"]),
            meta=dict(record.get("meta") or {}),
        )


class Ledger:
    """An ordered chain of stage fingerprints for one execution path."""

    def __init__(self, path_name: str = "") -> None:
        self.path_name = path_name
        self._entries: list[LedgerEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[LedgerEntry]:
        return iter(self._entries)

    @property
    def entries(self) -> tuple[LedgerEntry, ...]:
        return tuple(self._entries)

    def record(self, stage: str, state: Any, **meta) -> LedgerEntry:
        """Fingerprint *state* via :func:`fingerprint` and append."""
        entry = LedgerEntry(stage=stage, fingerprint=fingerprint(state), meta=meta)
        self._entries.append(entry)
        return entry

    def record_digest(self, stage: str, digest: str, **meta) -> LedgerEntry:
        """Append a pre-computed fingerprint (e.g. a
        :class:`StreamHasher` digest or a decision-stream digest)."""
        entry = LedgerEntry(stage=stage, fingerprint=digest, meta=meta)
        self._entries.append(entry)
        return entry

    def extend(self, entries: Iterable[LedgerEntry]) -> None:
        self._entries.extend(entries)

    def chain(self) -> tuple[tuple[str, str], ...]:
        """The comparable content: ordered (stage, fingerprint) pairs."""
        return tuple(
            (entry.stage, entry.fingerprint) for entry in self._entries
        )

    def stages(self) -> tuple[str, ...]:
        return tuple(entry.stage for entry in self._entries)

    # -- persistence ---------------------------------------------------------
    def to_jsonl(self) -> str:
        return "".join(
            json.dumps(entry.to_dict(), sort_keys=True) + "\n"
            for entry in self._entries
        )

    def write_jsonl(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_jsonl(), encoding="utf-8")
        return path

    @classmethod
    def from_jsonl(cls, path: str | Path, path_name: str = "") -> "Ledger":
        ledger = cls(path_name or Path(path).stem)
        for line_number, line in enumerate(
            Path(path).read_text(encoding="utf-8").splitlines(), start=1
        ):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{line_number}: not a JSON ledger entry: {error}"
                ) from None
            if not isinstance(record, dict) or "stage" not in record:
                raise ValueError(
                    f"{path}:{line_number}: ledger entries need 'stage' and "
                    "'fingerprint'"
                )
            ledger._entries.append(LedgerEntry.from_dict(record))
        return ledger


def diff_ledgers(left: Ledger, right: Ledger) -> dict:
    """Compare two chains; localize the first divergent stage.

    Returns a dict with ``identical`` plus — when they differ — the
    zero-based ``index`` of the first divergence, the ``stage`` name(s)
    there, and both fingerprints (``None`` for a chain that ended
    early).  Stage-name mismatches at the same index count as a
    divergence too: equivalence requires the *same stages in the same
    order* with the same fingerprints.
    """
    left_chain, right_chain = left.chain(), right.chain()
    for index in range(max(len(left_chain), len(right_chain))):
        left_item = left_chain[index] if index < len(left_chain) else None
        right_item = right_chain[index] if index < len(right_chain) else None
        if left_item == right_item:
            continue
        return {
            "identical": False,
            "index": index,
            "stage": (left_item or right_item)[0],
            "left_stage": left_item[0] if left_item else None,
            "right_stage": right_item[0] if right_item else None,
            "left_fingerprint": left_item[1] if left_item else None,
            "right_fingerprint": right_item[1] if right_item else None,
            "left_name": left.path_name,
            "right_name": right.path_name,
            "stages_compared": index,
        }
    return {
        "identical": True,
        "stages_compared": len(left_chain),
        "left_name": left.path_name,
        "right_name": right.path_name,
    }


def render_diff(diff: dict) -> str:
    """Human-readable rendering of :func:`diff_ledgers` output."""
    left = diff.get("left_name") or "left"
    right = diff.get("right_name") or "right"
    if diff["identical"]:
        return (
            f"identical: {left} == {right} "
            f"({diff['stages_compared']} stages)"
        )
    lines = [
        f"DIVERGED at stage {diff['index']}: "
        f"{diff['left_stage'] or '<chain ended>'}"
        + (
            f" vs {diff['right_stage'] or '<chain ended>'}"
            if diff["left_stage"] != diff["right_stage"]
            else ""
        ),
        f"  {left:>24s}: {diff['left_fingerprint'] or '<missing>'}",
        f"  {right:>24s}: {diff['right_fingerprint'] or '<missing>'}",
        f"  ({diff['stages_compared']} identical stages before divergence)",
    ]
    return "\n".join(lines)
