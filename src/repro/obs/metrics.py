"""One metrics registry for every layer, local and cross-process.

Before this module each layer kept its own ad-hoc counters: the
decision cache carried a stats dataclass, the engine stuffed floats
into ``PipelineResult.notes``, the service held a ``_Counters``
dataclass plus a bespoke latency window, and the supervisor published
into a hand-indexed shared ``multiprocessing.Array``.  They all still
exist as *shapes* (tests pin them), but are now backed by two
primitives defined here:

* :class:`MetricsRegistry` — per-process, thread-safe, get-or-create
  counters, gauges, fixed-bucket histograms, and
  :class:`LatencyWindow`\\ s, with a JSON view (:meth:`~MetricsRegistry.as_dict`)
  and Prometheus text exposition (:meth:`~MetricsRegistry.prometheus_text`).
* :class:`SharedBoard` — the cross-process mode: named scalar fields
  per worker slot (plus a latency-sample ring and a parent-owned fleet
  region) over a lock-free shared ``Array`` of doubles, single writer
  per region, torn reads acceptable (monitoring, not ledger).  The
  supervisor's metrics board is an instance of this with a declared
  field list instead of hand-maintained ``_F_*`` offsets.

:func:`prometheus_from_dict` flattens *any* metrics JSON payload (the
service's, or the supervisor's merged cross-worker view) into valid
Prometheus text exposition, which is how ``/metrics`` serves both
formats without two bookkeeping paths that could drift.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Iterable, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LatencyWindow",
    "MetricsRegistry",
    "SharedBoard",
    "prometheus_from_dict",
    "nearest_rank",
    "wants_prometheus",
    "PROMETHEUS_CONTENT_TYPE",
]

DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, float("inf"),
)


def nearest_rank(data: Sequence[float], q: float) -> float:
    """Nearest-rank percentile over *sorted* data: ceil(q/100*n), 1-based.

    The one percentile definition every latency view in the repo uses
    (service window, merged cross-worker board), factored out so they
    cannot drift."""
    if not data:
        return 0.0
    rank = -(-q * len(data) // 100)
    return data[min(len(data) - 1, max(0, int(rank) - 1))]


class Counter:
    """Monotonic counter; thread-safe."""

    __slots__ = ("name", "description", "_lock", "_value")

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """Point-in-time value; settable, or computed by a callback.

    Callback gauges (``Gauge(name, fn=...)``) let the registry expose
    live state owned elsewhere — the snapshot's cache stats, the fleet's
    alive-worker count — without mirroring writes onto the hot path.
    """

    __slots__ = ("name", "description", "_lock", "_value", "_fn")

    def __init__(
        self,
        name: str,
        description: str = "",
        fn: Callable[[], float] | None = None,
    ) -> None:
        self.name = name
        self.description = description
        self._lock = threading.Lock()
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise RuntimeError(f"gauge {self.name} is callback-backed")
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        if self._fn is not None:
            raise RuntimeError(f"gauge {self.name} is callback-backed")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value


class Histogram:
    """Fixed-bucket cumulative histogram (Prometheus semantics)."""

    __slots__ = ("name", "description", "buckets", "_lock", "_counts",
                 "_sum", "_count")

    def __init__(
        self,
        name: str,
        description: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        bounds = sorted(set(float(b) for b in buckets))
        if not bounds or bounds[-1] != float("inf"):
            bounds.append(float("inf"))
        self.name = name
        self.description = description
        self.buckets = tuple(bounds)
        self._lock = threading.Lock()
        self._counts = [0] * len(bounds)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float, count: int = 1) -> None:
        if count <= 0:
            return
        with self._lock:
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[index] += count
                    break
            self._sum += value * count
            self._count += count

    def snapshot(self) -> dict:
        with self._lock:
            counts = list(self._counts)
            total, count = self._sum, self._count
        cumulative: dict[str, int] = {}
        running = 0
        for bound, bucket_count in zip(self.buckets, counts):
            running += bucket_count
            key = "+Inf" if bound == float("inf") else repr(bound)
            cumulative[key] = running
        return {"count": count, "sum": total, "buckets": cumulative}


class LatencyWindow:
    """Sliding window of recent latencies, for p50/p99 metrics.

    This is the service's original ``_LatencyWindow``, promoted into the
    registry; the attribute/semantic surface (``count``, ``total``,
    ``_samples``, :meth:`drain_since`) is pinned by the serve tests and
    by the supervisor's board publisher.
    """

    def __init__(self, size: int = 4096) -> None:
        self._samples: deque[float] = deque(maxlen=size)
        self._lock = threading.Lock()
        self.count = 0
        self.total = 0.0

    def observe(self, seconds: float) -> None:
        with self._lock:
            self._samples.append(seconds)
            self.count += 1
            self.total += seconds

    def observe_many(self, seconds_each: float, count: int) -> None:
        """Record ``count`` samples of ``seconds_each`` under one lock —
        the batch path's per-decision latency, amortized over the batch."""
        if count <= 0:
            return
        with self._lock:
            self._samples.extend([seconds_each] * count)
            self.count += count
            self.total += seconds_each * count

    def drain_since(self, cursor: int) -> tuple[int, list[float]]:
        """Samples recorded after observation number ``cursor`` (bounded
        by the window), plus the new cursor — the incremental read the
        supervisor's shared-board publisher makes, so per-worker latency
        samples reach the merged ``/metrics`` view without re-copying
        the whole window every tick."""
        with self._lock:
            new = self.count
            fresh = new - cursor
            if fresh <= 0:
                return new, []
            take = min(fresh, len(self._samples))
            data = list(self._samples)[-take:] if take else []
        return new, data

    def snapshot(self) -> dict:
        with self._lock:
            data = sorted(self._samples)
            count, total = self.count, self.total
        return {
            "observed": count,
            "window": len(data),
            "mean_ms": (total / count * 1e3) if count else 0.0,
            "p50_ms": nearest_rank(data, 50) * 1e3,
            "p99_ms": nearest_rank(data, 99) * 1e3,
        }


class MetricsRegistry:
    """Get-or-create registry of named instruments; thread-safe.

    Instrument names are Prometheus-style (``snake_case``); the
    registry rejects re-registering a name as a different kind, which
    is the drift this layer exists to prevent.
    """

    def __init__(self, prefix: str = "trackersift") -> None:
        self.prefix = prefix
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._latencies: dict[str, LatencyWindow] = {}

    def _get_or_create(self, table: dict, name: str, factory):
        for other in (self._counters, self._gauges, self._histograms,
                      self._latencies):
            if other is not table and name in other:
                raise ValueError(
                    f"metric {name!r} already registered as a different kind"
                )
        with self._lock:
            if name not in table:
                table[name] = factory()
            return table[name]

    def counter(self, name: str, description: str = "") -> Counter:
        return self._get_or_create(
            self._counters, name, lambda: Counter(name, description)
        )

    def gauge(
        self,
        name: str,
        description: str = "",
        fn: Callable[[], float] | None = None,
    ) -> Gauge:
        gauge = self._get_or_create(
            self._gauges, name, lambda: Gauge(name, description, fn=fn)
        )
        if fn is not None and gauge._fn is None:
            gauge._fn = fn
        return gauge

    def histogram(
        self,
        name: str,
        description: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            self._histograms, name, lambda: Histogram(name, description, buckets)
        )

    def latency(self, name: str, size: int = 4096) -> LatencyWindow:
        return self._get_or_create(
            self._latencies, name, lambda: LatencyWindow(size)
        )

    # -- views ---------------------------------------------------------------
    def as_dict(self) -> dict:
        """JSON view: one key per instrument kind, values by name."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
            latencies = dict(self._latencies)
        return {
            "counters": {name: c.value for name, c in counters.items()},
            "gauges": {name: g.value for name, g in gauges.items()},
            "histograms": {
                name: h.snapshot() for name, h in histograms.items()
            },
            "latency": {
                name: window.snapshot() for name, window in latencies.items()
            },
        }

    def prometheus_text(self) -> str:
        """Typed Prometheus text exposition of every instrument."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
            latencies = dict(self._latencies)
        lines: list[str] = []
        for name in sorted(counters):
            counter = counters[name]
            full = f"{self.prefix}_{name}"
            if counter.description:
                lines.append(f"# HELP {full} {counter.description}")
            lines.append(f"# TYPE {full} counter")
            lines.append(f"{full} {counter.value}")
        for name in sorted(gauges):
            gauge = gauges[name]
            full = f"{self.prefix}_{name}"
            if gauge.description:
                lines.append(f"# HELP {full} {gauge.description}")
            lines.append(f"# TYPE {full} gauge")
            lines.append(f"{full} {_format_value(gauge.value)}")
        for name in sorted(histograms):
            hist = histograms[name]
            full = f"{self.prefix}_{name}"
            snap = hist.snapshot()
            if hist.description:
                lines.append(f"# HELP {full} {hist.description}")
            lines.append(f"# TYPE {full} histogram")
            for le, cumulative in snap["buckets"].items():
                lines.append(f'{full}_bucket{{le="{le}"}} {cumulative}')
            lines.append(f"{full}_sum {_format_value(snap['sum'])}")
            lines.append(f"{full}_count {snap['count']}")
        for name in sorted(latencies):
            snap = latencies[name].snapshot()
            full = f"{self.prefix}_{name}"
            lines.append(f"# TYPE {full}_observed counter")
            lines.append(f"{full}_observed {snap['observed']}")
            for stat in ("mean_ms", "p50_ms", "p99_ms"):
                lines.append(f"# TYPE {full}_{stat} gauge")
                lines.append(f"{full}_{stat} {_format_value(snap[stat])}")
        return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Cross-process shared mode
# ---------------------------------------------------------------------------

class SharedBoard:
    """Named-field view over a lock-free shared ``Array('d')``.

    Layout: ``workers`` slots of ``len(fields) + ring`` doubles (scalar
    fields, then a latency-sample ring addressed by the slot's
    ``cursor`` field), followed by one parent-owned *fleet* region of
    ``len(fleet_fields)`` doubles.  Single writer per region — each
    worker owns its slot, the parent owns the fleet region — and torn
    reads are acceptable: this is monitoring, not the ledger.

    Construct either around a fresh shared array (:meth:`create`) or
    around an existing raw array a worker inherited over fork
    (:meth:`view`).
    """

    CURSOR = "cursor"

    def __init__(
        self,
        array,
        fields: Sequence[str],
        workers: int,
        ring: int,
        fleet_fields: Sequence[str] = (),
    ) -> None:
        if self.CURSOR not in fields and ring:
            raise ValueError("a sample ring needs a 'cursor' field")
        self.array = array
        self.fields = tuple(fields)
        self.workers = workers
        self.ring = ring
        self.fleet_fields = tuple(fleet_fields)
        self._index = {name: i for i, name in enumerate(self.fields)}
        self._fleet_index = {
            name: i for i, name in enumerate(self.fleet_fields)
        }
        self.slot_size = len(self.fields) + ring
        self._fleet_base = workers * self.slot_size

    @classmethod
    def size(
        cls,
        fields: Sequence[str],
        workers: int,
        ring: int,
        fleet_fields: Sequence[str] = (),
    ) -> int:
        return workers * (len(fields) + ring) + len(fleet_fields)

    @classmethod
    def create(
        cls,
        context,
        fields: Sequence[str],
        workers: int,
        ring: int,
        fleet_fields: Sequence[str] = (),
    ) -> "SharedBoard":
        array = context.Array(
            "d", cls.size(fields, workers, ring, fleet_fields), lock=False
        )
        return cls(array, fields, workers, ring, fleet_fields)

    # -- worker slots --------------------------------------------------------
    def write_slot(self, worker: int, values: Mapping[str, float]) -> None:
        base = worker * self.slot_size
        for name, value in values.items():
            self.array[base + self._index[name]] = float(value)

    def read_slot(self, worker: int) -> dict:
        base = worker * self.slot_size
        return {
            name: self.array[base + index]
            for name, index in self._index.items()
        }

    def append_samples(self, worker: int, samples: Iterable[float]) -> None:
        """Write samples into the slot's ring at its cursor, advancing it.

        The cursor counts *all* samples ever written (monotonic), so
        readers know how many ring entries are valid (``min(cursor,
        ring)``) and the supervisor's merged percentile view stays a
        recent-window estimate, same as the in-process window."""
        base = worker * self.slot_size
        ring_base = base + len(self.fields)
        cursor_at = base + self._index[self.CURSOR]
        write_at = int(self.array[cursor_at])
        for sample in samples:
            self.array[ring_base + (write_at % self.ring)] = sample
            write_at += 1
        self.array[cursor_at] = float(write_at)

    def read_samples(self, worker: int) -> list[float]:
        base = worker * self.slot_size
        ring_base = base + len(self.fields)
        valid = min(int(self.array[base + self._index[self.CURSOR]]), self.ring)
        return list(self.array[ring_base : ring_base + valid]) if valid else []

    # -- fleet region (parent-owned) ----------------------------------------
    def write_fleet(self, values: Mapping[str, float]) -> None:
        for name, value in values.items():
            self.array[self._fleet_base + self._fleet_index[name]] = float(value)

    def read_fleet(self) -> dict:
        return {
            name: self.array[self._fleet_base + index]
            for name, index in self._fleet_index.items()
        }


# ---------------------------------------------------------------------------
# Prometheus exposition from arbitrary metrics JSON
# ---------------------------------------------------------------------------

def _sanitize(component: str) -> str:
    cleaned = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in str(component)
    )
    return cleaned or "_"


def _format_value(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _flatten(value, path: list[str], out: list[tuple[str, str]]) -> None:
    if isinstance(value, bool):
        out.append(("_".join(path), "1" if value else "0"))
    elif isinstance(value, (int, float)):
        out.append(("_".join(path), _format_value(value)))
    elif isinstance(value, Mapping):
        for key in value:
            _flatten(value[key], path + [_sanitize(key)], out)
    elif isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            _flatten(item, path + [str(index)], out)
    # strings and None carry no numeric value: skipped.


PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def wants_prometheus(query: str, accept: str) -> bool:
    """Shared ``/metrics`` content negotiation for both HTTP front ends.

    Prometheus text is served for ``?format=prometheus`` or an ``Accept``
    header naming ``text/plain``; everything else keeps the JSON default
    (existing dashboards and the supervisor's merge path rely on it).
    """
    for pair in query.split("&"):
        if pair == "format=prometheus":
            return True
    return "text/plain" in (accept or "")


def prometheus_from_dict(payload: Mapping, prefix: str = "trackersift") -> str:
    """Flatten a metrics JSON payload into Prometheus text exposition.

    Every numeric leaf becomes a gauge named by its underscore-joined
    path (``{"decisions": {"served": 6}}`` →
    ``trackersift_decisions_served 6``); booleans become 0/1; strings
    are skipped.  Both ``/metrics`` front ends expose Prometheus through
    this one function over the *same* dict they serve as JSON, so the
    two formats cannot disagree.
    """
    flat: list[tuple[str, str]] = []
    _flatten(payload, [prefix], flat)
    lines: list[str] = []
    for name, value in flat:
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {value}")
    return "\n".join(lines) + "\n"
