"""Unified observability: tracing, metrics, and the determinism ledger.

Three pillars, one shared nervous system for every execution path:

* :mod:`repro.obs.trace` — structured spans over the monotonic clock,
  nested via contextvars (thread- and asyncio-safe), exported as JSONL
  and summarized into per-stage breakdowns and a critical path
  (``trackersift trace summarize``).
* :mod:`repro.obs.metrics` — a :class:`~repro.obs.metrics.MetricsRegistry`
  of counters, gauges and fixed-bucket histograms with a per-process
  local mode and a cross-process shared-``Array`` mode (the supervisor's
  metrics board), plus Prometheus text exposition.
* :mod:`repro.obs.ledger` — the determinism fingerprint ledger: every
  stage of every execution path records a sha256 fingerprint of its
  canonical-JSON intermediate state into an ordered chain, so two paths
  that diverge are localized to the *first* differing stage instead of a
  differing final report (``trackersift ledger diff``).

Everything is stdlib-only, and everything is opt-in on the hot paths:
an engine or service without a tracer/ledger attached pays one ``None``
check per stage, never per request.
"""

from .ledger import Ledger, LedgerEntry, StreamHasher, canonical_json, fingerprint
from .metrics import MetricsRegistry, prometheus_from_dict
from .trace import Tracer, current_tracer, span, summarize_spans

__all__ = [
    "Ledger",
    "LedgerEntry",
    "StreamHasher",
    "canonical_json",
    "fingerprint",
    "MetricsRegistry",
    "prometheus_from_dict",
    "Tracer",
    "current_tracer",
    "span",
    "summarize_spans",
]
