"""TrackerSift reproduction — untangling mixed tracking and functional web
resources (Amjad et al., ACM IMC 2021).

The package is organised as the paper's system plus every substrate it
depends on:

* :mod:`repro.urlkit` — URLs, hostnames, public-suffix eTLD+1,
* :mod:`repro.filterlists` — Adblock Plus engine + EasyList/EasyPrivacy
  snapshots (the labeling oracle),
* :mod:`repro.webmodel` — calibrated synthetic web (the 100K-crawl stand-in),
* :mod:`repro.browser` — simulated instrumented browser (DevTools events,
  call stacks, blocking policies, breakage grading),
* :mod:`repro.crawler` — ranked lists, stateless crawls, sharded cluster,
  request database,
* :mod:`repro.labeling` — oracle labeling with ancestral propagation,
* :mod:`repro.core` — TrackerSift itself: the ratio classifier, the
  hierarchical sifter, sensitivity, call-stack analysis, surrogates, guards,
* :mod:`repro.analysis` — Tables 1-3 and Figures 3-5 builders + rendering.

Quickstart::

    from repro import run_study
    result = run_study(sites=500, seed=7)
    print(result.report.final_separation)       # ~0.98 in the paper
"""

from .core import (
    HierarchicalSifter,
    PipelineConfig,
    PipelineResult,
    RatioClassifier,
    ResourceClass,
    SiftReport,
    TrackerSiftPipeline,
    log_ratio,
    run_study,
    sift_requests,
)
from .filterlists import FilterListOracle, Label
from .labeling import AnalyzedRequest, LabeledCrawl, RequestLabeler
from .webmodel import PAPER, SyntheticWeb, SyntheticWebGenerator, generate_web

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "log_ratio",
    "ResourceClass",
    "RatioClassifier",
    "HierarchicalSifter",
    "sift_requests",
    "SiftReport",
    "PipelineConfig",
    "PipelineResult",
    "TrackerSiftPipeline",
    "run_study",
    "FilterListOracle",
    "Label",
    "RequestLabeler",
    "AnalyzedRequest",
    "LabeledCrawl",
    "SyntheticWeb",
    "SyntheticWebGenerator",
    "generate_web",
    "PAPER",
]
