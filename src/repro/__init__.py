"""TrackerSift reproduction — untangling mixed tracking and functional web
resources (Amjad et al., ACM IMC 2021).

The package is organised as the paper's system plus every substrate it
depends on:

* :mod:`repro.urlkit` — URLs, hostnames, public-suffix eTLD+1,
* :mod:`repro.filterlists` — Adblock Plus engine + EasyList/EasyPrivacy
  snapshots (the labeling oracle), with a memoized decision cache for the
  labeling hot path,
* :mod:`repro.webmodel` — calibrated synthetic web (the 100K-crawl stand-in),
* :mod:`repro.browser` — simulated instrumented browser (DevTools events,
  call stacks, blocking policies, breakage grading),
* :mod:`repro.crawler` — ranked lists, stateless crawls, sharded cluster,
  request database,
* :mod:`repro.labeling` — oracle labeling with ancestral propagation,
* :mod:`repro.core` — TrackerSift itself: the ratio classifier, the
  hierarchical sifter, the streaming execution engine, sensitivity,
  call-stack analysis, surrogates, guards,
* :mod:`repro.analysis` — Tables 1-3 and Figures 3-5 builders + rendering,
* :mod:`repro.serve` — the online blocking-decision service: the oracle
  behind a threaded JSON API with hot-reloadable list snapshots.

**The pipeline.**  The crawl → label → sift path runs on one execution
engine with two front doors.  The classic batch API materializes every
stage — handy when you want the request database and labeled crawl in
hand afterwards::

    from repro import run_study
    result = run_study(sites=500, seed=7)
    print(result.report.final_separation)       # ~0.98 in the paper
    result.database.to_jsonl("crawl.jsonl")     # every captured event

The streaming API runs the same study without materializing anything
request-shaped: sites are sharded into batches, each page's events flow
straight through the memoized labeling oracle into grouped sift
accumulators, and completed shards checkpoint to disk so a partial run
resumes where it stopped::

    from repro import PipelineConfig, StreamingPipeline
    engine = StreamingPipeline(
        PipelineConfig(sites=2_000, seed=7),
        shards=13,                      # execution knob — never changes results
        workers=4,                      # crawl shards on 4 worker processes
        checkpoint_dir="checkpoints/",  # optional: resume after interruption
    )
    result = engine.run()
    print(result.report.final_separation)
    print(result.notes["label_cache_hit_rate"])   # >50% at study scale

Both doors produce identical reports for identical configs — the
equivalence is pinned, shard count by shard count and worker count by
worker count, in ``tests/test_streaming_engine.py`` and
``tests/test_parallel_engine.py`` — because
:class:`~repro.core.pipeline.TrackerSiftPipeline` *is* the engine in
retain mode, one shard per cluster node, and parallel workers run the
same per-shard crawl in their own processes (per-site determinism makes
the shard a pure function of its site list; see
:mod:`repro.core.parallel`).  ``trackersift sift --streaming --shards N
--workers W`` (or ``python -m repro sift --streaming ...``) exposes both
knobs on the command line.

**Serving.**  The same oracle the studies label with also runs as a
long-lived online service: :class:`~repro.serve.BlockingService` answers
per-request blocking decisions from an atomically swappable snapshot (a
cache-enabled oracle + its own thread-safe decision cache), and
:class:`~repro.serve.BlockingServer` exposes it over a threaded JSON API
with hot reload — ``trackersift serve --port 8377 --threads 8``.  Served
decisions are bit-identical to offline
:meth:`FilterListOracle.should_block_url` labeling for the same lists
(the identity gate in ``benchmarks/bench_serve.py`` checks this over
live HTTP), and a reload never drops a request: in-flight decisions
finish on the old snapshot.

**Compiled artifacts.**  Parsing list text and building the token/host
indexes is paid *once*, at compile time: ``trackersift compile --out
lists.tsoracle`` (or :func:`repro.filterlists.compile.compile_lists`)
serializes a fully built matcher into a versioned, checksummed artifact,
and :meth:`FilterListOracle.from_artifact` /
``trackersift serve --artifact`` / ``POST /v1/reload {"artifact": ...}``
load it back with no parsing or index construction (>= 5x faster oracle
readiness, gated in ``benchmarks/bench_artifacts.py``).  The parallel
engine uses the same machinery internally: shard workers receive a
compiled oracle plus per-shard site slices from an on-disk fan-out store
instead of a pickled copy of the whole study, and ship a
transfer/startup/compute overhead breakdown back with every shard.

**Scenario conformance.**  Every fast path above promises the same
observable behaviour; :mod:`repro.scenarios` makes that a standing,
workload-diverse obligation.  Named scenario packs (CNAME cloaking,
filter-list churn storms, anonymized long tails, internal pages, hot
reload under load, cache-buster token drift, extreme site-size skew,
flaky crawls) are declarative :class:`~repro.scenarios.ScenarioSpec`
data; :class:`~repro.scenarios.ScenarioRunner` drives each pack through
every execution path — batch, streaming, process fan-out,
compiled-artifact fan-out, and the online service — and checks
byte-identical reports, ``ShardState`` JSON and blocking decisions
against committed golden manifests (``trackersift scenario run
--matrix``; gated per PR by the tier-1 matrix test and
``benchmarks/bench_scenarios.py``).

The fan-out is chaos-hardened: a lease-based work-stealing scheduler
retries, steals, and quarantines around worker crashes, hangs, and
stragglers without changing a byte of output, and every fault is
reproducible through the seed-driven :mod:`repro.faults` plane (the
``TRACKERSIFT_FAULTS`` environment variable or the ``fault_plan``
kwarg; gated by ``benchmarks/bench_chaos.py``).
"""

from .core import (
    HierarchicalSifter,
    PipelineConfig,
    PipelineResult,
    RatioClassifier,
    ResourceClass,
    SiftReport,
    StreamingPipeline,
    TrackerSiftPipeline,
    log_ratio,
    run_study,
    sift_requests,
)
from .faults import FaultPlan, FaultSpec
from .filterlists import FilterListOracle, Label
from .labeling import AnalyzedRequest, LabeledCrawl, RequestLabeler
from .scenarios import SCENARIO_PACKS, ScenarioRunner, ScenarioSpec
from .serve import (
    BlockingClient,
    BlockingServer,
    BlockingService,
    LoadGenerator,
)
from .webmodel import PAPER, SyntheticWeb, SyntheticWebGenerator, generate_web

__version__ = "1.10.0"

__all__ = [
    "__version__",
    "log_ratio",
    "ResourceClass",
    "RatioClassifier",
    "HierarchicalSifter",
    "sift_requests",
    "SiftReport",
    "PipelineConfig",
    "PipelineResult",
    "TrackerSiftPipeline",
    "StreamingPipeline",
    "run_study",
    "FilterListOracle",
    "Label",
    "FaultPlan",
    "FaultSpec",
    "BlockingService",
    "BlockingServer",
    "BlockingClient",
    "LoadGenerator",
    "SCENARIO_PACKS",
    "ScenarioRunner",
    "ScenarioSpec",
    "RequestLabeler",
    "AnalyzedRequest",
    "LabeledCrawl",
    "SyntheticWeb",
    "SyntheticWebGenerator",
    "generate_web",
    "PAPER",
]
