"""The named scenario packs: the workloads every fast path must survive.

Each pack is a frozen :class:`~repro.scenarios.spec.ScenarioSpec` pointing
at a realistic web condition the paper cares about — cloaking, churn,
long-tail anonymity, internal pages, hot reload under load, adversarial
cache-buster drift, extreme site-size skew, flaky crawls.  Packs are data:
adding one is writing a spec (and committing its golden manifest — see
``README.md``), not writing code.

``fast`` packs are small enough for the tier-1 conformance test; the rest
join via the ``slow`` marker, the CLI matrix, and the bench.
"""

from __future__ import annotations

from .spec import ChurnStep, ScenarioSpec, TraceSpec, WebKnobs

__all__ = ["SCENARIO_PACKS", "all_packs", "fast_packs", "get_pack"]


def _packs() -> tuple[ScenarioSpec, ...]:
    return (
        ScenarioSpec(
            name="baseline",
            description="the calibrated population, untouched — the control",
            sites=80,
            trace=TraceSpec(requests=400, seed=101),
        ),
        ScenarioSpec(
            name="cname-cloaking-heavy",
            description=(
                "65% of domain-rule tracking traffic hides behind "
                "first-party CNAME aliases"
            ),
            sites=80,
            web=WebKnobs(cloaking_fraction=0.65),
            trace=TraceSpec(requests=400, seed=113),
        ),
        ScenarioSpec(
            name="list-churn-storm",
            description=(
                "five reloads in one serving window: reorder, 20% rule "
                "drop, 40 additions, a provider rename, another reorder"
            ),
            sites=60,
            churn=(
                ChurnStep(op="reorder", seed=3),
                ChurnStep(op="drop", seed=5, fraction=0.2),
                ChurnStep(op="add", seed=8, count=40),
                ChurnStep(op="rename", suffix=" (2026 edition)"),
                ChurnStep(op="reorder", seed=13),
            ),
            trace=TraceSpec(requests=600, seed=127, chunks=6),
            fast=False,
        ),
        ScenarioSpec(
            name="anonymized-long-tail",
            description=(
                "a long-tail crawl (220 sites) where 85% of mixed-script "
                "methods report as `anonymous`"
            ),
            sites=220,
            web=WebKnobs(anonymize_fraction=0.85),
            trace=TraceSpec(requests=500, seed=131),
            fast=False,
        ),
        ScenarioSpec(
            name="internal-pages",
            description=(
                "half the sites gain internal article pages that replay "
                "tracking more often than functional traffic"
            ),
            sites=60,
            web=WebKnobs(internal_site_fraction=0.5, internal_pages_per_site=2),
            trace=TraceSpec(requests=500, seed=137),
            fast=False,
        ),
        ScenarioSpec(
            name="hot-reload-under-load",
            description=(
                "decision-preserving reloads (noop, reorder, noop) land "
                "between trace chunks while the service answers"
            ),
            sites=60,
            churn=(
                ChurnStep(op="noop"),
                ChurnStep(op="reorder", seed=29),
                ChurnStep(op="noop"),
            ),
            trace=TraceSpec(requests=600, seed=139, chunks=4),
        ),
        ScenarioSpec(
            name="adversarial-token-drift",
            description=(
                "60% of the workload carries seeded cache-buster tokens — "
                "the decision cache's adversarial input"
            ),
            sites=60,
            trace=TraceSpec(requests=500, seed=149, drift=0.6, drift_seed=151),
        ),
        ScenarioSpec(
            name="tiny-and-huge-mix",
            description=(
                "a 40-site crawl where a slice of sites balloons to 7 "
                "pages each — extreme per-shard size skew"
            ),
            sites=40,
            web=WebKnobs(internal_site_fraction=0.2, internal_pages_per_site=6),
            trace=TraceSpec(requests=400, seed=157),
        ),
        ScenarioSpec(
            name="flaky-crawl",
            description="12% of page loads fail, keyed to the 13-node cluster",
            sites=80,
            failure_rate=0.12,
            trace=TraceSpec(requests=400, seed=163),
            fast=False,
        ),
        ScenarioSpec(
            name="arms-race",
            description=(
                "the control loop's workload: a mid-size crawl a mutating "
                "tracker keeps relocating under, replayed by "
                "``ControlLoop.from_pack`` as quiet/relocate/drift rounds"
            ),
            sites=60,
            trace=TraceSpec(requests=400, seed=173),
            fast=False,
        ),
        ScenarioSpec(
            name="chaos-fault-storm",
            description=(
                "the chaos gate's workload: a flaky mid-size crawl whose "
                "golden must survive injected worker crashes, hangs, and "
                "transient faults byte-for-byte (faults ride the "
                "TRACKERSIFT_FAULTS env plane, never the spec)"
            ),
            sites=60,
            failure_rate=0.08,
            trace=TraceSpec(requests=400, seed=167),
            fast=False,
        ),
    )


#: name → spec, in registry order.
SCENARIO_PACKS: dict[str, ScenarioSpec] = {spec.name: spec for spec in _packs()}


def all_packs() -> tuple[ScenarioSpec, ...]:
    return tuple(SCENARIO_PACKS.values())


def fast_packs() -> tuple[ScenarioSpec, ...]:
    return tuple(spec for spec in SCENARIO_PACKS.values() if spec.fast)


def get_pack(name: str) -> ScenarioSpec:
    try:
        return SCENARIO_PACKS[name]
    except KeyError:
        known = ", ".join(SCENARIO_PACKS)
        raise KeyError(f"unknown scenario pack {name!r}; known packs: {known}")
