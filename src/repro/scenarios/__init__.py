"""Scenario packs and the cross-path conformance matrix.

The repo grows by adding faster ways to produce the *same* blocking
decisions; this package is the harness that keeps "same" honest.  A
:class:`ScenarioSpec` declares one workload (webmodel knobs, a
filter-list churn schedule, a request trace, seeds); ``SCENARIO_PACKS``
names the realistic conditions the paper cares about (cloaking, churn
storms, long-tail anonymity, internal pages, hot reload under load,
token drift, extreme size skew, flaky crawls); and
:class:`ScenarioRunner` drives each pack through every execution path —
batch, streaming, process fan-out, compiled-artifact fan-out, and the
online service — asserting byte-identical decisions, reports, and
``ShardState`` JSON, pinned by committed golden manifests.

CLI: ``trackersift scenario list`` / ``trackersift scenario run
--matrix``.  Bench: ``benchmarks/bench_scenarios.py``.
"""

from .packs import SCENARIO_PACKS, all_packs, fast_packs, get_pack
from .runner import (
    EXECUTION_PATHS,
    PathResult,
    ScenarioOutcome,
    ScenarioRunner,
)
from .spec import ChurnStep, ScenarioSpec, TraceSpec, WebKnobs

__all__ = [
    "SCENARIO_PACKS",
    "all_packs",
    "fast_packs",
    "get_pack",
    "EXECUTION_PATHS",
    "PathResult",
    "ScenarioOutcome",
    "ScenarioRunner",
    "ChurnStep",
    "ScenarioSpec",
    "TraceSpec",
    "WebKnobs",
]
