"""Declarative scenario specifications for the conformance matrix.

A :class:`ScenarioSpec` is the complete, serializable description of one
workload the repo's execution paths must agree on: the synthetic-web
knobs (scale, seed, transforms), an optional filter-list churn schedule,
and a workload trace for the online service.  Specs are *data*, not code:
they round-trip losslessly through JSON (property-tested), so a pack can
be committed, diffed, and replayed bit-identically on any machine —
which is what makes the golden manifests in
:mod:`repro.scenarios.runner` meaningful across PRs.

Determinism contract: every stochastic choice a scenario induces (web
generation, transforms, churn shuffles, trace sampling, token drift) is
keyed on a seed carried *inside* the spec.  Two runs of the same spec
produce byte-identical traces, churn revisions, and decisions.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields, replace

from ..core.engine import PipelineConfig

__all__ = [
    "ChurnStep",
    "TraceSpec",
    "WebKnobs",
    "ScenarioSpec",
    "CHURN_OPS",
]

#: The churn operations :mod:`repro.scenarios.churn` implements.
CHURN_OPS = ("noop", "reorder", "rename", "drop", "add")


@dataclass(frozen=True)
class ChurnStep:
    """One revision of the filter lists in a scenario's churn schedule.

    ``op`` selects the transformation applied to *every* list of the
    previous revision:

    * ``noop``    — re-parse the same text (a no-op reload);
    * ``reorder`` — shuffle rule order with ``seed`` (decisions unchanged);
    * ``rename``  — append ``suffix`` to each list name (what a
      provider rename looks like to :func:`~repro.filterlists.maintenance.diff_lists`);
    * ``drop``    — remove ``fraction`` of the rules, chosen by ``seed``;
    * ``add``     — append ``count`` generated ``||churn…^`` rules.
    """

    op: str
    seed: int = 0
    fraction: float = 0.0
    suffix: str = ""
    count: int = 0

    def __post_init__(self) -> None:
        if self.op not in CHURN_OPS:
            raise ValueError(f"unknown churn op {self.op!r}; one of {CHURN_OPS}")
        if not 0.0 <= self.fraction < 1.0:
            raise ValueError(f"fraction must be in [0, 1), got {self.fraction}")
        if self.count < 0:
            raise ValueError(f"count must be >= 0, got {self.count}")


@dataclass(frozen=True)
class TraceSpec:
    """The request workload replayed through :class:`BlockingService`.

    The trace is a seeded sample of the web's planned requests (in
    canonical site/script/method order), optionally mutated by
    cache-buster *token drift*: ``drift`` is the fraction of sampled
    requests whose URL gains a seeded random-digit query token — the
    adversarial input for the digit-run-normalized decision cache.
    ``chunks`` is how many slices the service replay splits the trace
    into; churn reloads land between chunks (hot reload under load).
    """

    requests: int = 400
    seed: int = 101
    drift: float = 0.0
    drift_seed: int = 17
    chunks: int = 1

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError("trace needs at least one request")
        if not 0.0 <= self.drift <= 1.0:
            raise ValueError(f"drift must be in [0, 1], got {self.drift}")
        if self.chunks < 1:
            raise ValueError("trace needs at least one chunk")


@dataclass(frozen=True)
class WebKnobs:
    """Opt-in transforms applied to the generated population, in a fixed
    order: internal pages first (they replay landing invocations), then
    CNAME cloaking, then method anonymization.  All default to off, so a
    spec with default knobs is exactly the calibrated population."""

    internal_site_fraction: float = 0.0
    internal_pages_per_site: int = 2
    internal_seed: int = 31
    cloaking_fraction: float = 0.0
    cloaking_seed: int = 23
    anonymize_fraction: float = 0.0
    anonymize_seed: int = 47

    def __post_init__(self) -> None:
        for name in ("internal_site_fraction", "cloaking_fraction", "anonymize_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.internal_pages_per_site < 1:
            raise ValueError("internal_pages_per_site must be >= 1")

    @property
    def any_enabled(self) -> bool:
        return (
            self.internal_site_fraction > 0
            or self.cloaking_fraction > 0
            or self.anonymize_fraction > 0
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """One named, fully-reproducible workload for the conformance matrix."""

    name: str
    description: str = ""
    sites: int = 80
    seed: int = 7
    cluster_nodes: int = 13
    threshold: float = 2.0
    failure_rate: float = 0.0
    web: WebKnobs = field(default_factory=WebKnobs)
    trace: TraceSpec = field(default_factory=TraceSpec)
    churn: tuple[ChurnStep, ...] = ()
    #: fast packs run in the tier-1 matrix test; slow ones only in the
    #: full (``-m slow``) matrix, the CLI, and the bench.
    fast: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario needs a name")
        if self.sites < 10:
            raise ValueError("scenario needs at least 10 sites")
        if not isinstance(self.churn, tuple):
            object.__setattr__(self, "churn", tuple(self.churn))

    def config(self) -> PipelineConfig:
        """The study config every pipeline-shaped execution path uses."""
        return PipelineConfig(
            sites=self.sites,
            seed=self.seed,
            cluster_nodes=self.cluster_nodes,
            threshold=self.threshold,
            failure_rate=self.failure_rate,
        )

    # -- lossless JSON round-trip ------------------------------------------
    def to_dict(self) -> dict:
        record = asdict(self)
        record["churn"] = [asdict(step) for step in self.churn]
        return record

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, no float surprises: every field is
        stored verbatim, so ``from_json(to_json(spec)) == spec``)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, record: dict) -> "ScenarioSpec":
        record = dict(record)
        record["web"] = WebKnobs(**record.get("web", {}))
        record["trace"] = TraceSpec(**record.get("trace", {}))
        record["churn"] = tuple(
            ChurnStep(**step) for step in record.get("churn", ())
        )
        known = {f.name for f in fields(cls)}
        unknown = set(record) - known
        if unknown:
            raise ValueError(f"unknown ScenarioSpec fields: {sorted(unknown)}")
        return cls(**record)

    @classmethod
    def from_json(cls, data: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(data))

    def scaled(self, sites: int) -> "ScenarioSpec":
        """The same scenario at a different crawl size (bench smoke mode)."""
        return replace(self, sites=sites)
