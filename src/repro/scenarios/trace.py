"""Workload traces: the request stream a scenario replays online.

A trace is a seeded sample of the synthetic web's *planned* requests, in
canonical order (websites by rank, scripts/methods/invocations in plan
order), each carrying the URL, resource type and initiating page — the
exact triple :meth:`BlockingService.decide` consumes and the offline
:class:`~repro.filterlists.oracle.FilterListOracle` labels.  Because the
sample is keyed on the spec's trace seed, the same spec always yields a
byte-identical trace, which is what lets the golden manifests pin the
decision stream's digest.

*Token drift* mutates a fraction of the sampled URLs with cache-buster
query tokens (seeded random digit runs).  Drifted URLs stress the
digit-run-normalized decision cache — many distinct URLs, one decision —
without changing what any single URL should decide to, so cross-path
identity must survive it.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass

from ..filterlists.oracle import FilterListOracle
from ..filterlists.rules import ResourceType
from ..webmodel.generator import SyntheticWeb
from .spec import TraceSpec

__all__ = ["TraceRequest", "build_trace", "decisions_digest", "offline_decisions"]

_DRIFT_KEYS = ("cb", "session", "uid", "ts")


@dataclass(frozen=True)
class TraceRequest:
    """One request of the replayable workload."""

    url: str
    resource_type: str
    page_url: str


def _planned_requests(web: SyntheticWeb) -> list[TraceRequest]:
    """Every planned request, in canonical plan order."""
    out: list[TraceRequest] = []
    for script in sorted(web.scripts, key=lambda s: s.url):
        for method in script.methods:
            for invocation in method.invocations:
                for request in invocation.requests:
                    out.append(
                        TraceRequest(
                            url=request.url,
                            resource_type=request.resource_type,
                            page_url=invocation.site,
                        )
                    )
    return out


def _drift_url(url: str, rng: random.Random) -> str:
    """Append a seeded cache-buster token (the classic tracker idiom)."""
    key = rng.choice(_DRIFT_KEYS)
    token = "".join(rng.choice("0123456789") for _ in range(rng.randint(6, 14)))
    joiner = "&" if "?" in url else "?"
    return f"{url}{joiner}{key}={token}"


def build_trace(web: SyntheticWeb, spec: TraceSpec) -> list[TraceRequest]:
    """The scenario's workload: seeded sample + optional token drift."""
    population = _planned_requests(web)
    rng = random.Random(spec.seed)
    if len(population) > spec.requests:
        indices = sorted(rng.sample(range(len(population)), spec.requests))
        sampled = [population[i] for i in indices]
    else:
        sampled = population
    if spec.drift <= 0.0:
        return sampled
    drift_rng = random.Random(spec.drift_seed)
    drifted: list[TraceRequest] = []
    for request in sampled:
        if drift_rng.random() < spec.drift:
            request = TraceRequest(
                url=_drift_url(request.url, drift_rng),
                resource_type=request.resource_type,
                page_url=request.page_url,
            )
        drifted.append(request)
    return drifted


def offline_decisions(
    oracle: FilterListOracle, trace: list[TraceRequest]
) -> list[dict]:
    """The offline oracle's verdict on every trace request, in order.

    This is the reference stream the online service must reproduce
    byte-for-byte (same URLs, same order, same labels)."""
    decisions = []
    for request in trace:
        resource = ResourceType.from_option(request.resource_type) or ResourceType.OTHER
        labeled = oracle.label_request(request.url, resource, request.page_url)
        decisions.append(
            {
                "url": request.url,
                "label": labeled.label.value,
                "blocked": labeled.label.is_tracking,
            }
        )
    return decisions


def decisions_digest(decisions: list[dict]) -> str:
    """sha256 over the canonical JSON decision stream."""
    payload = "\n".join(
        json.dumps(decision, sort_keys=True) for decision in decisions
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
