"""The scenario runner: every execution path, one verdict per scenario.

After PRs 1–4 the repo answers the same study five independent ways —
batch pipeline, streaming shards, process fan-out, compiled-artifact
fan-out, and the online service.  Each fast path was proven equivalent to
its predecessor *at the time it landed*; the runner makes that a standing
obligation over *diverse workloads*: it drives one
:class:`~repro.scenarios.spec.ScenarioSpec` through every path and
asserts that nothing observable depends on which path answered.

Per scenario the runner checks three identities:

* **report identity** — every pipeline-shaped path produces the same
  ``SiftReport.summary()`` (and labeled-request count);
* **shard-state identity** — every sharded path at the scenario's shard
  count produces byte-identical :class:`ShardState` JSON (sha256-pinned);
* **decision identity** — the online service, replaying the scenario's
  workload trace through its churn schedule, answers every chunk exactly
  as the offline oracle of the revision that answered it, and its
  final-state decision stream hashes to the offline reference digest.

Each identity is also pinned against a **committed golden manifest**
(``src/repro/scenarios/golden/<name>.json``), so a silent behaviour
change in *all* paths at once — the failure mode cross-path comparison
cannot see — still trips the matrix.  Regenerate goldens explicitly with
``trackersift scenario run --matrix --update-golden`` after an intended
behaviour change; the manifest embeds the spec's sha256, so a stale
golden for an edited pack fails loudly instead of comparing garbage.
"""

from __future__ import annotations

import hashlib
import json
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..core.engine import StreamingPipeline
from ..core.pipeline import TrackerSiftPipeline
from ..filterlists.compile import compile_lists
from ..filterlists.lists import default_lists
from ..filterlists.oracle import FilterListOracle
from ..filterlists.parser import ParsedList
from ..obs.ledger import Ledger, StreamHasher, diff_ledgers
from ..serve.service import BlockingService
from ..webmodel.generator import SyntheticWeb, SyntheticWebGenerator
from .churn import churn_revisions
from .packs import get_pack
from .spec import ScenarioSpec
from .trace import TraceRequest, build_trace, decisions_digest, offline_decisions

__all__ = [
    "EXECUTION_PATHS",
    "PathResult",
    "ScenarioOutcome",
    "ScenarioRunner",
    "GOLDEN_DIR",
]

#: path name → one-line description, in canonical run order.
EXECUTION_PATHS: dict[str, str] = {
    "batch": "TrackerSiftPipeline (retain mode, the historical batch path)",
    "stream-1": "StreamingPipeline at shards=1",
    "stream-13": "StreamingPipeline at the scenario's cluster shard count",
    "fanout-2": "StreamingPipeline with 2 process-pool shard workers",
    "artifact-fanout": "2-worker fan-out labeling through a compiled .tsoracle",
    "service": "BlockingService trace replay through the churn schedule",
}

GOLDEN_DIR = Path(__file__).parent / "golden"

#: pipeline-shaped paths (produce a SiftReport) vs the service path.
_PIPELINE_PATHS = ("batch", "stream-1", "stream-13", "fanout-2", "artifact-fanout")
#: paths that run at the scenario's shard count and expose ShardState.
_SHARDED_PATHS = ("stream-13", "fanout-2", "artifact-fanout")


@dataclass
class PathResult:
    """One execution path's observable output on one scenario."""

    path: str
    wall_seconds: float
    requests: int
    summary: list[dict] | None = None
    shard_state_sha256: str | None = None
    decisions_sha256: str | None = None
    #: this path's determinism fingerprint chain (see repro.obs.ledger).
    ledger: Ledger | None = None

    @property
    def requests_per_second(self) -> float:
        return self.requests / self.wall_seconds if self.wall_seconds > 0 else 0.0


@dataclass
class ScenarioOutcome:
    """Everything one scenario run produced, plus its verdicts."""

    spec: ScenarioSpec
    paths: dict[str, PathResult] = field(default_factory=dict)
    #: canonical values (from the first pipeline path / the offline oracle).
    summary: list[dict] | None = None
    shard_state_sha256: str | None = None
    decisions_sha256: str | None = None
    labeled_requests: int = 0
    pages_crawled: int = 0
    trace_requests: int = 0
    revisions: int = 1
    web_sites: int = 0
    #: cross-path disagreements (empty == all paths agree).
    mismatches: list[str] = field(default_factory=list)
    #: disagreements with the committed golden manifest.
    golden_mismatches: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches and not self.golden_mismatches

    def problems(self) -> list[str]:
        return self.mismatches + self.golden_mismatches


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _summary_sha(summary: list[dict]) -> str:
    return _sha256(json.dumps(summary, sort_keys=True))


class ScenarioRunner:
    """Drives scenario packs through the execution-path matrix.

    ``paths`` selects a subset of :data:`EXECUTION_PATHS` (default: all).
    ``golden_dir`` points at the committed manifests; tests that need to
    exercise golden-divergence handling point it at a scratch directory
    instead.  The bench and the CLI always run against the committed
    manifests at each pack's committed scale.
    """

    def __init__(
        self,
        *,
        paths: tuple[str, ...] | None = None,
        golden_dir: str | Path | None = None,
        use_golden: bool = True,
    ) -> None:
        selected = tuple(paths) if paths is not None else tuple(EXECUTION_PATHS)
        unknown = [p for p in selected if p not in EXECUTION_PATHS]
        if unknown:
            raise ValueError(
                f"unknown execution path(s) {unknown}; "
                f"known: {', '.join(EXECUTION_PATHS)}"
            )
        if not selected:
            raise ValueError("need at least one execution path")
        # Keep canonical order regardless of how the caller listed them.
        self.paths = tuple(p for p in EXECUTION_PATHS if p in selected)
        self.golden_dir = Path(golden_dir) if golden_dir is not None else GOLDEN_DIR
        self.use_golden = use_golden

    # -- workload construction ---------------------------------------------
    @staticmethod
    def build_web(spec: ScenarioSpec) -> SyntheticWeb:
        """Generate the population and apply the spec's transforms.

        Fixed order — internal pages, then CNAME cloaking, then method
        anonymization — so a spec's meaning never depends on import order.
        Transforms mutate the web in place; the runner builds one web per
        scenario and shares it across paths (no path mutates it).
        """
        web = SyntheticWebGenerator(sites=spec.sites, seed=spec.seed).build()
        knobs = spec.web
        if knobs.internal_site_fraction > 0:
            from ..webmodel.internal import add_internal_pages

            add_internal_pages(
                web,
                pages_per_site=knobs.internal_pages_per_site,
                site_fraction=knobs.internal_site_fraction,
                seed=knobs.internal_seed,
            )
        if knobs.cloaking_fraction > 0:
            from ..webmodel.cloaking import apply_cname_cloaking

            apply_cname_cloaking(
                web, fraction=knobs.cloaking_fraction, seed=knobs.cloaking_seed
            )
        if knobs.anonymize_fraction > 0:
            from ..webmodel.anonymize import anonymize_methods

            anonymize_methods(
                web, fraction=knobs.anonymize_fraction, seed=knobs.anonymize_seed
            )
        return web

    # -- execution ---------------------------------------------------------
    def run(
        self, scenario: ScenarioSpec | str, *, update_golden: bool = False
    ) -> ScenarioOutcome:
        """Run one scenario through every selected path and judge it."""
        spec = get_pack(scenario) if isinstance(scenario, str) else scenario
        outcome = ScenarioOutcome(spec=spec)

        web = self.build_web(spec)
        outcome.web_sites = len(web.websites)
        revisions = churn_revisions(default_lists(), spec.churn)
        outcome.revisions = len(revisions)
        final_lists = revisions[-1]
        trace = build_trace(web, spec.trace)
        outcome.trace_requests = len(trace)

        # The offline reference decision stream: what *any* path that
        # labels this workload with the final rules must reproduce.
        reference = offline_decisions(FilterListOracle(*final_lists), trace)
        outcome.decisions_sha256 = decisions_digest(reference)

        for path in self.paths:
            if path == "service":
                outcome.paths[path] = self._run_service(
                    spec, trace, revisions, outcome
                )
            else:
                outcome.paths[path] = self._run_pipeline(
                    path, spec, web, final_lists, outcome
                )

        self._check_cross_path(outcome)
        if update_golden:
            self.write_golden(outcome)
        elif self.use_golden:
            self._check_golden(outcome)
        return outcome

    def run_matrix(
        self,
        specs: tuple[ScenarioSpec, ...],
        *,
        update_golden: bool = False,
    ) -> list[ScenarioOutcome]:
        return [
            self.run(spec, update_golden=update_golden) for spec in specs
        ]

    def _run_pipeline(
        self,
        path: str,
        spec: ScenarioSpec,
        web: SyntheticWeb,
        final_lists: tuple[ParsedList, ...],
        outcome: ScenarioOutcome,
    ) -> PathResult:
        config = spec.config()
        ledger = Ledger(path)
        started = time.perf_counter()
        engine: StreamingPipeline | None = None
        if path == "batch":
            result = TrackerSiftPipeline(
                config, oracle=FilterListOracle(*final_lists), ledger=ledger
            ).run(web)
        elif path == "stream-1":
            result = StreamingPipeline(
                config,
                shards=1,
                oracle=FilterListOracle(*final_lists),
                ledger=ledger,
            ).run(web)
        elif path == "stream-13":
            engine = StreamingPipeline(
                config,
                shards=spec.cluster_nodes,
                oracle=FilterListOracle(*final_lists),
                ledger=ledger,
            )
            result = engine.run(web)
        elif path == "fanout-2":
            engine = StreamingPipeline(
                config,
                shards=spec.cluster_nodes,
                workers=2,
                oracle=FilterListOracle(*final_lists),
                ledger=ledger,
            )
            result = engine.run(web)
        elif path == "artifact-fanout":
            with tempfile.TemporaryDirectory(
                prefix="trackersift-scenario-"
            ) as scratch:
                artifact = str(Path(scratch) / "oracle.tsoracle")
                compile_lists(artifact, *final_lists)
                engine = StreamingPipeline(
                    config,
                    shards=spec.cluster_nodes,
                    workers=2,
                    oracle=FilterListOracle.from_artifact(artifact),
                    ledger=ledger,
                )
                result = engine.run(web)
        else:  # pragma: no cover - guarded in __init__
            raise ValueError(f"not a pipeline path: {path}")
        wall = time.perf_counter() - started

        labeled = int(result.notes.get("labeled_requests", 0)) or len(
            result.labeled.requests
        )
        record = PathResult(
            path=path,
            wall_seconds=wall,
            requests=labeled,
            summary=result.report.summary(),
            ledger=ledger,
        )
        if engine is not None:
            record.shard_state_sha256 = _sha256(
                "\n".join(state.to_json() for state in engine.shard_states())
            )
        if outcome.summary is None:
            outcome.summary = record.summary
            outcome.labeled_requests = labeled
            outcome.pages_crawled = result.pages_crawled
        if outcome.shard_state_sha256 is None and record.shard_state_sha256:
            outcome.shard_state_sha256 = record.shard_state_sha256
        return record

    def _run_service(
        self,
        spec: ScenarioSpec,
        trace: list[TraceRequest],
        revisions: list[tuple[ParsedList, ...]],
        outcome: ScenarioOutcome,
    ) -> PathResult:
        """Replay the trace through a live service under the churn schedule.

        The trace is split into ``spec.trace.chunks`` contiguous chunks;
        after every chunk (except the last) the service hot-reloads one
        pending revision.  Each chunk's decisions are verified against the
        offline oracle of the revision that answered it — mid-churn
        correctness, not just end-state correctness.  Any reloads the
        chunk count left unapplied land afterwards, then the *full* trace
        replays against the final snapshot; that stream's digest is the
        path's decision fingerprint.
        """
        started = time.perf_counter()
        service = BlockingService(*revisions[0])
        # The service's determinism chain, plus an offline-built reference
        # chain fed from the *expected* decisions — the two must agree
        # stage for stage (snapshot identity + decision-stream digest per
        # revision, in revision order).
        ledger = service.attach_ledger(Ledger("service"))
        reference_streams: dict[int, StreamHasher] = {}
        rev_oracles: dict[int, FilterListOracle] = {}

        def oracle_for(rev_index: int) -> FilterListOracle:
            if rev_index not in rev_oracles:
                rev_oracles[rev_index] = FilterListOracle(*revisions[rev_index])
            return rev_oracles[rev_index]

        def replay(chunk: list[TraceRequest]) -> list[dict]:
            return [
                {
                    "url": decision["url"],
                    "label": decision["label"],
                    "blocked": decision["blocked"],
                }
                for decision in (
                    service.decide(t.url, t.resource_type, t.page_url)
                    for t in chunk
                )
            ]

        chunk_count = spec.trace.chunks
        size = max(1, -(-len(trace) // chunk_count))
        chunks = [trace[i : i + size] for i in range(0, len(trace), size)]
        decided = 0
        rev_index = 0
        for index, chunk in enumerate(chunks):
            served = replay(chunk)
            decided += len(served)
            expected = offline_decisions(oracle_for(rev_index), chunk)
            reference_streams.setdefault(
                rev_index + 1, StreamHasher()
            ).update_many(
                f"{d['url']}|{d['label']}|{int(d['blocked'])}"
                for d in expected
            )
            if served != expected:
                first = next(
                    (
                        s["url"]
                        for s, e in zip(served, expected)
                        if s != e
                    ),
                    "?",
                )
                outcome.mismatches.append(
                    f"service: chunk {index} (revision {rev_index}) diverged "
                    f"from the offline oracle (first at {first})"
                )
            if index < len(chunks) - 1 and rev_index + 1 < len(revisions):
                rev_index += 1
                service.reload(*revisions[rev_index])
        # Catch up on reloads the chunk count did not cover, so the
        # service always finishes on the schedule's final revision.
        while rev_index + 1 < len(revisions):
            rev_index += 1
            service.reload(*revisions[rev_index])
        if service.snapshot.revision != len(revisions):
            outcome.mismatches.append(
                f"service: snapshot revision {service.snapshot.revision} "
                f"after {len(revisions) - 1} reload(s), expected {len(revisions)}"
            )
        # Flush the chain *before* the verification-only full replay —
        # that replay re-decides the whole trace against the final
        # snapshot and must not pollute the per-revision streams.
        service.finalize_ledger()
        reference = Ledger("service-reference")
        for revision in range(1, len(revisions) + 1):
            reference.record(
                "serve.snapshot",
                {
                    "revision": revision,
                    "rule_count": oracle_for(revision - 1).rule_count,
                },
                revision=revision,
            )
            hasher = reference_streams.get(revision)
            reference.record_digest(
                "serve.decisions",
                (hasher or StreamHasher()).hexdigest(),
                revision=revision,
            )
        diff = diff_ledgers(reference, ledger)
        if not diff["identical"]:
            outcome.mismatches.append(
                f"service: ledger diverged from the offline reference at "
                f"stage {diff['stage']!r} (index {diff['index']})"
            )
        final = replay(trace)
        decided += len(final)
        record = PathResult(
            path="service",
            wall_seconds=time.perf_counter() - started,
            requests=decided,
            decisions_sha256=decisions_digest(final),
            ledger=ledger,
        )
        return record

    # -- verdicts ----------------------------------------------------------
    def _check_cross_path(self, outcome: ScenarioOutcome) -> None:
        pipeline = [
            outcome.paths[p] for p in _PIPELINE_PATHS if p in outcome.paths
        ]
        for record in pipeline[1:]:
            if record.summary != pipeline[0].summary:
                outcome.mismatches.append(
                    f"{record.path}: report diverged from {pipeline[0].path}"
                )
            if record.requests != pipeline[0].requests:
                outcome.mismatches.append(
                    f"{record.path}: labeled {record.requests} requests, "
                    f"{pipeline[0].path} labeled {pipeline[0].requests}"
                )
            if record.ledger is not None and pipeline[0].ledger is not None:
                diff = diff_ledgers(pipeline[0].ledger, record.ledger)
                if not diff["identical"]:
                    outcome.mismatches.append(
                        f"{record.path}: ledger diverged from "
                        f"{pipeline[0].path} at stage {diff['stage']!r} "
                        f"(index {diff['index']})"
                    )
        sharded = [
            outcome.paths[p] for p in _SHARDED_PATHS if p in outcome.paths
        ]
        for record in sharded[1:]:
            if record.shard_state_sha256 != sharded[0].shard_state_sha256:
                outcome.mismatches.append(
                    f"{record.path}: ShardState JSON diverged from "
                    f"{sharded[0].path}"
                )
        service = outcome.paths.get("service")
        if service is not None and (
            service.decisions_sha256 != outcome.decisions_sha256
        ):
            outcome.mismatches.append(
                "service: final-state decision stream diverged from the "
                "offline oracle's reference digest"
            )

    # -- golden manifests --------------------------------------------------
    def golden_path(self, spec: ScenarioSpec) -> Path:
        return self.golden_dir / f"{spec.name}.json"

    def _manifest(self, outcome: ScenarioOutcome) -> dict:
        spec = outcome.spec
        return {
            "scenario": spec.name,
            "spec": spec.to_dict(),
            "spec_sha256": _sha256(spec.to_json()),
            "summary": outcome.summary,
            "summary_sha256": (
                _summary_sha(outcome.summary) if outcome.summary else None
            ),
            "shard_state_sha256": outcome.shard_state_sha256,
            "decisions_sha256": outcome.decisions_sha256,
            "labeled_requests": outcome.labeled_requests,
            "pages_crawled": outcome.pages_crawled,
            "trace_requests": outcome.trace_requests,
            "revisions": outcome.revisions,
            "web_sites": outcome.web_sites,
        }

    def write_golden(self, outcome: ScenarioOutcome) -> Path:
        path = self.golden_path(outcome.spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self._manifest(outcome), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path

    def _check_golden(self, outcome: ScenarioOutcome) -> None:
        path = self.golden_path(outcome.spec)
        if not path.exists():
            outcome.golden_mismatches.append(
                f"golden manifest {path} missing; regenerate with "
                "`trackersift scenario run --matrix --update-golden`"
            )
            return
        golden = json.loads(path.read_text(encoding="utf-8"))
        current = self._manifest(outcome)
        if golden.get("spec_sha256") != current["spec_sha256"]:
            outcome.golden_mismatches.append(
                f"golden manifest {path.name} was generated from a "
                "different spec; the pack changed — regenerate the golden "
                "if the change is intended"
            )
            return
        keys = ["decisions_sha256", "trace_requests", "revisions", "web_sites"]
        if outcome.summary is not None:  # a pipeline path ran
            keys += ["summary_sha256", "labeled_requests", "pages_crawled"]
        if outcome.shard_state_sha256 is not None:  # a sharded path ran
            keys.append("shard_state_sha256")
        for key in keys:
            if golden.get(key) != current[key]:
                outcome.golden_mismatches.append(
                    f"{key} diverged from golden {path.name}: "
                    f"golden {golden.get(key)!r} vs run {current[key]!r}"
                )
