"""Filter-list churn schedules: deterministic list-revision sequences.

The paper's framing leans on filter lists being community-maintained and
slow-moving; operationally that means the serving layer sees a *sequence*
of list revisions — reorders from upstream merges, renames when providers
rebrand, rule drops and additions on every sync.  This module turns a
:class:`~repro.scenarios.spec.ChurnStep` schedule into concrete
:class:`~repro.filterlists.parser.ParsedList` revisions, by round-tripping
through canonical rule *text* (``rule.text``) so every revision is exactly
what a reload from disk would parse.

Revision 0 is always the scenario's base lists; step *i* produces revision
*i + 1* from revision *i*.  All operations are seeded — the same schedule
always yields byte-identical revisions.
"""

from __future__ import annotations

import random

from ..filterlists.parser import ParsedList, parse_filter_list
from .spec import ChurnStep

__all__ = ["apply_churn_step", "churn_revisions"]


def _reparse(name: str, lines: list[str]) -> ParsedList:
    return parse_filter_list("\n".join(lines), name=name)


def apply_churn_step(
    lists: tuple[ParsedList, ...], step: ChurnStep
) -> tuple[ParsedList, ...]:
    """One revision transition; never mutates the input lists."""
    out: list[ParsedList] = []
    for index, parsed in enumerate(lists):
        lines = [rule.text for rule in parsed.rules]
        name = parsed.name
        if step.op == "reorder":
            random.Random(step.seed * 1_000_003 + index).shuffle(lines)
        elif step.op == "rename":
            name = parsed.name + step.suffix
        elif step.op == "drop":
            rng = random.Random(step.seed * 1_000_003 + index)
            keep = max(1, round(len(lines) * (1.0 - step.fraction)))
            kept_indices = sorted(rng.sample(range(len(lines)), keep))
            lines = [lines[i] for i in kept_indices]
        elif step.op == "add":
            lines = lines + [
                f"||churn{step.seed}-{index}-{i}.example^"
                for i in range(step.count)
            ]
        # "noop" falls through: same lines, same name, fresh objects —
        # exactly what re-reading an unchanged file from disk produces.
        out.append(_reparse(name, lines))
    return tuple(out)


def churn_revisions(
    base: tuple[ParsedList, ...], schedule: tuple[ChurnStep, ...]
) -> list[tuple[ParsedList, ...]]:
    """All list revisions of a schedule; ``[0]`` is ``base`` itself.

    The *final* revision is the rule set every offline execution path
    labels with; the service path starts at revision 0 and reloads its way
    through the rest, so by the end of a scenario every path answered from
    the same rules.
    """
    revisions = [base]
    for step in schedule:
        revisions.append(apply_churn_step(revisions[-1], step))
    return revisions
