"""Synthetic web population — the substitute for the paper's 100K crawl.

The generator builds a deterministic, seeded population of publishers,
trackers, CDNs and mixed organisations whose planned traffic reproduces the
paper's published marginals (Tables 1-2) at any crawl scale.  The
TrackerSift pipeline never reads these plans; it re-derives everything from
browser events plus the filter-list oracle.
"""

from .allocation import (
    allocate_volumes,
    impurity_for_pure,
    largest_remainder,
    log_ratio,
    split_mixed_volume,
    split_mixed_volumes,
    zipf_weights,
)
from .bundler import bundle_scripts, inline_script, webpack_bundle_name
from .calibration import (
    PAPER,
    LevelTargets,
    PaperTargets,
    ScaledTargets,
    scale_targets,
)
from .anonymize import ANONYMOUS_NAME, AnonymizeManifest, anonymize_methods
from .cloaking import CloakingManifest, apply_cname_cloaking
from .generator import SyntheticWeb, SyntheticWebGenerator, generate_web
from .internal import InternalPagesManifest, add_internal_pages
from .naming import NameFactory
from .resources import (
    Category,
    DomainSpec,
    Frame,
    HostnameSpec,
    Invocation,
    MethodSpec,
    PlannedRequest,
    ScriptKind,
    ScriptSpec,
)
from .website import (
    CORE_FEATURES,
    SECONDARY_FEATURES,
    Functionality,
    FunctionalityTier,
    Website,
)

__all__ = [
    "Category",
    "Frame",
    "PlannedRequest",
    "Invocation",
    "MethodSpec",
    "ScriptKind",
    "ScriptSpec",
    "HostnameSpec",
    "DomainSpec",
    "Functionality",
    "FunctionalityTier",
    "Website",
    "CORE_FEATURES",
    "SECONDARY_FEATURES",
    "LevelTargets",
    "PaperTargets",
    "PAPER",
    "ScaledTargets",
    "scale_targets",
    "SyntheticWeb",
    "SyntheticWebGenerator",
    "generate_web",
    "CloakingManifest",
    "apply_cname_cloaking",
    "InternalPagesManifest",
    "add_internal_pages",
    "AnonymizeManifest",
    "anonymize_methods",
    "ANONYMOUS_NAME",
    "NameFactory",
    "bundle_scripts",
    "inline_script",
    "webpack_bundle_name",
    "zipf_weights",
    "largest_remainder",
    "allocate_volumes",
    "split_mixed_volume",
    "split_mixed_volumes",
    "impurity_for_pure",
    "log_ratio",
]
