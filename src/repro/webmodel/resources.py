"""Entity models for the synthetic web population.

The generator plans the crawl *structurally*: every website, script, method
and network request is decided ahead of time (seeded and deterministic), and
the simulated browser then replays the plan, emitting DevTools-style events.
The TrackerSift pipeline never sees these plans — it re-derives everything
from the event log plus the filter-list oracle, which is what makes the
reproduction a real measurement rather than a tautology.

Category semantics (generator *intent*, not pipeline output):

* ``TRACKING`` entities serve/initiate (almost) exclusively tracking
  requests — their log-ratio lands in ``[2, inf]``.
* ``FUNCTIONAL`` entities the mirror image, ratio in ``[-inf, -2]``.
* ``MIXED`` entities carry both behaviours with ratio inside ``(-2, 2)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

__all__ = [
    "Category",
    "Frame",
    "PlannedRequest",
    "Invocation",
    "MethodSpec",
    "ScriptKind",
    "ScriptSpec",
    "HostnameSpec",
    "DomainSpec",
]


class Category(str, Enum):
    """Generator intent for an entity at any granularity."""

    TRACKING = "tracking"
    FUNCTIONAL = "functional"
    MIXED = "mixed"


@dataclass(frozen=True, slots=True)
class Frame:
    """One call-stack frame: a method within a script."""

    script_url: str
    method: str

    def __str__(self) -> str:  # pragma: no cover - convenience
        return f"{self.script_url}@{self.method}()"


@dataclass(frozen=True, slots=True)
class PlannedRequest:
    """One network request the browser will issue during a page load.

    ``tracking`` is the generator's intent; the URL is synthesised so the
    filter-list oracle independently recovers the same label (validated by
    the test suite, never assumed by the pipeline).
    """

    url: str
    tracking: bool
    resource_type: str = "xmlhttprequest"


@dataclass(slots=True)
class Invocation:
    """One invocation of a method on a concrete page.

    ``caller_chain`` lists the frames *above* the initiator frame, nearest
    caller first (DevTools order).  ``async_chain`` is the stack that
    preceded an asynchronous hop; per the paper it is *prepended* to the
    stack of the request.  ``args`` model the invocation context used by the
    guard-inference extension (paper §5, "Blocking mixed scripts").
    """

    site: str
    requests: list[PlannedRequest] = field(default_factory=list)
    caller_chain: tuple[Frame, ...] = ()
    async_chain: tuple[Frame, ...] = ()
    args: dict[str, str] = field(default_factory=dict)
    sequence: int = 0


@dataclass(slots=True)
class MethodSpec:
    """A named method inside a script, with its planned invocations."""

    name: str
    category: Category
    invocations: list[Invocation] = field(default_factory=list)
    #: Probability the crawler ever observes this method (coverage gaps are
    #: what make naive surrogate generation risky — paper §5).
    coverage: float = 1.0
    #: Source position.  Anonymous functions all report the same (empty)
    #: name in stack traces; line/column is the only way to tell them
    #: apart — the paper's second stated limitation.
    line: int = 0
    column: int = 0

    @property
    def planned_requests(self) -> list[PlannedRequest]:
        return [r for inv in self.invocations for r in inv.requests]

    def request_counts(self) -> tuple[int, int]:
        """(tracking, functional) counts across all invocations."""
        tracking = functional = 0
        for request in self.planned_requests:
            if request.tracking:
                tracking += 1
            else:
                functional += 1
        return tracking, functional


class ScriptKind(str, Enum):
    """How the script is delivered — the circumvention axis of paper §5."""

    EXTERNAL = "external"
    INLINE = "inline"
    BUNDLED = "bundled"


@dataclass(slots=True)
class ScriptSpec:
    """A JavaScript resource: a URL identity plus a set of methods.

    External scripts have a real URL; inline scripts use the page URL with
    an ``#inline-N`` suffix (DevTools reports the document URL for inline
    code); bundled scripts are produced by :mod:`repro.webmodel.bundler`
    and record the originally separate sources in ``bundle_sources``.
    """

    url: str
    category: Category
    kind: ScriptKind = ScriptKind.EXTERNAL
    methods: list[MethodSpec] = field(default_factory=list)
    sites: list[str] = field(default_factory=list)
    bundle_sources: tuple[str, ...] = ()

    def method(self, name: str) -> MethodSpec:
        for method in self.methods:
            if method.name == name:
                return method
        raise KeyError(f"{self.url} has no method {name!r}")

    def request_counts(self) -> tuple[int, int]:
        tracking = functional = 0
        for method in self.methods:
            t, f = method.request_counts()
            tracking += t
            functional += f
        return tracking, functional


@dataclass(slots=True)
class HostnameSpec:
    """A hostname under some domain, with planned request volume."""

    host: str
    category: Category
    tracking_requests: int = 0
    functional_requests: int = 0

    @property
    def total_requests(self) -> int:
        return self.tracking_requests + self.functional_requests


@dataclass(slots=True)
class DomainSpec:
    """An eTLD+1 with its hostnames."""

    domain: str
    category: Category
    hostnames: list[HostnameSpec] = field(default_factory=list)

    def request_counts(self) -> tuple[int, int]:
        tracking = sum(h.tracking_requests for h in self.hostnames)
        functional = sum(h.functional_requests for h in self.hostnames)
        return tracking, functional

    @property
    def total_requests(self) -> int:
        t, f = self.request_counts()
        return t + f
