"""Deterministic allocators used by the population generator.

The generator has to hand out integer request budgets to entities so that

* per-class totals hit the calibrated targets exactly,
* every entity's log-ratio lands in the class it was assigned
  (tracking ``>= 2``, functional ``<= -2``, mixed strictly inside), and
* volumes are heavy-tailed (a few giants, a long tail), like real traffic.

Everything is driven by an explicit :class:`random.Random` so a seed fully
determines the population.
"""

from __future__ import annotations

import math
import random

from ..logratio import log_ratio

__all__ = [
    "zipf_weights",
    "largest_remainder",
    "allocate_volumes",
    "split_mixed_volume",
    "split_mixed_volumes",
    "impurity_for_pure",
    "log_ratio",
]


def zipf_weights(n: int, exponent: float = 0.9) -> list[float]:
    """Zipf-like weights ``1/rank^exponent`` for ``n`` entities."""
    if n <= 0:
        return []
    return [1.0 / (rank**exponent) for rank in range(1, n + 1)]


def largest_remainder(
    weights: list[float], total: int, minimum: int = 0
) -> list[int]:
    """Apportion ``total`` integer units proportionally to ``weights``.

    Uses the largest-remainder method, then repairs any entries below
    ``minimum`` by taking units from the largest entries.  The result always
    sums exactly to ``total``.
    """
    n = len(weights)
    if n == 0:
        if total:
            raise ValueError("cannot allocate a positive total to zero entities")
        return []
    if total < n * minimum:
        raise ValueError(
            f"total {total} cannot give {n} entities at least {minimum} each"
        )
    weight_sum = sum(weights)
    if weight_sum <= 0:
        weights = [1.0] * n
        weight_sum = float(n)
    quotas = [w / weight_sum * total for w in weights]
    result = [int(q) for q in quotas]
    remainders = sorted(
        range(n), key=lambda i: (quotas[i] - result[i]), reverse=True
    )
    shortfall = total - sum(result)
    for i in remainders[:shortfall]:
        result[i] += 1

    # Repair the minimum constraint.
    donors = sorted(range(n), key=lambda i: result[i], reverse=True)
    for i in range(n):
        while result[i] < minimum:
            for j in donors:
                if j != i and result[j] > minimum:
                    result[j] -= 1
                    result[i] += 1
                    break
            else:  # pragma: no cover - guarded by the total check above
                raise ValueError("repair failed")
    return result


def allocate_volumes(
    n: int,
    total: int,
    rng: random.Random,
    *,
    minimum: int = 1,
    exponent: float = 0.9,
) -> list[int]:
    """Heavy-tailed integer volumes for ``n`` entities summing to ``total``.

    The rank order is shuffled so entity index does not correlate with size.
    """
    weights = zipf_weights(n, exponent)
    rng.shuffle(weights)
    return largest_remainder(weights, total, minimum=minimum)


def split_mixed_volume(
    volume: int,
    rng: random.Random,
    *,
    ratio_bound: float = 1.6,
    ratio_mean: float = 0.0,
    ratio_sigma: float = 0.7,
) -> tuple[int, int]:
    """Split one mixed entity's volume into (tracking, functional).

    The target log-ratio is sampled from a clipped normal so the population
    forms the central hump of Figure 3; both sides are kept >= 1 and the
    realised ratio stays strictly inside ``(-2, 2)``.
    """
    if volume < 2:
        raise ValueError("a mixed entity needs at least 2 requests")
    ratio = max(-ratio_bound, min(ratio_bound, rng.gauss(ratio_mean, ratio_sigma)))
    share = 10**ratio / (1 + 10**ratio)
    tracking = round(volume * share)
    tracking = max(1, min(volume - 1, tracking))
    functional = volume - tracking
    # Large volumes could still round onto the boundary; nudge inward.
    while abs(log_ratio(tracking, functional)) >= 2.0:
        if tracking > functional:
            tracking -= 1
            functional += 1
        else:
            tracking += 1
            functional -= 1
    return tracking, functional


def split_mixed_volumes(
    volumes: list[int],
    target_tracking: int,
    target_functional: int,
    rng: random.Random,
    *,
    ratio_sigma: float = 0.7,
    wide_tail_share: float = 0.06,
) -> list[tuple[int, int]]:
    """Split many mixed volumes so class totals are hit *exactly*.

    A small ``wide_tail_share`` of entities get ratios in ``(1, 2)`` —
    they are what makes the Figure 4 threshold-sensitivity curve rise
    between thresholds 1 and 2 before it plateaus.
    """
    total = sum(volumes)
    if total != target_tracking + target_functional:
        raise ValueError(
            f"volumes sum to {total}, targets sum to "
            f"{target_tracking + target_functional}"
        )
    mean = (
        math.log10(target_tracking / target_functional)
        if target_tracking and target_functional
        else 0.0
    )
    splits: list[tuple[int, int]] = []
    for volume in volumes:
        if rng.random() < wide_tail_share and volume >= 12:
            # Deliberately near-threshold entity: |ratio| in (1, 2).
            magnitude = rng.uniform(1.05, 1.8) * (1 if rng.random() < 0.5 else -1)
            splits.append(
                split_mixed_volume(
                    volume, rng, ratio_mean=magnitude, ratio_sigma=0.1
                )
            )
        else:
            splits.append(
                split_mixed_volume(volume, rng, ratio_mean=mean, ratio_sigma=ratio_sigma)
            )

    # Repair pass: shift single units between classes until totals match,
    # never letting any entity leave the mixed band.
    def tracking_total() -> int:
        return sum(t for t, _ in splits)

    delta = target_tracking - tracking_total()
    order = list(range(len(splits)))
    rng.shuffle(order)
    guard = 0
    while delta != 0:
        moved = False
        for i in order:
            if delta == 0:
                break
            t, f = splits[i]
            if delta > 0 and f > 1:
                candidate = (t + 1, f - 1)
            elif delta < 0 and t > 1:
                candidate = (t - 1, f + 1)
            else:
                continue
            if abs(log_ratio(*candidate)) < 2.0:
                splits[i] = candidate
                delta += -1 if delta > 0 else 1
                moved = True
        guard += 1
        if not moved or guard > 10_000:  # pragma: no cover - safety valve
            raise RuntimeError("could not balance mixed splits to targets")
    return splits


def impurity_for_pure(
    volume: int,
    rng: random.Random,
    *,
    impurity_chance: float = 0.35,
    min_ratio: float = 2.3,
) -> int:
    """Opposite-class request count for a *pure* entity.

    Real tracking domains still serve the odd functional asset (and vice
    versa); giving large pure entities a trickle of opposite traffic spreads
    the outer peaks of Figure 3 over ``[2, 5]`` instead of collapsing them
    onto ``±inf``.  The returned impurity keeps ``|ratio| >= min_ratio``.
    """
    if volume < 2 or rng.random() > impurity_chance:
        return 0
    ratio = rng.uniform(min_ratio, 4.5)
    impurity = int(volume / 10**ratio)
    return max(0, impurity)
