"""Internal-page crawling extension (paper §5, Limitations).

The study crawls landing pages only and notes "the results might vary for
internal pages", citing Aqeel et al.'s landing-vs-internal discrepancy.
This module extends a generated population with internal pages so the
pipeline can quantify that variation:

* each selected site gains ``pages_per_site`` internal article pages,
* the landing page's scripts re-run there, with tracking invocations
  replayed *more* often than functional ones (retargeting pixels and
  scroll-analytics fire on every article; one-time setup fetches do not),
* each internal page adds first-party article content fetches.

The transform is opt-in and returns a manifest; the default population
stays exactly as calibrated.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .generator import SyntheticWeb
from .resources import Frame, Invocation, MethodSpec, PlannedRequest, ScriptSpec
from .resources import Category, ScriptKind
from .website import Website

__all__ = ["InternalPagesManifest", "add_internal_pages"]


@dataclass(frozen=True)
class InternalPagesManifest:
    """What the transform added."""

    pages_added: int
    tracking_requests_added: int
    functional_requests_added: int
    sites_extended: int

    @property
    def requests_added(self) -> int:
        return self.tracking_requests_added + self.functional_requests_added


def add_internal_pages(
    web: SyntheticWeb,
    *,
    pages_per_site: int = 2,
    site_fraction: float = 0.5,
    tracking_replay: float = 0.85,
    functional_replay: float = 0.35,
    seed: int = 31,
) -> InternalPagesManifest:
    """Extend ``web`` with internal pages; mutates it in place.

    ``tracking_replay`` / ``functional_replay`` are the probabilities that
    a landing-page invocation of that label replays on each internal page —
    the asymmetry is what shifts the ratio distribution on internal crawls.
    """
    if pages_per_site < 1:
        raise ValueError("pages_per_site must be >= 1")
    rng = random.Random(seed)
    next_rank = max(site.rank for site in web.websites) + 1

    pages_added = 0
    tracking_added = 0
    functional_added = 0
    sites_extended = 0
    new_websites: list[Website] = []

    landing_pages = list(web.websites)
    for site in landing_pages:
        if not site.scripts or rng.random() >= site_fraction:
            continue
        sites_extended += 1
        for page_index in range(pages_per_site):
            page_url = f"{site.url}articles/{page_index + 1}/"
            page = Website(url=page_url, rank=next_rank)
            next_rank += 1
            pages_added += 1

            # Replay the landing page's script invocations.
            for script in site.scripts:
                replayed = False
                for method in script.methods:
                    for invocation in list(method.invocations):
                        if invocation.site != site.url:
                            continue
                        is_tracking = any(r.tracking for r in invocation.requests)
                        replay = tracking_replay if is_tracking else functional_replay
                        if rng.random() >= replay:
                            continue
                        clone = Invocation(
                            site=page_url,
                            requests=list(invocation.requests),
                            caller_chain=invocation.caller_chain,
                            async_chain=invocation.async_chain,
                            args=dict(invocation.args),
                        )
                        method.invocations.append(clone)
                        replayed = True
                        for request in clone.requests:
                            if request.tracking:
                                tracking_added += 1
                            else:
                                functional_added += 1
                if replayed or script.kind is not ScriptKind.INLINE:
                    page.scripts.append(script)
                    if page_url not in script.sites:
                        script.sites.append(page_url)

            # First-party article content, fetched by a page-local script.
            article = _article_script(page_url, site.url, rng)
            page.scripts.append(article)
            functional_added += sum(
                len(inv.requests)
                for method in article.methods
                for inv in method.invocations
            )
            new_websites.append(page)
            web.scripts.append(article)

    web.websites.extend(new_websites)
    return InternalPagesManifest(
        pages_added=pages_added,
        tracking_requests_added=tracking_added,
        functional_requests_added=functional_added,
        sites_extended=sites_extended,
    )


def _article_script(page_url: str, site_url: str, rng: random.Random) -> ScriptSpec:
    host = site_url.removeprefix("https://").strip("/")
    count = rng.randint(1, 3)
    method = MethodSpec(name="loadArticle", category=Category.FUNCTIONAL)
    method.invocations.append(
        Invocation(
            site=page_url,
            requests=[
                PlannedRequest(
                    url=f"https://{host}/api/v1/content/{rng.randrange(10**6)}",
                    tracking=False,
                    resource_type="xmlhttprequest",
                )
                for _ in range(count)
            ],
            caller_chain=(Frame(f"{page_url}#inline-0", "onload"),),
            args={"event": "load", "dest": host},
        )
    )
    return ScriptSpec(
        url=f"{page_url}#inline-0",
        category=Category.FUNCTIONAL,
        kind=ScriptKind.INLINE,
        methods=[method],
        sites=[page_url],
    )
