"""Calibrated synthetic-web generator.

This is the substitute for the paper's 100K-site live crawl.  Given a site
count and a seed, it builds a deterministic population of domains,
hostnames, scripts, methods and websites whose *planned* request traffic
reproduces the paper's published marginals (Tables 1 and 2) at any scale:

* entity counts per class at every granularity,
* request counts per class at every granularity,
* per-entity log-ratios inside the correct classification band, so the
  TrackerSift pipeline — which re-derives everything from raw events plus
  the filter-list oracle — recovers the published shape.

The generator works in five phases:

1. **Initiator side** — scripts and methods that hit mixed hostnames, with
   per-entity (tracking, functional) request budgets (Table 1/2 script and
   method rows).
2. **Serving side** — domains and hostnames with per-entity budgets
   (domain and hostname rows); mixed-hostname totals are taken from phase 1
   so the two sides agree exactly.
3. **Pairing** — each method's request budget is spread over concrete
   mixed hostnames; URLs are synthesised so the oracle recovers the intent.
4. **Site assembly** — scripts are placed on websites, per-site app scripts
   absorb the pure-domain traffic, inlining/bundling transforms are applied,
   and functionality dependencies are wired for the breakage study.
5. **Validation** — every entity's realised ratio is checked against its
   class band (also exercised by the test suite).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .allocation import (
    allocate_volumes,
    impurity_for_pure,
    log_ratio,
    split_mixed_volumes,
)
from .bundler import bundle_scripts, inline_script, webpack_bundle_name
from .calibration import PAPER, PaperTargets, ScaledTargets, scale_targets
from .naming import NameFactory
from .resources import (
    Category,
    DomainSpec,
    Frame,
    HostnameSpec,
    Invocation,
    MethodSpec,
    PlannedRequest,
    ScriptKind,
    ScriptSpec,
)
from .website import (
    CORE_FEATURES,
    SECONDARY_FEATURES,
    Functionality,
    FunctionalityTier,
    Website,
)

__all__ = ["SyntheticWeb", "SyntheticWebGenerator", "generate_web"]

_TRACKING_EVENTS = ("imp", "click", "view", "scroll-depth")
_FUNCTIONAL_EVENTS = ("load", "render", "fetch", "hydrate")
_RESOURCE_TYPES_TRACKING = ("image", "ping", "xmlhttprequest")
_RESOURCE_TYPES_FUNCTIONAL = ("xmlhttprequest", "image", "script", "stylesheet", "font")


@dataclass
class SyntheticWeb:
    """The fully-planned population handed to the crawler/browser."""

    seed: int
    targets: ScaledTargets
    websites: list[Website]
    domains: list[DomainSpec]
    scripts: list[ScriptSpec]
    #: hosts covered by a ``||domain^``-style rule (tracking-by-domain).
    listed_tracker_domains: frozenset[str]

    @property
    def sites(self) -> int:
        return len(self.websites)

    def website(self, url: str) -> Website:
        for site in self.websites:
            if site.url == url:
                return site
        raise KeyError(url)

    def script(self, url: str) -> ScriptSpec:
        for script in self.scripts:
            if script.url == url:
                return script
        raise KeyError(url)

    def planned_request_count(self) -> int:
        return sum(
            len(inv.requests)
            for script in self.scripts
            for method in script.methods
            for inv in method.invocations
        )

    def validate(self) -> None:
        """Assert every planned entity sits in its classification band."""
        for domain in self.domains:
            t, f = domain.request_counts()
            if t + f == 0:
                raise AssertionError(f"domain {domain.domain} has no requests")
            _check_band(domain.category, t, f, f"domain {domain.domain}")
            if domain.category is Category.MIXED:
                for host in domain.hostnames:
                    _check_band(
                        host.category,
                        host.tracking_requests,
                        host.functional_requests,
                        f"hostname {host.host}",
                    )


def _check_band(category: Category, tracking: int, functional: int, what: str) -> None:
    ratio = log_ratio(tracking, functional)
    if category is Category.TRACKING and not ratio >= 2:
        raise AssertionError(f"{what}: ratio {ratio:.2f} not tracking")
    if category is Category.FUNCTIONAL and not ratio <= -2:
        raise AssertionError(f"{what}: ratio {ratio:.2f} not functional")
    if category is Category.MIXED and not -2 < ratio < 2:
        raise AssertionError(f"{what}: ratio {ratio:.2f} not mixed")


@dataclass
class _Budget:
    """A (tracking, functional) request budget for one planned entity."""

    tracking: int
    functional: int

    @property
    def total(self) -> int:
        return self.tracking + self.functional


def _pure_budgets(
    count: int,
    total: int,
    rng: random.Random,
    *,
    tracking_side: bool,
    allow_impurity: bool = True,
) -> list[_Budget]:
    """Budgets for pure entities: heavy-tailed, optional trickle impurity."""
    volumes = allocate_volumes(count, total, rng, minimum=1)
    budgets: list[_Budget] = []
    for volume in volumes:
        impurity = impurity_for_pure(volume, rng) if allow_impurity else 0
        main = volume - impurity
        if tracking_side:
            budgets.append(_Budget(tracking=main, functional=impurity))
        else:
            budgets.append(_Budget(tracking=impurity, functional=main))
    return budgets


def _mixed_budgets(
    count: int,
    target_tracking: int,
    target_functional: int,
    rng: random.Random,
) -> list[_Budget]:
    volumes = allocate_volumes(
        count, target_tracking + target_functional, rng, minimum=4
    )
    splits = split_mixed_volumes(volumes, target_tracking, target_functional, rng)
    return [_Budget(tracking=t, functional=f) for t, f in splits]


# ---------------------------------------------------------------------------
# Phase 1 — initiator side: scripts and methods hitting mixed hostnames
# ---------------------------------------------------------------------------


@dataclass
class _PlannedMethod:
    name: str
    category: Category
    budget: _Budget
    coverage: float = 1.0
    #: for mixed methods: do tracking and functional invocations have
    #: distinguishable contexts (caller chain / arguments)?  The paper's
    #: Figure 5 and guard proposals only work on the separable majority.
    context_separable: bool = True


@dataclass
class _PlannedScript:
    category: Category
    methods: list[_PlannedMethod] = field(default_factory=list)

    def counts(self) -> tuple[int, int]:
        t = sum(m.budget.tracking for m in self.methods)
        f = sum(m.budget.functional for m in self.methods)
        return t, f

    def in_band(self) -> bool:
        t, f = self.counts()
        if t + f == 0:
            return False
        ratio = log_ratio(t, f)
        if self.category is Category.TRACKING:
            return ratio >= 2
        if self.category is Category.FUNCTIONAL:
            return ratio <= -2
        return -2 < ratio < 2


def _plan_initiators(
    targets: ScaledTargets, names: NameFactory, rng: random.Random
) -> list[_PlannedScript]:
    """Build the script/method plan for mixed-hostname traffic."""
    script_t = targets.script
    method_t = targets.method

    scripts: list[_PlannedScript] = []

    # Pure tracking / functional scripts: one or two same-class methods.
    for tracking_side, count, total in (
        (True, script_t.entities_tracking, script_t.requests_tracking),
        (False, script_t.entities_functional, script_t.requests_functional),
    ):
        category = Category.TRACKING if tracking_side else Category.FUNCTIONAL
        budgets = _pure_budgets(count, total, rng, tracking_side=tracking_side)
        method_names = names.method_names(category.value, 2)
        for budget in budgets:
            script = _PlannedScript(category=category)
            if budget.total >= 6 and rng.random() < 0.4:
                first = budget.total // 2
                parts = [
                    _Budget(
                        tracking=min(budget.tracking, first),
                        functional=max(0, first - min(budget.tracking, first)),
                    ),
                ]
                rest = _Budget(
                    tracking=budget.tracking - parts[0].tracking,
                    functional=budget.functional - parts[0].functional,
                )
                parts.append(rest)
                for i, part in enumerate(parts):
                    if part.total:
                        script.methods.append(
                            _PlannedMethod(method_names[i % 2], category, part)
                        )
            else:
                script.methods.append(
                    _PlannedMethod(method_names[0], category, budget)
                )
            scripts.append(script)

    # Mixed scripts: composed from the method-level plan.
    mixed_scripts = [
        _PlannedScript(category=Category.MIXED)
        for _ in range(script_t.entities_mixed)
    ]
    t_methods = [
        _PlannedMethod(name, Category.TRACKING, budget)
        for name, budget in zip(
            names.method_names("tracking", method_t.entities_tracking),
            _pure_budgets(
                method_t.entities_tracking,
                method_t.requests_tracking,
                rng,
                tracking_side=True,
            ),
        )
    ]
    f_methods = [
        _PlannedMethod(name, Category.FUNCTIONAL, budget)
        for name, budget in zip(
            names.method_names("functional", method_t.entities_functional),
            _pure_budgets(
                method_t.entities_functional,
                method_t.requests_functional,
                rng,
                tracking_side=False,
            ),
        )
    ]
    mixed_request_total = method_t.requests_mixed
    mixed_tracking = max(
        method_t.entities_mixed, round(0.45 * mixed_request_total)
    )
    mixed_functional = mixed_request_total - mixed_tracking
    m_methods = [
        _PlannedMethod(
            name,
            Category.MIXED,
            budget,
            context_separable=rng.random() < 0.8,
        )
        for name, budget in zip(
            names.method_names("mixed", method_t.entities_mixed),
            _mixed_budgets(
                method_t.entities_mixed, mixed_tracking, mixed_functional, rng
            ),
        )
    ]
    # Low coverage on a slice of methods: the surrogate-safety hazard the
    # paper warns about.  A partially-observed *mixed* method can look
    # purely tracking to the crawl, so a surrogate that removes it silently
    # drops functional behaviour — visible only under forced execution.
    for method in f_methods:
        if rng.random() < 0.08:
            method.coverage = rng.uniform(0.2, 0.7)
    for method in m_methods:
        if rng.random() < 0.08:
            method.coverage = rng.uniform(0.4, 0.8)

    _distribute_methods(mixed_scripts, t_methods, f_methods, m_methods, rng)
    _repair_script_bands(mixed_scripts)
    scripts.extend(mixed_scripts)
    return scripts


def _distribute_methods(
    scripts: list[_PlannedScript],
    t_methods: list[_PlannedMethod],
    f_methods: list[_PlannedMethod],
    m_methods: list[_PlannedMethod],
    rng: random.Random,
) -> None:
    """Assign method entities to mixed scripts, keeping each script mixed.

    Skeletons first: a script gets either one mixed method, or a
    (tracking, functional) pair of similar volume — rank-pairing keeps the
    per-script ratio near the global one.  Leftover methods go wherever they
    do not push a script out of band.
    """
    t_sorted = sorted(t_methods, key=lambda m: m.budget.total, reverse=True)
    f_sorted = sorted(f_methods, key=lambda m: m.budget.total, reverse=True)
    m_sorted = sorted(m_methods, key=lambda m: m.budget.total, reverse=True)

    need_pairs = max(0, len(scripts) - len(m_sorted))
    if need_pairs > min(len(t_sorted), len(f_sorted)):
        raise ValueError(
            "not enough pure methods to seed every mixed script; "
            "increase the crawl size"
        )
    scripts_shuffled = scripts[:]
    rng.shuffle(scripts_shuffled)
    pair_scripts = scripts_shuffled[:need_pairs]
    mixed_seeded = scripts_shuffled[need_pairs:]

    for script, t_m, f_m in zip(pair_scripts, t_sorted, f_sorted):
        script.methods.extend((t_m, f_m))
    leftovers: list[_PlannedMethod] = t_sorted[need_pairs:] + f_sorted[need_pairs:]

    m_iter = iter(m_sorted)
    for script in mixed_seeded:
        script.methods.append(next(m_iter))
    leftovers.extend(m_iter)

    rng.shuffle(leftovers)
    for method in leftovers:
        placed = False
        candidates = rng.sample(scripts, min(len(scripts), 12))
        for script in candidates:
            script.methods.append(method)
            if script.in_band():
                placed = True
                break
            script.methods.pop()
        if not placed:
            # Exhaustive fallback before declaring failure.
            for script in scripts:
                script.methods.append(method)
                if script.in_band():
                    placed = True
                    break
                script.methods.pop()
        if not placed:
            # Park it on the largest script; the repair pass fixes bands.
            max(scripts, key=lambda s: sum(m.budget.total for m in s.methods)).methods.append(method)
    _shape_script_ratio_tail(scripts, rng)


def _script_ratio(script: _PlannedScript) -> float:
    t, f = script.counts()
    return log_ratio(t, f)


def _shape_script_ratio_tail(
    scripts: list[_PlannedScript], rng: random.Random, share: float = 0.05
) -> None:
    """Push a small slice of mixed scripts toward |ratio| in (1, 2).

    The Figure 4 sensitivity curve rises between thresholds 1 and 2 before
    it plateaus — that rise is exactly the scripts whose ratio magnitude
    falls in that band.  Rank-wise method pairing clusters ratios near the
    global mean, so we swap same-class methods between script pairs (which
    preserves every global total) until a calibrated share of scripts sits
    in the near-threshold band, with both swap partners staying in band.
    """
    target = max(1, round(share * len(scripts)))
    current = sum(1 for s in scripts if 1.0 < abs(_script_ratio(s)) < 2.0)
    attempts = 0
    while current < target and attempts < 200 * len(scripts):
        attempts += 1
        a, b = rng.sample(scripts, 2)
        swappable_a = [m for m in a.methods if m.category is Category.FUNCTIONAL]
        swappable_b = [m for m in b.methods if m.category is Category.FUNCTIONAL]
        if not swappable_a or not swappable_b:
            continue
        method_a = rng.choice(swappable_a)
        method_b = rng.choice(swappable_b)
        if method_a.budget.total == method_b.budget.total:
            continue
        before = sum(1 for s in (a, b) if 1.0 < abs(_script_ratio(s)) < 2.0)
        a.methods.remove(method_a)
        b.methods.remove(method_b)
        a.methods.append(method_b)
        b.methods.append(method_a)
        if not (a.in_band() and b.in_band()):
            a.methods.remove(method_b)
            b.methods.remove(method_a)
            a.methods.append(method_a)
            b.methods.append(method_b)
            continue
        after = sum(1 for s in (a, b) if 1.0 < abs(_script_ratio(s)) < 2.0)
        if after <= before:
            a.methods.remove(method_b)
            b.methods.remove(method_a)
            a.methods.append(method_a)
            b.methods.append(method_b)
            continue
        current += after - before


def _repair_script_bands(scripts: list[_PlannedScript]) -> None:
    """Swap methods between scripts until every script is in band."""
    for _ in range(10 * len(scripts) + 100):
        offenders = [s for s in scripts if not s.in_band()]
        if not offenders:
            return
        offender = offenders[0]
        t, f = offender.counts()
        heavy_tracking = t > f
        movable = [
            m
            for m in offender.methods
            if len(offender.methods) > 1
            and (
                m.category is Category.TRACKING
                if heavy_tracking
                else m.category is Category.FUNCTIONAL
            )
        ]
        if not movable:
            movable = [m for m in offender.methods if len(offender.methods) > 1]
        if not movable:
            raise AssertionError("unrepairable mixed script plan")
        method = max(movable, key=lambda m: m.budget.total)
        offender.methods.remove(method)
        # Find a host that stays in band with the extra method.
        for target in sorted(
            scripts, key=lambda s: sum(m.budget.total for m in s.methods)
        ):
            if target is offender:
                continue
            target.methods.append(method)
            if target.in_band():
                break
            target.methods.pop()
        else:
            offender.methods.append(method)  # give up on this move
    remaining = [s for s in scripts if not s.in_band()]
    if remaining:
        raise AssertionError(
            f"{len(remaining)} mixed scripts could not be balanced"
        )


# ---------------------------------------------------------------------------
# Phase 2 — serving side: domains and hostnames
# ---------------------------------------------------------------------------


def _plan_domains(
    targets: ScaledTargets,
    mixed_host_tracking: int,
    mixed_host_functional: int,
    names: NameFactory,
    rng: random.Random,
) -> tuple[list[DomainSpec], frozenset[str]]:
    domain_t = targets.domain
    host_t = targets.hostname

    domains: list[DomainSpec] = []
    listed: set[str] = set()

    # Pure tracking domains.
    tracking_names = names.tracking_domains(domain_t.entities_tracking)
    tracking_budgets: list[_Budget] = []
    volumes = allocate_volumes(
        domain_t.entities_tracking, domain_t.requests_tracking, rng, minimum=1
    )
    for name, volume in zip(tracking_names, volumes):
        if names.is_listed_tracker(name):
            listed.add(name)
            tracking_budgets.append(_Budget(tracking=volume, functional=0))
        else:
            impurity = impurity_for_pure(volume, rng)
            tracking_budgets.append(
                _Budget(tracking=volume - impurity, functional=impurity)
            )
    for name, budget in zip(tracking_names, tracking_budgets):
        domains.append(
            DomainSpec(
                domain=name,
                category=Category.TRACKING,
                hostnames=_pure_domain_hosts(name, Category.TRACKING, budget, rng),
            )
        )

    # Pure functional domains.
    functional_names = names.functional_domains(domain_t.entities_functional)
    functional_budgets = _pure_budgets(
        domain_t.entities_functional,
        domain_t.requests_functional,
        rng,
        tracking_side=False,
    )
    for name, budget in zip(functional_names, functional_budgets):
        domains.append(
            DomainSpec(
                domain=name,
                category=Category.FUNCTIONAL,
                hostnames=_pure_domain_hosts(name, Category.FUNCTIONAL, budget, rng),
            )
        )

    # Mixed domains with their hostname populations.
    n_mixed_domains = domain_t.entities_mixed
    n_mixed_hosts = max(host_t.entities_mixed, n_mixed_domains)
    mixed_domain_names = names.mixed_domains(n_mixed_domains)
    mixed_domains = [
        DomainSpec(domain=name, category=Category.MIXED)
        for name in mixed_domain_names
    ]

    host_budgets_t = _pure_budgets(
        host_t.entities_tracking, host_t.requests_tracking, rng, tracking_side=True
    )
    host_budgets_f = _pure_budgets(
        host_t.entities_functional,
        host_t.requests_functional,
        rng,
        tracking_side=False,
    )
    host_budgets_m = _mixed_budgets(
        n_mixed_hosts, mixed_host_tracking, mixed_host_functional, rng
    )

    _assign_hostnames(
        mixed_domains, host_budgets_t, host_budgets_f, host_budgets_m, names, rng
    )
    _repair_domain_bands(mixed_domains)
    domains.extend(mixed_domains)
    # pixel.wp.com / stats.wp.com are explicitly listed in the snapshot.
    for domain in mixed_domains:
        for host in domain.hostnames:
            if host.host in ("pixel.wp.com", "stats.wp.com"):
                listed.add(host.host)
    return domains, frozenset(listed)


def _pure_domain_hosts(
    domain: str, category: Category, budget: _Budget, rng: random.Random
) -> list[HostnameSpec]:
    """One or two hostnames carrying a pure domain's budget."""
    hosts: list[HostnameSpec] = []
    prefixes = ("www", "cdn") if category is Category.FUNCTIONAL else ("www", "t")
    n_hosts = 2 if budget.total >= 8 and rng.random() < 0.5 else 1
    tracking_left, functional_left = budget.tracking, budget.functional
    for i in range(n_hosts):
        last = i == n_hosts - 1
        if last:
            t_part, f_part = tracking_left, functional_left
        else:
            t_part = tracking_left // 2
            f_part = functional_left // 2
        tracking_left -= t_part
        functional_left -= f_part
        if t_part + f_part == 0:
            continue
        host = domain if i == 0 else f"{prefixes[1]}.{domain}"
        hosts.append(
            HostnameSpec(
                host=host,
                category=category,
                tracking_requests=t_part,
                functional_requests=f_part,
            )
        )
    return hosts


def _domain_counts(domain: DomainSpec) -> tuple[int, int]:
    return domain.request_counts()


def _domain_in_band(domain: DomainSpec) -> bool:
    t, f = _domain_counts(domain)
    if t == 0 and f == 0:
        return False
    ratio = log_ratio(t, f)
    return -2 < ratio < 2


def _assign_hostnames(
    mixed_domains: list[DomainSpec],
    budgets_t: list[_Budget],
    budgets_f: list[_Budget],
    budgets_m: list[_Budget],
    names: NameFactory,
    rng: random.Random,
) -> None:
    """Give every mixed domain >= 1 mixed hostname, then greedy-place rest."""
    budgets_m_sorted = sorted(budgets_m, key=lambda b: b.total, reverse=True)
    order = mixed_domains[:]
    rng.shuffle(order)
    per_domain_index: dict[str, int] = {d.domain: 0 for d in mixed_domains}

    def add_host(domain: DomainSpec, category: Category, budget: _Budget) -> None:
        index = per_domain_index[domain.domain]
        per_domain_index[domain.domain] += 1
        # Re-use the paper's hostnames on wp.com for the case study.
        host = names.hostname(domain.domain, category.value, index)
        domain.hostnames.append(
            HostnameSpec(
                host=host,
                category=category,
                tracking_requests=budget.tracking,
                functional_requests=budget.functional,
            )
        )

    for i, budget in enumerate(budgets_m_sorted[: len(order)]):
        add_host(order[i], Category.MIXED, budget)
    extras = budgets_m_sorted[len(order):]

    remaining: list[tuple[Category, _Budget]] = [
        (Category.MIXED, b) for b in extras
    ]
    remaining += [(Category.TRACKING, b) for b in budgets_t]
    remaining += [(Category.FUNCTIONAL, b) for b in budgets_f]
    remaining.sort(key=lambda item: item[1].total, reverse=True)

    for category, budget in remaining:
        candidates = rng.sample(mixed_domains, min(len(mixed_domains), 10))
        best: DomainSpec | None = None
        best_score = float("inf")
        for domain in candidates:
            t, f = _domain_counts(domain)
            t += budget.tracking
            f += budget.functional
            if t == 0 or f == 0:
                score = float("inf")
            else:
                ratio = log_ratio(t, f)
                score = abs(ratio) if -2 < ratio < 2 else float("inf")
            if score < best_score:
                best, best_score = domain, score
        if best is None or best_score == float("inf"):
            # No sampled candidate stays in band; scan everything.
            for domain in mixed_domains:
                t, f = _domain_counts(domain)
                t += budget.tracking
                f += budget.functional
                if t and f and -2 < log_ratio(t, f) < 2:
                    best = domain
                    break
            else:
                best = rng.choice(mixed_domains)  # repaired later
        add_host(best, category, budget)


def _repair_domain_bands(mixed_domains: list[DomainSpec]) -> None:
    """Move pure hostnames between mixed domains until all are in band."""
    for _ in range(10 * len(mixed_domains) + 100):
        offenders = [d for d in mixed_domains if not _domain_in_band(d)]
        if not offenders:
            return
        offender = offenders[0]
        t, f = _domain_counts(offender)
        heavy_tracking = t > f
        movable = [
            h
            for h in offender.hostnames
            if h.category
            is (Category.TRACKING if heavy_tracking else Category.FUNCTIONAL)
        ]
        if not movable:
            raise AssertionError(
                f"domain {offender.domain} out of band with no movable host"
            )
        host = max(movable, key=lambda h: h.total_requests)
        offender.hostnames.remove(host)
        for target in sorted(
            mixed_domains,
            key=lambda d: _domain_counts(d)[0 if not heavy_tracking else 1],
            reverse=True,
        ):
            if target is offender:
                continue
            target.hostnames.append(host)
            if _domain_in_band(target):
                break
            target.hostnames.pop()
        else:
            offender.hostnames.append(host)
    remaining = [d for d in mixed_domains if not _domain_in_band(d)]
    if remaining:
        raise AssertionError(f"{len(remaining)} mixed domains unbalanced")


# ---------------------------------------------------------------------------
# Phase 3/4 — pairing, URL synthesis, site assembly
# ---------------------------------------------------------------------------


@dataclass
class _HostSlots:
    host: str
    listed: bool
    tracking: int
    functional: int


class SyntheticWebGenerator:
    """Builds a :class:`SyntheticWeb` for a given site count and seed."""

    def __init__(
        self,
        sites: int = 2_000,
        seed: int = 7,
        paper: PaperTargets = PAPER,
        *,
        inline_fraction: float = 0.22,
        bundle_fraction: float = 0.12,
    ) -> None:
        if sites < 10:
            raise ValueError("need at least 10 sites for a meaningful crawl")
        self.sites = sites
        self.seed = seed
        self.paper = paper
        self.inline_fraction = inline_fraction
        self.bundle_fraction = bundle_fraction

    # -- public API ---------------------------------------------------------
    def build(self) -> SyntheticWeb:
        rng = random.Random(self.seed)
        names = NameFactory(rng)
        targets = scale_targets(self.sites, self.paper)

        planned_scripts = _plan_initiators(targets, names, rng)
        mixed_host_tracking = sum(
            m.budget.tracking for s in planned_scripts for m in s.methods
        )
        mixed_host_functional = sum(
            m.budget.functional for s in planned_scripts for m in s.methods
        )
        domains, listed = _plan_domains(
            targets, mixed_host_tracking, mixed_host_functional, names, rng
        )

        websites = self._make_websites(names)
        scripts = self._realise_scripts(
            planned_scripts, domains, websites, listed, names, rng
        )
        scripts += _make_app_scripts(domains, websites, listed, names, rng)
        _apply_transforms(
            scripts, websites, rng, self.inline_fraction, self.bundle_fraction
        )
        _wire_functionality(websites, rng)

        web = SyntheticWeb(
            seed=self.seed,
            targets=targets,
            websites=websites,
            domains=domains,
            scripts=scripts,
            listed_tracker_domains=listed,
        )
        web.validate()
        return web

    # -- sites ---------------------------------------------------------------
    def _make_websites(self, names: NameFactory) -> list[Website]:
        publisher_domains = names.publisher_domains(self.sites)
        return [
            Website(url=f"https://www.{domain}/", rank=rank + 1)
            for rank, domain in enumerate(publisher_domains)
        ]

    # -- realising initiator scripts ------------------------------------------
    def _realise_scripts(
        self,
        planned: list[_PlannedScript],
        domains: list[DomainSpec],
        websites: list[Website],
        listed: frozenset[str],
        names: NameFactory,
        rng: random.Random,
    ) -> list[ScriptSpec]:
        host_slots = [
            _HostSlots(
                host=h.host,
                listed=h.host in listed,
                tracking=h.tracking_requests,
                functional=h.functional_requests,
            )
            for d in domains
            if d.category is Category.MIXED
            for h in d.hostnames
            if h.category is Category.MIXED
        ]
        rng.shuffle(host_slots)
        tracking_queue = [s for s in host_slots if s.tracking > 0]
        functional_queue = [s for s in host_slots if s.functional > 0]

        def draw(queue: list[_HostSlots], tracking_side: bool, count: int) -> list[tuple[str, bool, int]]:
            """Take ``count`` request slots off the hostname queues."""
            out: list[tuple[str, bool, int]] = []
            while count > 0:
                if not queue:
                    raise AssertionError("hostname slots exhausted during pairing")
                slot = queue[-1]
                available = slot.tracking if tracking_side else slot.functional
                take = min(count, available)
                out.append((slot.host, slot.listed, take))
                if tracking_side:
                    slot.tracking -= take
                else:
                    slot.functional -= take
                if (slot.tracking if tracking_side else slot.functional) == 0:
                    queue.pop()
                count -= take
            return out

        cdn_hosts = [
            h.host
            for d in domains
            if d.category is Category.FUNCTIONAL
            for h in d.hostnames
        ]
        scripts: list[ScriptSpec] = []
        site_cycle = websites[:]
        rng.shuffle(site_cycle)
        site_index = 0
        for plan in planned:
            site = site_cycle[site_index % len(site_cycle)]
            site_index += 1
            host = rng.choice(cdn_hosts)
            script = ScriptSpec(
                url=names.script_url(host, plan.category.value),
                category=plan.category,
                kind=ScriptKind.EXTERNAL,
                sites=[site.url],
            )
            for planned_method in plan.methods:
                method = MethodSpec(
                    name=planned_method.name,
                    category=planned_method.category,
                    coverage=planned_method.coverage,
                )
                t_slots = draw(tracking_queue, True, planned_method.budget.tracking)
                f_slots = draw(
                    functional_queue, False, planned_method.budget.functional
                )
                self._emit_invocations(
                    script,
                    method,
                    site.url,
                    t_slots,
                    f_slots,
                    names,
                    rng,
                    context_separable=planned_method.context_separable,
                )
                script.methods.append(method)
            scripts.append(script)
            site.scripts.append(script)
        if any(s.tracking for s in tracking_queue) or any(
            s.functional for s in functional_queue
        ):
            raise AssertionError("pairing left unserved hostname slots")
        return scripts

    def _emit_invocations(
        self,
        script: ScriptSpec,
        method: MethodSpec,
        site: str,
        t_slots: list[tuple[str, bool, int]],
        f_slots: list[tuple[str, bool, int]],
        names: NameFactory,
        rng: random.Random,
        *,
        context_separable: bool = True,
    ) -> None:
        """Turn per-hostname slot counts into invocations with requests.

        ``context_separable`` governs whether a mixed method's tracking and
        functional invocations carry distinguishable contexts: separable
        methods get divergent caller chains (Figure 5 finds the tracking
        helper) and disjoint argument vocabularies (guards can learn an
        invariant); inseparable ones share both — the residue that even the
        paper's §5 techniques cannot split.
        """
        tracking_chain, functional_chain = _caller_chains(script, method, site)
        mixed = method.category is Category.MIXED
        for tracking_side, slots in ((True, t_slots), (False, f_slots)):
            for host, listed, count in slots:
                while count > 0:
                    batch = min(count, rng.randint(1, 3))
                    count -= batch
                    requests = [
                        PlannedRequest(
                            url=names.request_url(host, tracking_side, listed),
                            tracking=tracking_side,
                            resource_type=rng.choice(
                                _RESOURCE_TYPES_TRACKING
                                if tracking_side
                                else _RESOURCE_TYPES_FUNCTIONAL
                            ),
                        )
                        for _ in range(batch)
                    ]
                    is_async = rng.random() < 0.25
                    if mixed and context_separable:
                        chain = tracking_chain if tracking_side else functional_chain
                        event_pool = (
                            _TRACKING_EVENTS if tracking_side else _FUNCTIONAL_EVENTS
                        )
                    elif mixed:
                        chain = functional_chain
                        event_pool = _TRACKING_EVENTS + _FUNCTIONAL_EVENTS
                    else:
                        chain = functional_chain
                        event_pool = (
                            _TRACKING_EVENTS if tracking_side else _FUNCTIONAL_EVENTS
                        )
                    method.invocations.append(
                        Invocation(
                            site=site,
                            requests=requests,
                            caller_chain=chain if not is_async else chain[:1],
                            async_chain=chain[1:] if is_async else (),
                            args={
                                "event": rng.choice(event_pool),
                                "dest": host,
                            },
                        )
                    )


# Caller-chain synthesis: mixed methods get *divergent* ancestries so the
# Figure 5 call-stack analysis has a point of divergence to find.
def _caller_chains(
    script: ScriptSpec, method: MethodSpec, site: str
) -> tuple[tuple[Frame, ...], tuple[Frame, ...]]:
    page_main = Frame(f"{site}#inline-0", "main")
    if method.category is Category.MIXED:
        tracker_helper = Frame(f"{site}track-helper.js", "t")
        user_chain = (
            Frame(f"{site}user.js", "k"),
            Frame(f"{site}get.js", "a"),
        )
        return (tracker_helper, page_main), user_chain + (page_main,)
    shared = (Frame(f"{site}loader.js", "boot"), page_main)
    return shared, shared


# ---------------------------------------------------------------------------
# App scripts: per-site initiators that absorb pure-domain traffic.


class _AppScriptPool:
    """Lazily creates 1-3 app scripts per site and spreads requests over them."""

    def __init__(
        self, websites: list[Website], names: NameFactory, rng: random.Random
    ) -> None:
        self._websites = {w.url: w for w in websites}
        self._names = names
        self._rng = rng
        self._scripts: dict[str, list[ScriptSpec]] = {}

    def script_for(self, site: str) -> ScriptSpec:
        scripts = self._scripts.get(site)
        if scripts is None:
            count = self._rng.randint(1, 3)
            scripts = []
            website = self._websites[site]
            for i in range(count):
                script = ScriptSpec(
                    url=f"{site}assets/{self._names.script_name('functional')}"
                    if i
                    else f"{site}#inline-0",
                    category=Category.FUNCTIONAL,
                    kind=ScriptKind.INLINE if i == 0 else ScriptKind.EXTERNAL,
                    sites=[site],
                )
                script.methods.append(
                    MethodSpec(name=f"init{i}", category=Category.FUNCTIONAL)
                )
                scripts.append(script)
                website.scripts.append(script)
            self._scripts[site] = scripts
        return self._rng.choice(scripts)

    def all_scripts(self) -> list[ScriptSpec]:
        return [s for scripts in self._scripts.values() for s in scripts]


def _append_app_requests(
    pool: _AppScriptPool,
    site: str,
    host: str,
    listed: bool,
    tracking: bool,
    count: int,
    names: NameFactory,
    rng: random.Random,
) -> None:
    while count > 0:
        batch = min(count, rng.randint(1, 4))
        count -= batch
        script = pool.script_for(site)
        method = script.methods[0]
        chain = (Frame(f"{site}#inline-0", "onload"),)
        method.invocations.append(
            Invocation(
                site=site,
                requests=[
                    PlannedRequest(
                        url=names.request_url(host, tracking, listed),
                        tracking=tracking,
                        resource_type=rng.choice(
                            _RESOURCE_TYPES_TRACKING
                            if tracking
                            else _RESOURCE_TYPES_FUNCTIONAL
                        ),
                    )
                    for _ in range(batch)
                ],
                caller_chain=chain,
                args={"event": "load", "dest": host},
            )
        )


def _make_app_scripts(
    domains: list[DomainSpec],
    websites: list[Website],
    listed: frozenset[str],
    names: NameFactory,
    rng: random.Random,
) -> list[ScriptSpec]:
    """Emit the pure-domain traffic (and pure hostnames of mixed domains)."""
    pool = _AppScriptPool(websites, names, rng)
    for domain in domains:
        domain_listed = domain.domain in listed
        for host in domain.hostnames:
            if domain.category is Category.MIXED and host.category is Category.MIXED:
                continue  # already paired with level-3 scripts
            host_listed = domain_listed or host.host in listed
            for tracking, count in (
                (True, host.tracking_requests),
                (False, host.functional_requests),
            ):
                remaining = count
                while remaining > 0:
                    site = rng.choice(websites).url
                    chunk = min(remaining, rng.randint(1, 6))
                    remaining -= chunk
                    _append_app_requests(
                        pool, site, host.host, host_listed, tracking, chunk, names, rng
                    )
    return pool.all_scripts()


def _apply_transforms(
    scripts: list[ScriptSpec],
    websites: list[Website],
    rng: random.Random,
    inline_fraction: float,
    bundle_fraction: float,
) -> None:
    """Inline or bundle a slice of the mixed/tracking scripts (paper §5)."""
    sites = {w.url: w for w in websites}
    inline_counter: dict[str, int] = {}
    for i, script in enumerate(scripts):
        if script.kind is not ScriptKind.EXTERNAL or not script.sites:
            continue
        if script.category is Category.FUNCTIONAL:
            continue
        site = script.sites[0]
        roll = rng.random()
        if roll < inline_fraction:
            index = inline_counter.get(site, 0) + 1
            inline_counter[site] = index
            new = inline_script(script, site, index)
            scripts[i] = new
            _replace_in_site(sites[site], script, new)
        elif roll < inline_fraction + bundle_fraction:
            bundle_url = f"{site}assets/{webpack_bundle_name(rng)}"
            partner = ScriptSpec(
                url=f"{site}assets/module-{i}.js",
                category=Category.FUNCTIONAL,
                kind=ScriptKind.EXTERNAL,
                methods=[MethodSpec(name="renderApp", category=Category.FUNCTIONAL)],
                sites=[site],
            )
            new = bundle_scripts([script, partner], bundle_url, site=site, rng=rng)
            scripts[i] = new
            _replace_in_site(sites[site], script, new)


def _replace_in_site(site: Website, old: ScriptSpec, new: ScriptSpec) -> None:
    for index, script in enumerate(site.scripts):
        if script is old:
            site.scripts[index] = new
            return
    site.scripts.append(new)


def _wire_functionality(websites: list[Website], rng: random.Random) -> None:
    """Attach core/secondary features to each site's scripts.

    Mixed scripts carry real functional duties (that is what makes blocking
    them break pages — Table 3).  Each mixed script draws one *role*,
    calibrated to the paper's breakage distribution (7 major / 2 minor /
    1 none on 10 sites): it underpins core functionality, underpins
    secondary functionality, or is decorative.  Dependencies are wired at
    method granularity where possible, so surrogate scripts that only drop
    tracking methods keep the page working.
    """
    for site in websites:
        if not site.scripts:
            continue
        features: list[Functionality] = []
        mixed = [s for s in site.scripts if s.category is Category.MIXED]
        functional = [s for s in site.scripts if s.category is Category.FUNCTIONAL]

        core_names = rng.sample(CORE_FEATURES, rng.randint(3, 5))
        secondary_names = rng.sample(SECONDARY_FEATURES, rng.randint(2, 4))
        for name in core_names:
            deps = set()
            if functional:
                deps.add(rng.choice(functional).url)
            features.append(
                Functionality(
                    name=name,
                    tier=FunctionalityTier.CORE,
                    required_scripts=frozenset(deps),
                )
            )
        for name in secondary_names:
            deps = set()
            if functional and rng.random() < 0.6:
                deps.add(rng.choice(functional).url)
            features.append(
                Functionality(
                    name=name,
                    tier=FunctionalityTier.SECONDARY,
                    required_scripts=frozenset(deps),
                )
            )

        for script in mixed:
            roll = rng.random()
            if roll < 0.65:
                tier, pool = FunctionalityTier.CORE, core_names
            elif roll < 0.9:
                tier, pool = FunctionalityTier.SECONDARY, secondary_names
            else:
                continue  # decorative: blocking it breaks nothing
            functional_methods = [
                m for m in script.methods if m.category is Category.FUNCTIONAL
            ]
            method_deps: frozenset[tuple[str, str]] = frozenset()
            script_deps: frozenset[str] = frozenset()
            if functional_methods and rng.random() < 0.7:
                method_deps = frozenset(
                    {(script.url, rng.choice(functional_methods).name)}
                )
            else:
                script_deps = frozenset({script.url})
            features.append(
                Functionality(
                    name=rng.choice(pool),
                    tier=tier,
                    required_scripts=script_deps,
                    required_methods=method_deps,
                )
            )
        site.functionalities = features


def generate_web(sites: int = 2_000, seed: int = 7) -> SyntheticWeb:
    """Convenience wrapper: build the default calibrated population."""
    return SyntheticWebGenerator(sites=sites, seed=seed).build()
