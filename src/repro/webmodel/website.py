"""Websites, pages and their functionality model.

A website in the synthetic web is a landing page (the paper crawls landing
pages only) that includes a set of scripts and exposes *functionalities* —
the user-visible features the paper's breakage analysis checks (§5,
Table 3).  Core functionality (search bar, menu, images, page navigation)
versus secondary functionality (comments, media widgets, video player,
icons) follow the paper's definitions, and each functionality declares
which scripts (optionally which methods) it needs to work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from .resources import ScriptSpec

__all__ = ["FunctionalityTier", "Functionality", "Website", "CORE_FEATURES", "SECONDARY_FEATURES"]


class FunctionalityTier(str, Enum):
    """The paper's breakage severity taxonomy."""

    CORE = "core"
    SECONDARY = "secondary"


#: Feature vocabularies straight from the paper's breakage definitions.
CORE_FEATURES: tuple[str, ...] = (
    "search bar",
    "menu",
    "images",
    "page navigation",
    "scroll bar",
    "page banners",
    "page load",
)
SECONDARY_FEATURES: tuple[str, ...] = (
    "comment section",
    "review section",
    "media widgets",
    "video player",
    "icons",
    "social share buttons",
    "newsletter signup",
)


@dataclass(slots=True)
class Functionality:
    """One user-visible feature and its script dependencies.

    ``required_methods`` refines the dependency to specific methods: if
    empty, blocking the script breaks the feature; if non-empty, the feature
    breaks only when one of those methods is removed (this is what makes
    method-granular surrogates safer than script blocking).
    """

    name: str
    tier: FunctionalityTier
    required_scripts: frozenset[str] = frozenset()
    required_methods: frozenset[tuple[str, str]] = frozenset()

    def works(self, blocked_scripts: frozenset[str], removed_methods: frozenset[tuple[str, str]]) -> bool:
        """Does the feature work given blocked scripts / removed methods?"""
        if self.required_methods:
            if any(m in removed_methods for m in self.required_methods):
                return False
            # A method dependency also fails when its whole script is gone.
            return not any(script in blocked_scripts for script, _ in self.required_methods)
        return not (self.required_scripts & blocked_scripts)


@dataclass(slots=True)
class Website:
    """One crawl target: a landing page, its scripts, its features."""

    url: str
    rank: int
    scripts: list[ScriptSpec] = field(default_factory=list)
    functionalities: list[Functionality] = field(default_factory=list)

    @property
    def domain_url(self) -> str:
        return self.url

    def script_urls(self) -> list[str]:
        return [script.url for script in self.scripts]

    def mixed_scripts(self) -> list[ScriptSpec]:
        """Scripts whose *planned* behaviour is mixed (generator intent)."""
        from .resources import Category

        return [s for s in self.scripts if s.category is Category.MIXED]

    def functionality_status(
        self,
        blocked_scripts: frozenset[str] = frozenset(),
        removed_methods: frozenset[tuple[str, str]] = frozenset(),
    ) -> dict[str, bool]:
        """Map feature name -> works?, under the given blocking decision."""
        return {
            feature.name: feature.works(blocked_scripts, removed_methods)
            for feature in self.functionalities
        }
