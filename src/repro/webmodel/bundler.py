"""Script inlining and bundling — the circumvention transforms of paper §5.

Two common techniques mix tracking with functional code inside a single
script resource:

* **Inlining** moves an external script's code into the page itself, so the
  initiator URL DevTools reports becomes the *document* URL.
* **Bundling** (webpack/browserify style) merges several source scripts —
  possibly from different organisations — into one bundle URL, intertwining
  their methods.

Both transforms preserve behaviour (the same methods fire the same
requests) while changing *identity*, which is exactly why script-level
blocking fails on them and method-level sifting is needed.
"""

from __future__ import annotations

import random

from .resources import Category, MethodSpec, ScriptKind, ScriptSpec

__all__ = ["inline_script", "bundle_scripts", "webpack_bundle_name"]


def _merged_category(methods: list[MethodSpec]) -> Category:
    tracking = functional = 0
    for method in methods:
        t, f = method.request_counts()
        tracking += t
        functional += f
    if tracking and functional:
        return Category.MIXED
    if tracking or functional:
        return Category.TRACKING if tracking else Category.FUNCTIONAL
    # No planned behaviour at all: fall back to the declared method intents.
    categories = {method.category for method in methods}
    if categories == {Category.TRACKING}:
        return Category.TRACKING
    if categories == {Category.FUNCTIONAL}:
        return Category.FUNCTIONAL
    return Category.MIXED


def inline_script(script: ScriptSpec, page_url: str, index: int) -> ScriptSpec:
    """Inline ``script`` into the page at ``page_url``.

    DevTools attributes inline code to the document, so the new identity is
    the page URL plus an ``#inline-N`` discriminator (the paper's crawler
    keeps the same convention).  The original URL is retained in
    ``bundle_sources`` for provenance.
    """
    return ScriptSpec(
        url=f"{page_url}#inline-{index}",
        category=script.category,
        kind=ScriptKind.INLINE,
        methods=script.methods,
        sites=[page_url],
        bundle_sources=(script.url,),
    )


def webpack_bundle_name(rng: random.Random) -> str:
    """A webpack-style content-hashed bundle file name."""
    digest = "".join(rng.choice("0123456789abcdef") for _ in range(20))
    return f"app.{digest}.js"


def bundle_scripts(
    scripts: list[ScriptSpec],
    bundle_url: str,
    *,
    site: str,
    rng: random.Random | None = None,
) -> ScriptSpec:
    """Merge several scripts into one bundle served at ``bundle_url``.

    Method name collisions get a module-prefix (webpack keeps module paths),
    and the method order is interleaved the way dependency-ordered bundlers
    emit code.  The bundle's category is derived from the merged behaviour:
    bundling a tracker with a functional library yields a *mixed* script —
    the pressl.co case study from the paper.
    """
    if not scripts:
        raise ValueError("cannot bundle zero scripts")
    rng = rng or random.Random(0)
    methods: list[MethodSpec] = []
    seen_names: set[str] = set()
    for module_index, source in enumerate(scripts):
        for method in source.methods:
            name = method.name
            if name in seen_names:
                name = f"__webpack_module_{module_index}__.{method.name}"
            seen_names.add(name)
            methods.append(
                MethodSpec(
                    name=name,
                    category=method.category,
                    invocations=method.invocations,
                    coverage=method.coverage,
                )
            )
    rng.shuffle(methods)
    return ScriptSpec(
        url=bundle_url,
        category=_merged_category(methods),
        kind=ScriptKind.BUNDLED,
        methods=methods,
        sites=[site],
        bundle_sources=tuple(s.url for s in scripts),
    )
