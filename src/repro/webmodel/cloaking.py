"""CNAME-cloaking transform for the synthetic web (paper §6 related work).

Rewrites a slice of the tracking traffic that is currently caught by
``||tracker-domain^`` rules so it is served from a first-party subdomain
(``metrics.<publisher>``) with a clean path, and records the CNAME that
points that subdomain back at the tracker.  After the transform:

* the plain filter-list oracle misses the rewritten requests (they look
  first-party and carry no path markers),
* an uncloaking labeler (``RequestLabeler(resolver=...)``) recovers them by
  matching rules against the canonical name.

The transform is opt-in — the default calibrated population stays exactly
as published — and returns a manifest for experiment accounting.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..filterlists import ADVERTISING_DOMAINS, TRACKER_DOMAINS
from ..urlkit import hostname, parse_url
from ..urlkit.dns import CnameResolver, DnsZone
from .generator import SyntheticWeb
from .resources import PlannedRequest

__all__ = ["CloakingManifest", "apply_cname_cloaking"]

_CLOAK_PREFIXES = ("metrics", "insight", "data", "cdn-analytics", "smetrics")
_LISTED = frozenset(ADVERTISING_DOMAINS) | frozenset(TRACKER_DOMAINS)


@dataclass
class CloakingManifest:
    """What the transform changed, for experiment accounting."""

    zone: DnsZone
    cloaked_requests: int = 0
    eligible_requests: int = 0
    aliases: dict[str, str] = field(default_factory=dict)

    @property
    def resolver(self) -> CnameResolver:
        return CnameResolver(self.zone)

    @property
    def cloaked_share(self) -> float:
        if self.eligible_requests == 0:
            return 0.0
        return self.cloaked_requests / self.eligible_requests


def _first_party_domain(site_url: str) -> str:
    host = hostname(site_url)
    return host.removeprefix("www.")


def apply_cname_cloaking(
    web: SyntheticWeb,
    *,
    fraction: float = 0.3,
    seed: int = 23,
) -> CloakingManifest:
    """Cloak ``fraction`` of the domain-rule-labeled tracking requests.

    Only requests whose tracking label comes from a listed tracker *domain*
    are eligible — marker-path tracking stays labeled regardless of host,
    so cloaking it would not evade anything.  Mutates ``web`` in place.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    rng = random.Random(seed)
    manifest = CloakingManifest(zone=DnsZone())

    for script in web.scripts:
        if not script.sites:
            continue
        site = script.sites[0]
        publisher = _first_party_domain(site)
        for method in script.methods:
            for invocation in method.invocations:
                for index, request in enumerate(invocation.requests):
                    if not request.tracking:
                        continue
                    url = parse_url(request.url)
                    tracker_domain = _listed_domain(url.host)
                    if tracker_domain is None:
                        continue
                    if _has_marker_path(url.path + "?" + url.query):
                        continue  # path rules would still catch it
                    manifest.eligible_requests += 1
                    if rng.random() >= fraction:
                        continue
                    alias = manifest.aliases.get(tracker_domain + "|" + publisher)
                    if alias is None:
                        # one alias per (tracker, publisher) pair, like real
                        # CNAME deployments (e.g. Adobe's smetrics.*); a
                        # numeric suffix disambiguates when one publisher
                        # cloaks several trackers behind the same prefix
                        prefix = rng.choice(_CLOAK_PREFIXES)
                        alias = f"{prefix}.{publisher}"
                        suffix = 1
                        while alias in manifest.zone.records:
                            suffix += 1
                            alias = f"{prefix}{suffix}.{publisher}"
                        manifest.aliases[tracker_domain + "|" + publisher] = alias
                        manifest.zone.add_cname(alias, url.host)
                    cloaked = f"https://{alias}/api/v1/content/{rng.randrange(10**6)}"
                    invocation.requests[index] = PlannedRequest(
                        url=cloaked,
                        tracking=request.tracking,
                        resource_type=request.resource_type,
                    )
                    manifest.cloaked_requests += 1
    return manifest


def _listed_domain(host: str) -> str | None:
    for domain in _LISTED:
        if host == domain or host.endswith("." + domain):
            return domain
    return None


def _has_marker_path(path_and_query: str) -> bool:
    from ..filterlists import AD_PATH_MARKERS, TRACKER_PATH_MARKERS

    return any(
        marker in path_and_query
        for marker in AD_PATH_MARKERS + TRACKER_PATH_MARKERS
    )
