"""Deterministic name and URL synthesis for the synthetic web.

Two hard requirements drive this module:

1. **Oracle consistency** — a request the generator *intends* as tracking
   must be labeled tracking by the filter-list oracle, and an intended
   functional request must not match any rule.  Tracking URLs therefore
   either live on a listed tracker domain or carry a listed path marker;
   functional URLs are built only from the clean vocabulary below (the test
   suite cross-checks every vocabulary entry against the oracle).
2. **Paper anecdotes** — the domains, hostnames, scripts and methods the
   paper names (google-analytics.com, pixel.wp.com, i1.wp.com,
   jquery.min.js, ``Pa.xhrRequest`` …) appear verbatim so the case studies
   replay.
"""

from __future__ import annotations

import random

from ..filterlists import (
    AD_PATH_MARKERS,
    ADVERTISING_DOMAINS,
    TRACKER_DOMAINS,
    TRACKER_PATH_MARKERS,
)

__all__ = ["NameFactory"]

# Mixed first parties the paper names in §4.
SEED_MIXED_DOMAINS = (
    "gstatic.com",
    "google.com",
    "facebook.com",
    "facebook.net",
    "wp.com",
)

# Functional CDNs / content hosts the paper names in §4.
SEED_FUNCTIONAL_DOMAINS = (
    "twimg.com",
    "zychr.com",
    "fbcdn.net",
    "w.org",
    "parastorage.com",
    "cdnjs-mirror.net",
    "libstatic.org",
)

_TRACK_HOST_PREFIXES = ("pixel", "stats", "metrics", "events", "beacon", "tag")
_FUNC_HOST_PREFIXES = ("cdn", "static", "img", "assets", "c0", "widgets", "media")
_MIXED_HOST_PREFIXES = ("i0", "i1", "i2", "api", "www", "app", "edge")

_TRACKER_DOMAIN_STEMS = (
    "adtech", "trkmetrics", "pixelhub", "admesh", "clickstone", "audiencelab",
    "beaconnet", "tagwire", "admetrica", "viewcounter",
)
_FUNCTIONAL_DOMAIN_STEMS = (
    "cdnstack", "staticware", "webassets", "contenthub", "imagefarm",
    "fontdepot", "mediastore", "uikit", "pagecache", "bundlehost",
)
_MIXED_DOMAIN_STEMS = (
    "platformapi", "socialwidgets", "sitecloud", "webservices", "appgrid",
    "connecthub", "portalnet", "omnistack",
)
_PUBLISHER_STEMS = (
    "newsdaily", "shopsmart", "travelhub", "recipebox", "sportslive",
    "techwire", "healthplus", "financetoday", "weathernow", "cinemaguide",
    "gardenworld", "petcorner", "musicstream", "artgallery", "booknook",
)
_TLDS = ("com", "net", "org", "io", "co", "dev", "info", "site", "online")

# Script-name vocabulary; tracking names echo the paper's examples.
_TRACKING_SCRIPT_NAMES = (
    "show_ads_impl_fy2019.js", "uc.js", "analytics.js", "fbevents.js",
    "gtm.js", "pixel-loader.js", "tag-manager.js", "beacon.min.js",
    "sdk.js", "adsbygoogle-loader.js",
)
_FUNCTIONAL_SCRIPT_NAMES = (
    "jquery.min.js", "jquery-1.11.2.min.js", "jquery.js", "react.production.min.js",
    "vue.runtime.min.js", "bootstrap.bundle.min.js", "swiper.min.js",
    "stack.js", "ui-core.min.js", "carousel.js", "require.js",
)
_MIXED_SCRIPT_NAMES = (
    "lazysizes.min.js", "app.js", "tfa.js", "main.js", "player.js",
    "clone.js", "widgets.js", "MJ_Static-Built.js", "2.0c9c64b2.chunk.js",
    "platform.js", "loader.js",
)

_TRACKING_METHOD_NAMES = (
    "sendBeacon", "trackEvent", "fireTag", "get", "logImpression",
    "reportView", "pxl", "collectStats", "m1",
)
_FUNCTIONAL_METHOD_NAMES = (
    "render", "loadWidget", "fetchContent", "X", "initCarousel",
    "lazyLoad", "hydrate", "mountPlayer", "m3",
)
_MIXED_METHOD_NAMES = (
    "Pa.xhrRequest", "xhrRequest", "m2", "dispatch", "send", "request",
    "loadResource",
)

_FUNCTIONAL_PATHS = (
    "/static/js/app.{n}.js",
    "/static/css/main.{n}.css",
    "/img/hero-{n}.jpg",
    "/img/logo-{n}.png",
    "/assets/icons/sprite-{n}.svg",
    "/api/v1/content/{n}",
    "/api/v1/comments/{n}",
    "/fonts/webfont-{n}.woff2",
    "/media/clip-{n}.mp4",
    "/widgets/embed-{n}.html",
    "/data/feed-{n}.json",
)

_TRACKING_PATH_TEMPLATES_BY_MARKER = {
    "/pixel": "/pixel/{n}.gif",
    "/track/": "/track/event-{n}",
    "/beacon": "/beacon/{n}",
    "/telemetry/": "/telemetry/batch-{n}",
    "/collect?": "/collect?tid={n}",
    "/analytics/": "/analytics/hit-{n}",
    "/fingerprint/": "/fingerprint/fp-{n}",
    "/impression?": "/impression?cid={n}",
    "/ads/": "/ads/slot-{n}.js",
    "/adserver/": "/adserver/bid-{n}",
    "/banners/": "/banners/creative-{n}.png",
    "/sponsored/": "/sponsored/unit-{n}",
    "/prebid/": "/prebid/auction-{n}",
    "/adframe/": "/adframe/frame-{n}.html",
}


class NameFactory:
    """Seeded source of unique names for every entity kind."""

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._counter = 0
        self._seen_domains: set[str] = set()

    def _next(self) -> int:
        self._counter += 1
        return self._counter

    # -- domains -----------------------------------------------------------
    def _generated_domain(self, stems: tuple[str, ...]) -> str:
        while True:
            stem = self._rng.choice(stems)
            tld = self._rng.choice(_TLDS)
            name = f"{stem}{self._next():04d}.{tld}"
            if name not in self._seen_domains:
                self._seen_domains.add(name)
                return name

    def tracking_domains(self, count: int) -> list[str]:
        """Tracking domains: listed real trackers first, then generated.

        Generated tracking domains are not on any list — their requests get
        labeled through path markers, which models trackers that rotate
        domains faster than the lists (the circumvention the paper opens
        with).  Returns (domain, listed?) implicitly: listed domains are
        exactly the seed prefix.
        """
        seeds = [d for d in ADVERTISING_DOMAINS + TRACKER_DOMAINS]
        self._rng.shuffle(seeds)
        out = seeds[:count]
        self._seen_domains.update(out)
        while len(out) < count:
            out.append(self._generated_domain(_TRACKER_DOMAIN_STEMS))
        return out

    def is_listed_tracker(self, domain: str) -> bool:
        return domain in ADVERTISING_DOMAINS or domain in TRACKER_DOMAINS

    def functional_domains(self, count: int) -> list[str]:
        out = list(SEED_FUNCTIONAL_DOMAINS[: min(count, len(SEED_FUNCTIONAL_DOMAINS))])
        self._seen_domains.update(out)
        while len(out) < count:
            out.append(self._generated_domain(_FUNCTIONAL_DOMAIN_STEMS))
        return out

    def mixed_domains(self, count: int) -> list[str]:
        out = list(SEED_MIXED_DOMAINS[: min(count, len(SEED_MIXED_DOMAINS))])
        self._seen_domains.update(out)
        while len(out) < count:
            out.append(self._generated_domain(_MIXED_DOMAIN_STEMS))
        return out

    def publisher_domains(self, count: int) -> list[str]:
        return [self._generated_domain(_PUBLISHER_STEMS) for _ in range(count)]

    # -- hostnames -----------------------------------------------------------
    def hostname(self, domain: str, category: str, index: int) -> str:
        prefixes = {
            "tracking": _TRACK_HOST_PREFIXES,
            "functional": _FUNC_HOST_PREFIXES,
            "mixed": _MIXED_HOST_PREFIXES,
        }[category]
        prefix = prefixes[index % len(prefixes)]
        if index >= len(prefixes):
            prefix = f"{prefix}{index // len(prefixes)}"
        return f"{prefix}.{domain}"

    # -- scripts / methods ---------------------------------------------------
    def script_name(self, category: str) -> str:
        names = {
            "tracking": _TRACKING_SCRIPT_NAMES,
            "functional": _FUNCTIONAL_SCRIPT_NAMES,
            "mixed": _MIXED_SCRIPT_NAMES,
        }[category]
        return self._rng.choice(names)

    def script_url(self, host: str, category: str) -> str:
        name = self.script_name(category)
        return f"https://{host}/js/{self._next():05d}/{name}"

    def method_names(self, category: str, count: int) -> list[str]:
        names = {
            "tracking": _TRACKING_METHOD_NAMES,
            "functional": _FUNCTIONAL_METHOD_NAMES,
            "mixed": _MIXED_METHOD_NAMES,
        }[category]
        out = []
        for i in range(count):
            base = names[i % len(names)]
            out.append(base if i < len(names) else f"{base}_{i // len(names)}")
        return out

    # -- request paths ---------------------------------------------------------
    def tracking_path(self, advertising: bool = False) -> str:
        markers = AD_PATH_MARKERS if advertising else TRACKER_PATH_MARKERS
        marker = self._rng.choice(markers)
        template = _TRACKING_PATH_TEMPLATES_BY_MARKER[marker]
        return template.format(n=self._next())

    def functional_path(self) -> str:
        template = self._rng.choice(_FUNCTIONAL_PATHS)
        return template.format(n=self._next())

    def request_url(self, host: str, tracking: bool, listed_host: bool = False) -> str:
        """A concrete request URL with the right oracle label.

        ``listed_host`` means the host is already covered by a ``||domain^``
        rule, so a tracking request there can use any path.
        """
        if tracking:
            if listed_host and self._rng.random() < 0.5:
                path = self.functional_path()  # still labeled by domain rule
            else:
                path = self.tracking_path(advertising=self._rng.random() < 0.4)
        else:
            path = self.functional_path()
        return f"https://{host}{path}"

    @staticmethod
    def functional_path_vocabulary() -> tuple[str, ...]:
        """Exposed for the oracle-consistency test."""
        return _FUNCTIONAL_PATHS

    @staticmethod
    def tracking_path_templates() -> dict[str, str]:
        return dict(_TRACKING_PATH_TEMPLATES_BY_MARKER)
