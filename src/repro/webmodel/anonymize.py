"""Anonymous-function transform (paper §5, Limitations).

"Our method-level analysis does not distinguish between different anonymous
functions in a script and treats them as part of the same method.  This
limitation can be addressed by using the line and column number information
available for each method invocation in the call stack."

This transform renames a slice of the methods inside mixed scripts to the
anonymous name stack traces actually report, while assigning each a
distinct source position.  With name-only attribution (the paper's
default), all anonymous methods of a script collapse into one resource —
merging, say, a tracking and a functional anonymous callback into a fake
*mixed* method.  Position-aware attribution
(``RequestLabeler(anonymous_by_position=True)``) recovers them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .generator import SyntheticWeb
from .resources import Category
from .website import Functionality

__all__ = ["AnonymizeManifest", "anonymize_methods", "ANONYMOUS_NAME"]

#: What DevTools reports for an anonymous function's functionName.
ANONYMOUS_NAME = "anonymous"


@dataclass
class AnonymizeManifest:
    """What the transform renamed."""

    methods_anonymized: int = 0
    scripts_touched: int = 0
    #: (script_url, old_name) -> (line, column)
    positions: dict[tuple[str, str], tuple[int, int]] = field(default_factory=dict)


def anonymize_methods(
    web: SyntheticWeb,
    *,
    fraction: float = 0.5,
    seed: int = 47,
) -> AnonymizeManifest:
    """Turn ``fraction`` of mixed-script methods anonymous; mutates ``web``.

    Every anonymized method keeps a unique (line, column) so the callstack
    still carries enough information for position-aware attribution.
    Functionality dependencies that referenced the old name are updated so
    breakage semantics stay intact.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    rng = random.Random(seed)
    manifest = AnonymizeManifest()
    renames: dict[tuple[str, str], str] = {}

    for script in web.scripts:
        if script.category is not Category.MIXED or len(script.methods) < 2:
            continue
        touched = False
        line = rng.randint(1, 40)
        for method in script.methods:
            if rng.random() >= fraction:
                continue
            old_name = method.name
            line += rng.randint(20, 400)
            column = rng.randint(0, 120)
            method.name = ANONYMOUS_NAME
            method.line = line
            method.column = column
            manifest.methods_anonymized += 1
            manifest.positions[(script.url, old_name)] = (line, column)
            renames[(script.url, old_name)] = ANONYMOUS_NAME
            touched = True
        if touched:
            manifest.scripts_touched += 1

    if renames:
        _update_functionality(web, renames)
    return manifest


def _update_functionality(
    web: SyntheticWeb, renames: dict[tuple[str, str], str]
) -> None:
    for site in web.websites:
        for index, feature in enumerate(site.functionalities):
            if not feature.required_methods:
                continue
            updated = frozenset(
                (script, renames.get((script, name), name))
                for script, name in feature.required_methods
            )
            if updated != feature.required_methods:
                site.functionalities[index] = Functionality(
                    name=feature.name,
                    tier=feature.tier,
                    required_scripts=feature.required_scripts,
                    required_methods=updated,
                )
