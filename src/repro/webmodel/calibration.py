"""Paper-derived calibration targets.

Tables 1 and 2 of the paper give, for each granularity, the number of
entities and the number of requests in each class.  The generator scales
these marginals to the requested crawl size so that the *shape* of the
reproduction (who is mixed, what share of requests descends each level,
where the separation factors land) matches the paper at any scale.

All numbers below are copied verbatim from the paper:

* Table 1 (requests):  domain 755,784 T / 566,810 F / 1,129,109 M;
  hostname 161,604 / 106,542 / 860,963; script 235,157 / 490,295 / 135,511;
  method 23,819 / 74,223 / 37,469.
* Table 2 (entities):  domain 6,493 / 50,938 / 11,861 (of 69,292);
  hostname 4,429 / 9,248 / 12,383 (of 26,060); script 194,156 / 134,726 /
  21,168 (of 350,050); method 17,940 / 40,500 / 5,579 (of 64,019).
* Crawl: 100,000 sites, 2,451,703 script-initiated requests.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LevelTargets", "PaperTargets", "PAPER", "ScaledTargets", "scale_targets"]


@dataclass(frozen=True, slots=True)
class LevelTargets:
    """Entity and request counts for one granularity level."""

    entities_tracking: int
    entities_functional: int
    entities_mixed: int
    requests_tracking: int
    requests_functional: int
    requests_mixed: int

    @property
    def entities_total(self) -> int:
        return self.entities_tracking + self.entities_functional + self.entities_mixed

    @property
    def requests_total(self) -> int:
        return self.requests_tracking + self.requests_functional + self.requests_mixed

    @property
    def separation_factor(self) -> float:
        """Share of this level's requests attributed to pure resources."""
        total = self.requests_total
        if total == 0:
            return 0.0
        return (self.requests_tracking + self.requests_functional) / total

    @property
    def mixed_entity_share(self) -> float:
        total = self.entities_total
        return self.entities_mixed / total if total else 0.0


@dataclass(frozen=True, slots=True)
class PaperTargets:
    """The full set of published marginals."""

    sites: int
    domain: LevelTargets
    hostname: LevelTargets
    script: LevelTargets
    method: LevelTargets

    @property
    def total_requests(self) -> int:
        return self.domain.requests_total

    def cumulative_separation(self) -> list[float]:
        """Cumulative separation factor after each level (54/65/94/98%)."""
        total = self.domain.requests_total
        attributed = 0
        out: list[float] = []
        for level in (self.domain, self.hostname, self.script, self.method):
            attributed += level.requests_tracking + level.requests_functional
            out.append(attributed / total)
        return out


PAPER = PaperTargets(
    sites=100_000,
    domain=LevelTargets(6_493, 50_938, 11_861, 755_784, 566_810, 1_129_109),
    hostname=LevelTargets(4_429, 9_248, 12_383, 161_604, 106_542, 860_963),
    script=LevelTargets(194_156, 134_726, 21_168, 235_157, 490_295, 135_511),
    method=LevelTargets(17_940, 40_500, 5_579, 23_819, 74_223, 37_469),
)


@dataclass(frozen=True, slots=True)
class ScaledTargets:
    """Paper targets scaled to a smaller (or larger) crawl."""

    sites: int
    scale: float
    domain: LevelTargets
    hostname: LevelTargets
    script: LevelTargets
    method: LevelTargets

    @property
    def levels(self) -> tuple[LevelTargets, ...]:
        return (self.domain, self.hostname, self.script, self.method)


def _scale_level(
    level: LevelTargets,
    scale: float,
    *,
    min_entities: int = 2,
    min_mixed_requests_per_entity: int = 4,
) -> LevelTargets:
    """Scale one level's marginals, keeping every class non-degenerate.

    Mixed entities need enough request volume to express a ratio strictly
    inside ``(-2, 2)``; ``min_mixed_requests_per_entity`` guards that.
    """

    def ents(count: int) -> int:
        return max(min_entities, round(count * scale))

    e_t, e_f, e_m = (
        ents(level.entities_tracking),
        ents(level.entities_functional),
        ents(level.entities_mixed),
    )
    r_t = max(e_t, round(level.requests_tracking * scale))
    r_f = max(e_f, round(level.requests_functional * scale))
    r_m = max(e_m * min_mixed_requests_per_entity, round(level.requests_mixed * scale))
    return LevelTargets(e_t, e_f, e_m, r_t, r_f, r_m)


def scale_targets(sites: int, paper: PaperTargets = PAPER) -> ScaledTargets:
    """Scale the paper's marginals to a crawl of ``sites`` landing pages.

    The scaling is linear in the site count — the paper's per-site request
    rate (~24.5 script-initiated requests/site) is preserved — with floors
    so that even tiny test crawls keep every class populated.

    Cross-level consistency (the requests of level *k+1* are exactly the
    mixed requests of level *k*) is restored after rounding by rebuilding
    each deeper level's request total from its class shares.
    """
    if sites <= 0:
        raise ValueError(f"sites must be positive, got {sites}")
    scale = sites / paper.sites

    domain = _scale_level(paper.domain, scale)
    hostname = _scale_level(paper.hostname, scale)
    script = _scale_level(paper.script, scale)
    method = _scale_level(paper.method, scale)

    # Re-balance each child level so its request total equals the parent's
    # mixed-request count, preserving the published class shares.
    hostname = _fit_requests(hostname, domain.requests_mixed)
    script = _fit_requests(script, hostname.requests_mixed)
    method = _fit_requests(method, script.requests_mixed)
    return ScaledTargets(
        sites=sites,
        scale=scale,
        domain=domain,
        hostname=hostname,
        script=script,
        method=method,
    )


def _fit_requests(level: LevelTargets, request_total: int) -> LevelTargets:
    """Rescale a level's request classes to sum exactly to ``request_total``."""
    current = level.requests_total
    if current == 0:
        raise ValueError("level has no requests to fit")
    shares = (
        level.requests_tracking / current,
        level.requests_functional / current,
        level.requests_mixed / current,
    )
    floors = (
        level.entities_tracking,
        level.entities_functional,
        level.entities_mixed * 4,
    )
    needed = sum(floors)
    if request_total < needed:
        raise ValueError(
            f"request budget {request_total} cannot satisfy per-entity "
            f"minimums {needed}; increase the crawl size"
        )
    r_t = max(floors[0], round(shares[0] * request_total))
    r_f = max(floors[1], round(shares[1] * request_total))
    r_m = request_total - r_t - r_f
    if r_m < floors[2]:
        # Take the shortfall back from the larger pure class.
        shortfall = floors[2] - r_m
        if r_f - shortfall >= floors[1]:
            r_f -= shortfall
        else:
            r_t -= shortfall
        r_m = floors[2]
    return LevelTargets(
        level.entities_tracking,
        level.entities_functional,
        level.entities_mixed,
        r_t,
        r_f,
        r_m,
    )
