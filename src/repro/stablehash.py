"""Process-stable hashing for simulation seeds.

The builtin ``hash()`` is salted per interpreter process (PEP 456), so
seeding simulation RNGs with it makes crawls irreproducible across
processes — fatal for the streaming engine's checkpoint/resume, where
shards crawled before and after a restart must live in the same simulated
universe.  Every derived seed (failure injection, coverage observation)
goes through this helper instead.
"""

from __future__ import annotations

import zlib

__all__ = ["stable_hash"]


def stable_hash(*parts: object) -> int:
    """A deterministic 31-bit hash of the given parts, stable across runs."""
    data = "\x1f".join(str(part) for part in parts).encode("utf-8")
    return zlib.crc32(data) & 0x7FFFFFFF
