"""Equation 1 of the paper: the common-log tracking/functional ratio.

Kept in a dependency-free module because both the core classifier and the
synthetic-web allocators (which must *plan* entities into classification
bands) need the exact same arithmetic.
"""

from __future__ import annotations

import math

__all__ = ["DEFAULT_THRESHOLD", "log_ratio"]

#: The paper's symmetric classification threshold: |ratio| >= 2 is pure.
DEFAULT_THRESHOLD = 2.0


def log_ratio(tracking: int, functional: int) -> float:
    """``log10(#tracking / #functional)`` with ±inf for one-sided counts.

    An entity with no requests at all has no defined ratio and raises —
    callers must never produce one.
    """
    if tracking < 0 or functional < 0:
        raise ValueError("negative request counts")
    if tracking == 0 and functional == 0:
        raise ValueError("entity with no requests has no ratio")
    if functional == 0:
        return math.inf
    if tracking == 0:
        return -math.inf
    return math.log10(tracking / functional)
