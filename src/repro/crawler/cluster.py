"""Sharded crawl coordinator — the paper's 13-node Docker cluster.

The study partitioned 100K pages across a 13-node cluster, each node
crawling its shard in a container.  We reproduce the coordination logic:
deterministic sharding, per-node crawls (sequentially simulated; the
behaviour is identical because crawls are stateless), failure accounting
and shard merging into one database.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..browser.engine import BlockingPolicy, BrowserEngine
from ..webmodel.generator import SyntheticWeb
from .crawler import Crawler, CrawlResult
from .storage import RequestDatabase
from .tranco import RankedSite

__all__ = [
    "NodeReport",
    "ClusterCrawlResult",
    "CrawlCluster",
    "NODE_ENGINE_SEED",
    "node_failure_seed",
    "round_robin_shards",
]

_PAPER_NODE_COUNT = 13

#: Every node runs its browser with this seed (one Chrome build per
#: container); page behaviour is then a pure function of the site, so any
#: re-grouping of sites reproduces the same events.
NODE_ENGINE_SEED = 1729

_NODE_FAILURE_SEED_BASE = 1000


def node_failure_seed(node_id: int) -> int:
    """The failure-injection seed node ``node_id`` crawls with."""
    return _NODE_FAILURE_SEED_BASE + node_id


def round_robin_shards(sites: list[RankedSite], nodes: int) -> list[list[RankedSite]]:
    """Round-robin shard assignment — balanced and deterministic.

    Shared with the streaming engine, whose failure accounting must assign
    each site the same virtual node a :class:`CrawlCluster` would.
    """
    if nodes < 1:
        raise ValueError("need at least one node")
    shards: list[list[RankedSite]] = [[] for _ in range(nodes)]
    for index, site in enumerate(sites):
        shards[index % nodes].append(site)
    return shards


@dataclass(frozen=True)
class NodeReport:
    """Per-node crawl accounting."""

    node_id: int
    pages_assigned: int
    pages_crawled: int
    pages_failed: int
    average_load_time: float


@dataclass
class ClusterCrawlResult:
    """Merged output of every node's shard."""

    database: RequestDatabase
    nodes: list[NodeReport] = field(default_factory=list)

    @property
    def pages_crawled(self) -> int:
        return sum(n.pages_crawled for n in self.nodes)

    @property
    def pages_failed(self) -> int:
        return sum(n.pages_failed for n in self.nodes)


class CrawlCluster:
    """Shards the site list over N nodes and merges the results."""

    def __init__(
        self,
        web: SyntheticWeb,
        *,
        nodes: int = _PAPER_NODE_COUNT,
        policy: BlockingPolicy | None = None,
        failure_rate: float = 0.0,
    ) -> None:
        if nodes < 1:
            raise ValueError("need at least one node")
        self._web = web
        self._nodes = nodes
        self._policy = policy
        self._failure_rate = failure_rate

    def shards(self) -> list[list[RankedSite]]:
        """This cluster's shard assignment (see :func:`round_robin_shards`)."""
        crawler = Crawler(self._web)
        return round_robin_shards(list(crawler.site_list()), self._nodes)

    def crawl(self) -> ClusterCrawlResult:
        """Run every node's shard and merge the databases."""
        merged = RequestDatabase()
        reports: list[NodeReport] = []
        for node_id, shard in enumerate(self.shards()):
            # Each node gets its own engine, like each container ran its
            # own Chrome; the shared clock seed keeps runs reproducible.
            crawler = Crawler(
                self._web,
                engine=BrowserEngine(seed=NODE_ENGINE_SEED),
                policy=self._policy,
                failure_rate=self._failure_rate,
                failure_seed=node_failure_seed(node_id),
            )
            result: CrawlResult = crawler.crawl(shard)
            merged.extend(result.database)
            reports.append(
                NodeReport(
                    node_id=node_id,
                    pages_assigned=len(shard),
                    pages_crawled=result.pages_crawled,
                    pages_failed=result.pages_failed,
                    average_load_time=result.average_load_time,
                )
            )
        return ClusterCrawlResult(database=merged, nodes=reports)
