"""Crawl infrastructure: ranked site lists, stateless crawling, sharding,
and the request database the offline analysis runs over."""

from .cluster import (
    ClusterCrawlResult,
    CrawlCluster,
    NodeReport,
    node_failure_seed,
    round_robin_shards,
)
from .crawler import Crawler, CrawlResult, page_load_fails
from .storage import RequestDatabase
from .tranco import RankedSite, TrancoList

__all__ = [
    "RequestDatabase",
    "RankedSite",
    "TrancoList",
    "Crawler",
    "CrawlResult",
    "CrawlCluster",
    "ClusterCrawlResult",
    "NodeReport",
    "round_robin_shards",
    "node_failure_seed",
    "page_load_fails",
]
