"""Crawl infrastructure: ranked site lists, stateless crawling, sharding,
and the request database the offline analysis runs over."""

from .cluster import ClusterCrawlResult, CrawlCluster, NodeReport
from .crawler import Crawler, CrawlResult
from .storage import RequestDatabase
from .tranco import RankedSite, TrancoList

__all__ = [
    "RequestDatabase",
    "RankedSite",
    "TrancoList",
    "Crawler",
    "CrawlResult",
    "CrawlCluster",
    "ClusterCrawlResult",
    "NodeReport",
]
