"""Request database — the "Database" box in the paper's Figure 2.

The crawl writes every captured event here; TrackerSift's analysis is post
hoc and offline over this store.  Three access patterns are supported:

* an in-memory store (default) for analysis pipelines and tests,
* SQLite persistence (stdlib ``sqlite3``) for crawls that outlive a process,
* JSON-lines export/import for interchange.

All three round-trip losslessly, including nested async call stacks.
"""

from __future__ import annotations

import json
import sqlite3
from collections.abc import Iterable, Iterator
from pathlib import Path

from ..browser.devtools import RequestWillBeSent, ResponseReceived

__all__ = ["RequestDatabase"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS requests (
    request_id TEXT PRIMARY KEY,
    url TEXT NOT NULL,
    top_level_url TEXT NOT NULL,
    frame_url TEXT NOT NULL,
    resource_type TEXT NOT NULL,
    timestamp REAL NOT NULL,
    call_stack TEXT,
    headers TEXT NOT NULL,
    method TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS responses (
    request_id TEXT PRIMARY KEY,
    url TEXT NOT NULL,
    status INTEGER NOT NULL,
    mime_type TEXT NOT NULL,
    timestamp REAL NOT NULL,
    headers TEXT NOT NULL,
    body_size INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_requests_page ON requests (top_level_url);
"""


class RequestDatabase:
    """Store for captured request/response events.

    Implements the :class:`~repro.browser.extension.EventSink` protocol, so
    a :class:`~repro.browser.extension.CrawlExtension` can write straight
    into it.
    """

    def __init__(self) -> None:
        self._requests: list[RequestWillBeSent] = []
        self._responses: list[ResponseReceived] = []
        self._request_ids: set[str] = set()

    # -- EventSink protocol ---------------------------------------------------
    def add_request(self, event: RequestWillBeSent) -> None:
        if event.request_id in self._request_ids:
            raise ValueError(f"duplicate request_id {event.request_id}")
        self._request_ids.add(event.request_id)
        self._requests.append(event)

    def add_response(self, event: ResponseReceived) -> None:
        self._responses.append(event)

    def extend(self, other: "RequestDatabase") -> None:
        """Merge another database (used when joining cluster shards)."""
        for request in other.requests():
            self.add_request(request)
        for response in other.responses():
            self.add_response(response)

    # -- queries ---------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._requests)

    def requests(self) -> list[RequestWillBeSent]:
        return list(self._requests)

    def responses(self) -> list[ResponseReceived]:
        return list(self._responses)

    def script_initiated(self) -> list[RequestWillBeSent]:
        """The subset entering TrackerSift's analysis (paper §3)."""
        return [r for r in self._requests if r.script_initiated]

    def for_page(self, top_level_url: str) -> list[RequestWillBeSent]:
        return [r for r in self._requests if r.top_level_url == top_level_url]

    def pages(self) -> list[str]:
        seen: set[str] = set()
        out: list[str] = []
        for request in self._requests:
            if request.top_level_url not in seen:
                seen.add(request.top_level_url)
                out.append(request.top_level_url)
        return out

    def iter_requests(self) -> Iterator[RequestWillBeSent]:
        return iter(self._requests)

    # -- JSONL -------------------------------------------------------------------
    def to_jsonl(self, path: str | Path) -> int:
        """Write all events to a JSON-lines file; returns lines written."""
        path = Path(path)
        lines = 0
        with path.open("w", encoding="utf-8") as handle:
            for request in self._requests:
                record = {"kind": "request", **request.to_dict()}
                handle.write(json.dumps(record, sort_keys=True) + "\n")
                lines += 1
            for response in self._responses:
                record = {"kind": "response", **response.to_dict()}
                handle.write(json.dumps(record, sort_keys=True) + "\n")
                lines += 1
        return lines

    @classmethod
    def from_jsonl(cls, path: str | Path) -> "RequestDatabase":
        db = cls()
        with Path(path).open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                kind = record.pop("kind")
                if kind == "request":
                    db.add_request(RequestWillBeSent.from_dict(record))
                elif kind == "response":
                    db.add_response(ResponseReceived.from_dict(record))
                else:
                    raise ValueError(f"unknown record kind {kind!r}")
        return db

    # -- SQLite ---------------------------------------------------------------
    def to_sqlite(self, path: str | Path) -> None:
        """Persist to a SQLite database file (created or replaced)."""
        with sqlite3.connect(str(path)) as conn:
            conn.executescript(_SCHEMA)
            conn.execute("DELETE FROM requests")
            conn.execute("DELETE FROM responses")
            conn.executemany(
                "INSERT INTO requests VALUES (?,?,?,?,?,?,?,?,?)",
                (
                    (
                        r.request_id,
                        r.url,
                        r.top_level_url,
                        r.frame_url,
                        r.resource_type,
                        r.timestamp,
                        json.dumps(r.call_stack.to_dict()) if r.call_stack else None,
                        json.dumps(r.headers, sort_keys=True),
                        r.method,
                    )
                    for r in self._requests
                ),
            )
            conn.executemany(
                "INSERT INTO responses VALUES (?,?,?,?,?,?,?)",
                (
                    (
                        r.request_id,
                        r.url,
                        r.status,
                        r.mime_type,
                        r.timestamp,
                        json.dumps(r.headers, sort_keys=True),
                        r.body_size,
                    )
                    for r in self._responses
                ),
            )
            conn.commit()

    @classmethod
    def from_sqlite(cls, path: str | Path) -> "RequestDatabase":
        from ..browser.callstack import CallStack

        db = cls()
        with sqlite3.connect(str(path)) as conn:
            rows = conn.execute(
                "SELECT request_id, url, top_level_url, frame_url, resource_type,"
                " timestamp, call_stack, headers, method FROM requests"
                " ORDER BY timestamp, request_id"
            )
            for row in rows:
                stack = CallStack.from_dict(json.loads(row[6])) if row[6] else None
                db.add_request(
                    RequestWillBeSent(
                        request_id=row[0],
                        url=row[1],
                        top_level_url=row[2],
                        frame_url=row[3],
                        resource_type=row[4],
                        timestamp=row[5],
                        call_stack=stack,
                        headers=json.loads(row[7]),
                        method=row[8],
                    )
                )
            rows = conn.execute(
                "SELECT request_id, url, status, mime_type, timestamp, headers,"
                " body_size FROM responses ORDER BY timestamp, request_id"
            )
            for row in rows:
                db.add_response(
                    ResponseReceived(
                        request_id=row[0],
                        url=row[1],
                        status=row[2],
                        mime_type=row[3],
                        timestamp=row[4],
                        headers=json.loads(row[5]),
                        body_size=row[6],
                    )
                )
        return db

    @classmethod
    def from_events(
        cls,
        requests: Iterable[RequestWillBeSent],
        responses: Iterable[ResponseReceived] = (),
    ) -> "RequestDatabase":
        db = cls()
        for request in requests:
            db.add_request(request)
        for response in responses:
            db.add_response(response)
        return db
