"""Tranco-style ranked site list and sampling.

The paper crawls "the landing pages of 100K websites that are randomly
sampled from the Tranco top-million list".  Our synthetic web already
carries ranks; this module provides the list abstraction (rank order,
deterministic random sampling, CSV round-trip in Tranco's ``rank,domain``
format) so crawl composition is an explicit, testable step.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from pathlib import Path

__all__ = ["RankedSite", "TrancoList"]


@dataclass(frozen=True, slots=True)
class RankedSite:
    """One entry of the ranked list."""

    rank: int
    url: str


class TrancoList:
    """An ordered top-list with deterministic sampling."""

    def __init__(self, sites: list[RankedSite]) -> None:
        ranks = [s.rank for s in sites]
        if len(set(ranks)) != len(ranks):
            raise ValueError("duplicate ranks in top list")
        self._sites = sorted(sites, key=lambda s: s.rank)

    def __len__(self) -> int:
        return len(self._sites)

    def __iter__(self):
        return iter(self._sites)

    def __getitem__(self, index: int) -> RankedSite:
        return self._sites[index]

    @classmethod
    def from_urls(cls, urls: list[str]) -> "TrancoList":
        return cls([RankedSite(rank=i + 1, url=url) for i, url in enumerate(urls)])

    def top(self, n: int) -> list[RankedSite]:
        return self._sites[:n]

    def sample(self, n: int, seed: int = 0) -> list[RankedSite]:
        """Random sample of ``n`` sites, in rank order (paper's sampling)."""
        if n > len(self._sites):
            raise ValueError(f"cannot sample {n} from {len(self._sites)} sites")
        rng = random.Random(seed)
        chosen = rng.sample(self._sites, n)
        return sorted(chosen, key=lambda s: s.rank)

    # -- CSV round-trip (Tranco's ``rank,domain`` format) --------------------
    def to_csv(self, path: str | Path) -> None:
        with Path(path).open("w", encoding="utf-8") as handle:
            for site in self._sites:
                handle.write(f"{site.rank},{site.url}\n")

    @classmethod
    def from_csv(cls, path: str | Path) -> "TrancoList":
        sites: list[RankedSite] = []
        with Path(path).open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                rank_text, _, url = line.partition(",")
                sites.append(RankedSite(rank=int(rank_text), url=url))
        return cls(sites)
