"""Single-node stateless crawler (one Docker container in the paper).

Visits each assigned landing page with a fresh browser state, captures
DevTools events through the :class:`~repro.browser.extension.CrawlExtension`
and writes them to a :class:`~repro.crawler.storage.RequestDatabase`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..browser.engine import BlockingPolicy, BrowserEngine
from ..browser.extension import CrawlExtension
from ..stablehash import stable_hash
from ..webmodel.generator import SyntheticWeb
from ..webmodel.website import Website
from .storage import RequestDatabase
from .tranco import RankedSite, TrancoList

__all__ = ["CrawlResult", "Crawler", "page_load_fails"]


def page_load_fails(failure_seed: int, url: str, failure_rate: float) -> bool:
    """The per-page failure decision, as a pure function of its inputs.

    Keyed on ``(failure_seed, url)`` rather than an evolving RNG stream so
    the decision is independent of crawl order — which is what lets the
    streaming engine (:mod:`repro.core.engine`) reproduce a cluster crawl's
    exact failure set under any shard count.  Hashed with
    :func:`~repro.stablehash.stable_hash` so the set is also identical
    across *processes* — a checkpointed run resumed after a restart keeps
    the same failure universe.
    """
    if failure_rate <= 0:
        return False
    import random

    rng = random.Random(stable_hash(failure_seed, url))
    return rng.random() < failure_rate


@dataclass
class CrawlResult:
    """One node's crawl output."""

    database: RequestDatabase
    pages_crawled: int
    pages_failed: int
    total_load_time: float
    failed_urls: list[str] = field(default_factory=list)

    @property
    def average_load_time(self) -> float:
        if self.pages_crawled == 0:
            return 0.0
        return self.total_load_time / self.pages_crawled


class Crawler:
    """Crawls landing pages of a synthetic web, one at a time, statelessly.

    ``failure_rate`` injects page-load failures (timeouts, TLS errors …) the
    way a real crawl suffers them; failed pages are recorded and skipped,
    never silently retried with stale state.
    """

    def __init__(
        self,
        web: SyntheticWeb,
        *,
        engine: BrowserEngine | None = None,
        policy: BlockingPolicy | None = None,
        failure_rate: float = 0.0,
        failure_seed: int = 99,
    ) -> None:
        self._web = web
        self._engine = engine or BrowserEngine()
        self._policy = policy
        self._failure_rate = failure_rate
        self._failure_seed = failure_seed

    def site_list(self) -> TrancoList:
        """The ranked list the crawl samples from."""
        return TrancoList(
            [RankedSite(rank=w.rank, url=w.url) for w in self._web.websites]
        )

    def _should_fail(self, url: str) -> bool:
        return page_load_fails(self._failure_seed, url, self._failure_rate)

    def crawl(self, sites: list[RankedSite] | None = None) -> CrawlResult:
        """Crawl the given sites (default: all of them, in rank order)."""
        if sites is None:
            sites = list(self.site_list())
        database = RequestDatabase()
        extension = CrawlExtension(database)
        crawled = failed = 0
        total_time = 0.0
        failures: list[str] = []
        by_url = {w.url: w for w in self._web.websites}
        for site in sites:
            website = by_url.get(site.url)
            if website is None or self._should_fail(site.url):
                failed += 1
                failures.append(site.url)
                continue
            page = self._load(website)
            extension.capture_page(page)
            crawled += 1
            total_time += page.load_time
        return CrawlResult(
            database=database,
            pages_crawled=crawled,
            pages_failed=failed,
            total_load_time=total_time,
            failed_urls=failures,
        )

    def _load(self, website: Website):
        # Stateless crawling: the engine rebuilds everything per load and
        # we never carry cookies/local state (the engine holds none).
        return self._engine.load(website, policy=self._policy)
