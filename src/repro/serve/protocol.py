"""Asyncio HTTP/1.1 front end: one thread, pipelining, decide coalescing.

The threaded server (:mod:`repro.serve.server`) spends most of a request
on thread handoffs and per-request framing; on a GIL-bound host its
threads buy concurrency but no parallelism.  This module serves the same
four-endpoint JSON protocol from a single event loop:

* **Hand-rolled HTTP/1.1 parser.**  Requests are framed straight off the
  socket buffer (request line, headers, ``Content-Length`` body — chunked
  bodies are rejected just like the threaded server).  Keep-alive is the
  default; ``Connection: close`` is honoured.
* **Pipelined decode.**  Every complete request already buffered is
  parsed in one pass and answered in order, so a client that pipelines N
  decides pays one round trip, not N.
* **Cross-connection batch coalescing.**  ``/v1/decide`` work from *all*
  connections lands in one :class:`_Coalescer`; each event-loop tick
  drains everything queued into a single
  :meth:`~repro.serve.service.BlockingService.decide_validated` call —
  one snapshot read, one cache lock round, one oracle batch — and splits
  the results back per request.  Validation stays per-request, so one
  malformed request 400s alone without discarding its neighbours' work.
  Latency accounting stays per-decision (k samples for a k-URL drain),
  keeping p99 comparable with the threaded path.

:class:`AsyncBlockingServer` runs standalone (the ``--workers 1`` CLI
path and :class:`AsyncServerThread` for embedding into tests/benchmarks)
or as one worker of a :class:`~repro.serve.supervisor.ServeSupervisor`
(``supervised=True``), where ``/v1/reload`` is declined — reloads arrive
over the supervisor's control pipe so every worker swaps to the same
revision — and ``/metrics`` can be overridden to report the merged
cross-worker view.  Graceful drain (:meth:`AsyncBlockingServer.drain`)
stops accepting, lets every in-flight request finish and flush, then
closes idle keep-alive connections.
"""

from __future__ import annotations

import asyncio
import json
import threading
from pathlib import Path

from ..obs.metrics import (
    PROMETHEUS_CONTENT_TYPE,
    prometheus_from_dict,
    wants_prometheus,
)
from .service import BlockingService, apply_reload_payload

__all__ = ["AsyncBlockingServer", "AsyncServerThread"]

_READ_SIZE = 256 * 1024
_MAX_HEADER_BYTES = 64 * 1024
_MAX_BODY_BYTES = 64 * 1024 * 1024
_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 431: "Request Header Fields Too Large",
            503: "Service Unavailable"}


class _ProtocolError(Exception):
    """A connection-fatal framing error (response sent, then close)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class _Request:
    __slots__ = ("method", "target", "body", "keep_alive", "accept")

    def __init__(
        self,
        method: str,
        target: str,
        body: bytes,
        keep_alive: bool,
        accept: str = "",
    ):
        self.method = method
        self.target = target
        self.body = body
        self.keep_alive = keep_alive
        self.accept = accept


def _parse_requests(buffer: bytes) -> tuple[list[_Request], bytes]:
    """Split every *complete* request off the front of ``buffer``.

    Returns ``(requests, remainder)``; the remainder is a partial request
    (or empty) to be completed by the next socket read.  Raises
    :class:`_ProtocolError` on malformed framing — connection-fatal,
    because the byte stream can no longer be trusted to re-synchronize.
    """
    requests: list[_Request] = []
    while True:
        head_end = buffer.find(b"\r\n\r\n")
        if head_end < 0:
            if len(buffer) > _MAX_HEADER_BYTES:
                raise _ProtocolError(431, "request headers too large")
            return requests, buffer
        head = buffer[:head_end].decode("latin-1")
        lines = head.split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _ProtocolError(400, f"malformed request line: {lines[0]!r}")
        method, target, version = parts
        headers: dict[str, str] = {}
        for line in lines[1:]:
            name, sep, value = line.partition(":")
            if not sep:
                raise _ProtocolError(400, f"malformed header line: {line!r}")
            headers[name.strip().lower()] = value.strip()
        if "transfer-encoding" in headers:
            # Same contract as the threaded server: silently reading a
            # chunked body as empty could turn a reload into a reset.
            raise _ProtocolError(
                400, "chunked request bodies are not supported; "
                "send Content-Length"
            )
        raw_length = headers.get("content-length") or "0"
        try:
            length = int(raw_length)
        except ValueError:
            raise _ProtocolError(400, f"bad Content-Length: {raw_length!r}")
        if length < 0 or length > _MAX_BODY_BYTES:
            raise _ProtocolError(400, f"unreasonable Content-Length: {length}")
        total = head_end + 4 + length
        if len(buffer) < total:
            return requests, buffer
        body = buffer[head_end + 4 : total]
        connection = headers.get("connection", "").lower()
        if version == "HTTP/1.1":
            keep_alive = connection != "close"
        else:
            keep_alive = connection == "keep-alive"
        requests.append(
            _Request(
                method, target, body, keep_alive, headers.get("accept", "")
            )
        )
        buffer = buffer[total:]


def _json_bytes(status: int, payload: dict, keep_alive: bool) -> bytes:
    body = json.dumps(payload).encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        "\r\n"
    ).encode("latin-1")
    return head + body


def _text_bytes(
    status: int, text: str, content_type: str, keep_alive: bool
) -> bytes:
    body = text.encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        "\r\n"
    ).encode("latin-1")
    return head + body


class _Coalescer:
    """Merges queued decide work from every connection into one oracle
    batch per event-loop tick.

    ``submit`` enqueues pre-validated triples and schedules one drain via
    ``call_soon``: every request that lands while the current batch is
    being decided joins the *next* batch, so under concurrency the batch
    size adapts to the arrival rate with no timers and no added latency —
    an idle server still decides a lone request on the very next tick.
    """

    __slots__ = ("_service", "_loop", "_pending", "_scheduled")

    def __init__(self, service: BlockingService, loop) -> None:
        self._service = service
        self._loop = loop
        self._pending: list = []
        self._scheduled = False

    def submit(self, validated: list, is_batch: bool) -> "asyncio.Future":
        future = self._loop.create_future()
        self._pending.append((future, validated, is_batch))
        if not self._scheduled:
            self._scheduled = True
            self._loop.call_soon(self._drain)
        return future

    def _drain(self) -> None:
        pending, self._pending = self._pending, []
        self._scheduled = False
        merged: list = []
        for _, validated, _ in pending:
            merged.extend(validated)
        batches = sum(1 for _, _, is_batch in pending if is_batch)
        try:
            result = self._service.decide_validated(merged, batches=batches)
        except Exception as error:  # pragma: no cover - defensive
            for future, _, _ in pending:
                if not future.cancelled():
                    future.set_exception(error)
            return
        decisions = result["decisions"]
        revision = result["revision"]
        offset = 0
        for future, validated, _ in pending:
            share = decisions[offset : offset + len(validated)]
            offset += len(validated)
            if not future.cancelled():
                future.set_result((share, revision))


class _PendingDecide:
    """A decide outcome still in flight: the coalescer future plus the
    response shape (bare decision vs batch envelope)."""

    __slots__ = ("future", "single")

    def __init__(self, future, single: bool) -> None:
        self.future = future
        self.single = single


class _Connection:
    __slots__ = ("writer", "busy")

    def __init__(self, writer) -> None:
        self.writer = writer
        self.busy = False


class AsyncBlockingServer:
    """The blocking-decision API on one asyncio event loop.

    Pass ``sock`` to serve an inherited, already-bound listening socket
    (the supervisor's no-SO_REUSEPORT fallback), or ``host``/``port``
    (+ ``reuse_port=True`` to join a REUSEPORT group).  ``supervised``
    marks this instance as one worker of a multi-process supervisor:
    ``/v1/reload`` is declined with instructions to reload through the
    supervisor, and ``metrics_provider``/``worker_tag`` let the
    supervisor substitute the merged cross-worker metrics view and stamp
    each decide response with the answering worker's pid.
    """

    def __init__(
        self,
        service: BlockingService | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        sock=None,
        reuse_port: bool = False,
        artifact_dir: str | Path | None = None,
        supervised: bool = False,
        metrics_provider=None,
        health_provider=None,
        worker_tag: int | None = None,
    ) -> None:
        self.service = service if service is not None else BlockingService()
        self._host = host
        self._port = port
        self._sock = sock
        self._reuse_port = reuse_port
        self._artifact_dir = (
            Path(artifact_dir).resolve() if artifact_dir is not None else None
        )
        self._supervised = supervised
        self._metrics_provider = metrics_provider
        self._health_provider = health_provider
        self._worker_tag = worker_tag
        self._server: asyncio.AbstractServer | None = None
        self._coalescer: _Coalescer | None = None
        self._connections: set[_Connection] = set()
        self._draining = False

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> "AsyncBlockingServer":
        loop = asyncio.get_running_loop()
        self._coalescer = _Coalescer(self.service, loop)
        if self._sock is not None:
            self._server = await asyncio.start_server(
                self._handle, sock=self._sock
            )
        else:
            self._server = await asyncio.start_server(
                self._handle,
                self._host,
                self._port,
                reuse_port=self._reuse_port or None,
                backlog=512,
            )
        return self

    @property
    def sockets(self):
        return self._server.sockets if self._server is not None else ()

    @property
    def host(self) -> str:
        return self.sockets[0].getsockname()[0]

    @property
    def port(self) -> int:
        return self.sockets[0].getsockname()[1]

    @property
    def draining(self) -> bool:
        return self._draining

    async def drain(self, timeout: float = 10.0, grace: float = 0.1) -> None:
        """Graceful shutdown: stop accepting, finish in-flight work.

        Closes the listening socket first (new connections go elsewhere —
        to sibling REUSEPORT workers, or to a connection refusal), waits
        one ``grace`` beat so requests already on the wire get read and
        mark their connections busy, lets every busy connection finish
        parsing, deciding and *flushing* its current burst, closes idle
        keep-alive connections, and force-closes stragglers after
        ``timeout``.  Idempotent.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await asyncio.sleep(grace)
        for connection in list(self._connections):
            if not connection.busy:
                connection.writer.close()
        deadline = asyncio.get_running_loop().time() + timeout
        while self._connections:
            if asyncio.get_running_loop().time() >= deadline:
                for connection in list(self._connections):
                    connection.writer.close()
                break
            await asyncio.sleep(0.01)

    # -- connection loop ---------------------------------------------------
    async def _handle(self, reader, writer) -> None:
        connection = _Connection(writer)
        self._connections.add(connection)
        buffer = b""
        try:
            while True:
                if self._draining and not buffer:
                    break
                data = await reader.read(_READ_SIZE)
                if not data:
                    break
                buffer += data
                try:
                    requests, buffer = _parse_requests(buffer)
                except _ProtocolError as error:
                    connection.busy = True
                    writer.write(
                        _json_bytes(
                            error.status, {"error": str(error)}, False
                        )
                    )
                    await writer.drain()
                    break
                if not requests:
                    continue
                connection.busy = True
                keep_alive = await self._respond(writer, requests)
                await writer.drain()
                connection.busy = False
                if not keep_alive or self._draining:
                    break
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass
        finally:
            self._connections.discard(connection)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(self, writer, requests: list[_Request]) -> bool:
        """Answer a burst of pipelined requests in order; returns whether
        the connection stays open."""
        # Submit every decide in the burst before awaiting any result, so
        # a pipelined burst coalesces into one oracle batch.
        outcomes: list = []
        for request in requests:
            outcomes.append(self._dispatch(request))
        keep_alive = True
        for request, outcome in zip(requests, outcomes):
            keep_alive = request.keep_alive and not self._draining
            if isinstance(outcome, _PendingDecide):
                share, revision = await outcome.future
                payload = self._decide_payload(
                    outcome.single, share, revision
                )
                writer.write(_json_bytes(200, payload, keep_alive))
            elif len(outcome) == 3:
                # (status, text, content_type) — the Prometheus exposition.
                status, text, content_type = outcome
                writer.write(
                    _text_bytes(status, text, content_type, keep_alive)
                )
            else:
                status, payload = outcome
                writer.write(_json_bytes(status, payload, keep_alive))
            if not request.keep_alive:
                keep_alive = False
                break
        return keep_alive

    def _dispatch(self, request: _Request):
        """Route one request: returns ``(status, payload)`` for immediate
        answers or a coalescer future for decide work."""
        method, target = request.method, request.target
        if method == "GET":
            path, _, query = target.partition("?")
            if path == "/healthz":
                provider = self._health_provider or self.service.healthz
                return 200, provider()
            if path == "/metrics":
                provider = self._metrics_provider or self.service.metrics
                payload = provider()
                if wants_prometheus(query, request.accept):
                    return (
                        200,
                        prometheus_from_dict(payload),
                        PROMETHEUS_CONTENT_TYPE,
                    )
                return 200, payload
            if path in ("/v1/decide", "/v1/reload"):
                return 405, {"error": f"{target} requires POST"}
            return 404, {"error": f"unknown path: {target}"}
        if method != "POST":
            return 405, {"error": f"method {method} not supported"}
        if target == "/v1/decide":
            try:
                payload = self._read_json(request.body)
                if "requests" in payload:
                    items = payload["requests"]
                    if not isinstance(items, list):
                        raise ValueError("'requests' must be a list")
                    validated = self.service.validate_requests(items)
                    is_batch = True
                else:
                    validated = self.service.validate_requests([payload])
                    is_batch = False
            except ValueError as error:
                return 400, {"error": str(error)}
            future = self._coalescer.submit(validated, is_batch)
            return _PendingDecide(future, single=not is_batch)
        if target == "/v1/reload":
            if self._supervised:
                return 400, {
                    "error": (
                        "this worker is supervised: reloads are "
                        "coordinated across all workers by the parent — "
                        "reload through the supervisor (SIGHUP or its "
                        "reload API), not a single worker"
                    )
                }
            try:
                payload = self._read_json(request.body)
                return 200, apply_reload_payload(
                    self.service, payload, self._artifact_dir
                )
            except ValueError as error:
                return 400, {"error": str(error)}
        if target in ("/healthz", "/metrics"):
            return 405, {"error": f"{target} requires GET"}
        return 404, {"error": f"unknown path: {target}"}

    @staticmethod
    def _read_json(body: bytes) -> dict:
        if not body:
            return {}
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as error:
            raise ValueError(f"bad request body: {error}") from None
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def _decide_payload(self, single: bool, share: list, revision: int) -> dict:
        tag = self._worker_tag
        if tag is not None:
            for decision in share:
                decision["worker"] = tag
        if single:
            return share[0]
        return {"decisions": share, "count": len(share), "revision": revision}


class AsyncServerThread:
    """Runs an :class:`AsyncBlockingServer` on a dedicated event-loop
    thread so synchronous callers (tests, benchmarks, the threaded
    :class:`~repro.serve.client.BlockingClient`) can drive it.

    The worker processes run the loop on their main thread instead; this
    wrapper exists for embedding.  Use as a context manager, or
    :meth:`start`/:meth:`stop`.
    """

    def __init__(self, **kwargs) -> None:
        self._kwargs = kwargs
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._server: AsyncBlockingServer | None = None
        self._ready = threading.Event()
        self._failure: BaseException | None = None

    @property
    def server(self) -> AsyncBlockingServer:
        assert self._server is not None, "server not started"
        return self._server

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "AsyncServerThread":
        self._thread = threading.Thread(
            target=self._run, name="trackersift-async-serve", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=10.0)
        if self._failure is not None:
            raise self._failure
        if self._server is None:
            raise RuntimeError("async server failed to start")
        return self

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        try:
            self._server = await AsyncBlockingServer(**self._kwargs).start()
        except BaseException as error:  # startup failures surface in start()
            self._failure = error
            self._ready.set()
            return
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._ready.set()
        await self._stop_event.wait()
        await self._server.drain(timeout=5.0)

    def stop(self) -> None:
        if self._loop is not None and self._thread is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
            self._thread.join(timeout=10.0)
        self._loop = None
        self._thread = None

    def __enter__(self) -> "AsyncServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
