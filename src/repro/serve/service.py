"""The online blocking-decision service: hot-reloadable oracle snapshots.

The paper frames TrackerSift's output as deployable blocking knowledge —
filter rules a content blocker consults per request.  Everything else in
this repo runs as an offline batch study; :class:`BlockingService` is the
long-lived deployment of the same oracle: it answers per-request blocking
decisions from a :class:`Snapshot` (a cache-enabled
:class:`~repro.filterlists.oracle.FilterListOracle` plus the parsed lists
it was built from) and swaps in new list versions without dropping a
request.

**Snapshot semantics.**  A snapshot is immutable once published.
:meth:`BlockingService.reload` parses the new lists, builds the new
oracle and its fresh decision cache entirely off to the side, computes
rule churn against the old snapshot via
:func:`repro.filterlists.maintenance.diff_lists`, and then publishes the
result with a *single reference assignment* — the one mutation in the
whole scheme.  Every decision starts by reading that reference exactly
once, so an in-flight request (or an in-flight *batch*) finishes on the
snapshot it started with; concurrent requests during a reload are each
answered consistently by either the old or the new rules, never a blend.
Reloads themselves serialize on a lock; decisions never take it.

Decisions are bit-identical to the offline oracle's by construction: the
service calls the same :meth:`FilterListOracle.label_request` /
:meth:`~FilterListOracle.should_block_url` code path the batch studies
use (the identity gate in ``benchmarks/bench_serve.py`` checks this over
live HTTP).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from ..filterlists.lists import default_lists
from ..filterlists.maintenance import ListDiff, diff_lists
from ..filterlists.oracle import FilterListOracle
from ..filterlists.parser import ParsedList, parse_filter_list
from ..filterlists.rules import ResourceType
from ..obs.ledger import Ledger, StreamHasher
from ..obs.metrics import LatencyWindow, MetricsRegistry, prometheus_from_dict
from ..obs.trace import current_tracer

__all__ = ["Snapshot", "BlockingService", "apply_reload_payload"]


def _coerce_resource_type(value: object) -> ResourceType:
    """Accept enum members, canonical values, and option aliases."""
    if isinstance(value, ResourceType):
        return value
    resource = ResourceType.from_option(str(value).strip().lower())
    if resource is None:
        raise ValueError(f"unknown resource_type: {value!r}")
    return resource


@dataclass(frozen=True)
class Snapshot:
    """One immutable, atomically-swappable serving state.

    Holds the cache-enabled oracle *and* the parsed lists it was built
    from: the lists are what the next reload diffs against, and the
    oracle's decision cache belongs to the snapshot (a reload starts with
    a cold cache for the new rules — stale decisions can never leak
    across rule sets because they live and die with their snapshot).
    """

    oracle: FilterListOracle
    lists: tuple[ParsedList, ...]
    revision: int
    #: who produced this revision (e.g. ``"loop-round-3"``); free-form,
    #: surfaced in reload reports, /healthz, and /metrics so an operator
    #: can tell a control-loop hotfix from a manual rollback.
    provenance: str = ""

    @classmethod
    def build(
        cls,
        lists: tuple[ParsedList, ...],
        revision: int,
        provenance: str = "",
    ) -> "Snapshot":
        return cls(
            oracle=FilterListOracle(*lists, cache=True),
            lists=lists,
            revision=revision,
            provenance=provenance,
        )

    @classmethod
    def from_artifact(cls, path, revision: int) -> "Snapshot":
        """Build a serving snapshot from a compiled ``.tsoracle`` artifact.

        The artifact's matcher is adopted as-is — no parsing, no index
        construction — so cold start and hot reload become a single
        validated load.  The artifact must carry list provenance
        (``trackersift compile`` always stores it): that is what the next
        reload diffs churn against.  Raises
        :class:`~repro.filterlists.compile.ArtifactError` otherwise.
        """
        from ..filterlists.compile import ArtifactError, load_artifact

        artifact = load_artifact(path)
        if not artifact.lists:
            raise ArtifactError(
                f"artifact {path} carries no list provenance; serving "
                "snapshots need it for reload churn reports — recompile "
                "with compile_lists / `trackersift compile`"
            )
        return cls(
            oracle=FilterListOracle.from_matcher(artifact.matcher, cache=True),
            lists=artifact.lists,
            revision=revision,
        )

    @classmethod
    def from_image(cls, path, revision: int) -> "Snapshot":
        """Build a serving snapshot over a memory-mapped oracle image.

        The multi-worker path: the artifact's image section is ``mmap``-ed
        read-only (:func:`repro.filterlists.compile.open_image`), so every
        worker process holding such a snapshot shares one page-cache copy
        of the rule data.  The snapshot carries no parsed lists — churn
        reporting is the supervisor's job in this mode (it holds the list
        provenance once, in the parent), not each worker's.
        """
        from ..filterlists.compile import open_image

        return cls(
            oracle=FilterListOracle.from_matcher(open_image(path), cache=True),
            lists=(),
            revision=revision,
        )

    @property
    def rule_count(self) -> int:
        return self.oracle.rule_count

    @property
    def list_names(self) -> tuple[str, ...]:
        return tuple(parsed.name for parsed in self.lists)


# The latency window grew up here and was promoted into the shared
# metrics layer; the historical name stays importable for callers that
# predate the move.
_LatencyWindow = LatencyWindow


class BlockingService:
    """Long-lived blocking-decision engine with hot-reloadable snapshots.

    >>> service = BlockingService()                # embedded default lists
    >>> service.decide("https://doubleclick.net/pixel")["label"]
    'tracking'

    Thread-safe by design: decisions read the current :class:`Snapshot`
    reference once and run entirely on it (its oracle's decision cache is
    a thread-safe :class:`~repro.filterlists.cache.DecisionCache`), while
    :meth:`reload` builds a replacement off to the side and publishes it
    atomically.  This is what :class:`repro.serve.server.BlockingServer`
    exposes over HTTP.
    """

    def __init__(
        self, *lists: ParsedList, artifact=None, image=None
    ) -> None:
        if artifact is not None or image is not None:
            if lists or (artifact is not None and image is not None):
                raise ValueError(
                    "pass parsed lists, a compiled artifact, or an image "
                    "artifact — exactly one"
                )
            if image is not None:
                # Worker mode: share the artifact's mapped oracle image
                # with sibling processes instead of unpickling a copy.
                self._snapshot = Snapshot.from_image(image, revision=1)
            else:
                self._snapshot = Snapshot.from_artifact(artifact, revision=1)
        else:
            if not lists:
                lists = default_lists()
            self._snapshot = Snapshot.build(tuple(lists), revision=1)
        self._reload_lock = threading.Lock()
        self.registry = MetricsRegistry()
        self._decisions_served = self.registry.counter(
            "decisions_served", "blocking decisions answered"
        )
        self._decisions_batches = self.registry.counter(
            "decisions_batches", "client-visible batch calls drained"
        )
        self._decisions_blocked = self.registry.counter(
            "decisions_blocked", "decisions that said block"
        )
        self._reloads = self.registry.counter(
            "reloads", "snapshot reloads published"
        )
        self._latency = self.registry.latency("decision_seconds")
        self.registry.gauge(
            "snapshot_revision",
            "current serving snapshot revision",
            fn=lambda: self._snapshot.revision,
        )
        self.registry.gauge(
            "snapshot_rule_count",
            "rules in the serving snapshot",
            fn=lambda: self._snapshot.rule_count,
        )
        self._ledger: Ledger | None = None
        self._ledger_lock = threading.Lock()
        self._decision_streams: dict[int, StreamHasher] = {}
        self._revision_identity: dict[int, int] = {}
        self._started = time.monotonic()

    # -- read side ---------------------------------------------------------
    @property
    def snapshot(self) -> Snapshot:
        """The current serving snapshot (a single atomic reference read)."""
        return self._snapshot

    @property
    def uptime_seconds(self) -> float:
        return time.monotonic() - self._started

    def decide(
        self,
        url: str,
        resource_type: object = ResourceType.OTHER,
        page_url: str = "",
    ) -> dict:
        """One blocking decision, as a JSON-ready dict.

        Raises :class:`ValueError` for a missing URL or unknown resource
        type (the server maps that to HTTP 400).
        """
        snapshot = self._snapshot
        return self._decide_on(snapshot, url, resource_type, page_url)

    def decide_batch(self, requests: list) -> dict:
        """Decide a batch of requests — all against *one* snapshot.

        Each item is a URL string or a ``{"url", "resource_type",
        "page_url"}`` dict.  The snapshot reference is read once for the
        whole batch, so a concurrent reload never splits a batch across
        rule sets.

        Batches are all-or-nothing: every item is validated *before* any
        decision runs, so one malformed item raises :class:`ValueError`
        naming its index (the server maps it to HTTP 400) while latency
        windows, counters, and the snapshot's decision cache are left
        exactly as they were — a bad item can neither discard nor
        half-apply a batch.  Valid batches drain through the oracle's
        batch path (:meth:`FilterListOracle.label_request_many`), which
        amortizes cache lock rounds across the batch.
        """
        return self.decide_validated(self.validate_requests(requests))

    @staticmethod
    def validate_requests(
        requests: list,
    ) -> list[tuple[str, ResourceType, str]]:
        """Validate batch items into ``(url, resource_type, page_url)``
        triples, raising :class:`ValueError` naming the offending index.

        Split out of :meth:`decide_batch` so request framing layers (the
        asyncio coalescer validates each client's items *before* merging
        them into one cross-connection batch) can reject a malformed
        request individually without discarding its neighbours.
        """
        validated: list[tuple[str, ResourceType, str]] = []
        for index, item in enumerate(requests):
            if isinstance(item, str):
                item = {"url": item}
            if not isinstance(item, dict):
                raise ValueError(
                    f"batch item {index} must be a URL or object: {item!r}"
                )
            url = item.get("url", "")
            if not url or not isinstance(url, str):
                raise ValueError(
                    f"batch item {index}: decide requires a non-empty url"
                )
            try:
                resource = _coerce_resource_type(
                    item.get("resource_type", ResourceType.OTHER)
                )
            except ValueError as error:
                raise ValueError(f"batch item {index}: {error}") from None
            validated.append((url, resource, item.get("page_url", "")))
        return validated

    def decide_validated(
        self,
        validated: list[tuple[str, ResourceType, str]],
        *,
        batches: int = 1,
    ) -> dict:
        """Decide pre-validated triples against one snapshot read.

        ``batches`` is how many client-visible batch calls this drain
        represents (the coalescer merges several into one oracle call);
        latency is recorded as one per-decision sample per URL —
        ``len(validated)`` samples of the amortized per-decision cost —
        so p50/p99 stay comparable between the single and batched paths.
        """
        snapshot = self._snapshot
        tracer = current_tracer()
        if tracer is not None:
            stats = snapshot.oracle.cache_stats
            hits_before = stats.hits if stats else 0
            misses_before = stats.misses if stats else 0
        started = time.perf_counter()
        labeled = snapshot.oracle.label_request_many(validated)
        elapsed = time.perf_counter() - started
        count = len(labeled)
        self._latency.observe_many(elapsed / count if count else 0.0, count)
        decisions = []
        blocked_count = 0
        for request, result in zip(validated, labeled):
            blocked = result.label.is_tracking
            if blocked:
                blocked_count += 1
            decisions.append(
                {
                    "url": request[0],
                    "label": result.label.value,
                    "blocked": blocked,
                    "matched_rule": result.matched_rule,
                    "matched_list": result.matched_list,
                    "revision": snapshot.revision,
                }
            )
        self._decisions_served.inc(count)
        self._decisions_blocked.inc(blocked_count)
        self._decisions_batches.inc(batches)
        if self._ledger is not None:
            self._ledger_observe(
                snapshot.revision,
                (
                    f"{d['url']}|{d['label']}|{int(d['blocked'])}"
                    for d in decisions
                ),
            )
        if tracer is not None:
            stats = snapshot.oracle.cache_stats
            tracer.add(
                "serve.batch",
                elapsed,
                requests=count,
                coalesced_batches=batches,
                revision=snapshot.revision,
                cache_hits=(stats.hits - hits_before) if stats else 0,
                cache_misses=(stats.misses - misses_before) if stats else 0,
            )
        return {
            "decisions": decisions,
            "count": len(decisions),
            "revision": snapshot.revision,
        }

    def should_block_url(self, url: str) -> bool:
        """The offline oracle's convenience query, served online."""
        return self._snapshot.oracle.should_block_url(url)

    def _decide_on(
        self,
        snapshot: Snapshot,
        url: str,
        resource_type: object,
        page_url: str,
    ) -> dict:
        if not url or not isinstance(url, str):
            raise ValueError("decide requires a non-empty url")
        resource = _coerce_resource_type(resource_type)
        started = time.perf_counter()
        labeled = snapshot.oracle.label_request(url, resource, page_url)
        self._latency.observe(time.perf_counter() - started)
        blocked = labeled.label.is_tracking
        self._decisions_served.inc()
        if blocked:
            self._decisions_blocked.inc()
        if self._ledger is not None:
            self._ledger_observe(
                snapshot.revision,
                (f"{url}|{labeled.label.value}|{int(blocked)}",),
            )
        return {
            "url": url,
            "label": labeled.label.value,
            "blocked": blocked,
            "matched_rule": labeled.matched_rule,
            "matched_list": labeled.matched_list,
            "revision": snapshot.revision,
        }

    # -- reload side -------------------------------------------------------
    def reload(self, *lists: ParsedList, provenance: str = "") -> dict:
        """Swap in a new list snapshot; returns the churn report.

        With no arguments the embedded default lists are re-parsed (a
        rollback to factory state).  The new oracle and its cold decision
        cache are built entirely before the swap; the swap itself is one
        reference assignment, so in-flight decisions finish on the old
        snapshot and the service is never without an answer.

        ``provenance`` stamps the published snapshot with who produced it
        (the control loop passes ``loop-round-N``); it rides along in the
        reload report and the observability endpoints.
        """
        if not lists:
            lists = default_lists()
        frozen = tuple(lists)
        return self._publish(
            lambda revision: Snapshot.build(frozen, revision, provenance)
        )

    def reload_artifact(self, path) -> dict:
        """Swap in a snapshot loaded from a compiled ``.tsoracle``.

        The hot-reload equivalent of :meth:`Snapshot.from_artifact`: the
        new oracle is adopted from the artifact (one validated load, no
        parsing or index construction) and published with the same single
        reference assignment — churn is still diffed against the outgoing
        snapshot's lists, from the provenance the artifact carries.
        Raises :class:`~repro.filterlists.compile.ArtifactError` for a
        missing/corrupt/mismatched artifact; the serving snapshot is
        untouched in that case.
        """
        report = self._publish(
            lambda revision: Snapshot.from_artifact(path, revision)
        )
        report["artifact"] = str(path)
        return report

    def swap_image(self, path, revision: int) -> dict:
        """Adopt a new mapped-image snapshot at a *caller-chosen* revision.

        The worker half of a coordinated cross-process reload: the
        supervisor picks one revision number, publishes the artifact path
        to every worker, and each worker swaps with the same single
        reference assignment :meth:`reload` uses — so all workers agree on
        what revision N means, and each in-flight batch finishes on the
        snapshot it started with.  Churn is not diffed here (image
        snapshots carry no parsed lists; the supervisor reports churn once
        from the provenance it holds).  The previous snapshot's mapped
        image is closed once the swap is published — its already-answered
        decisions carried materialized rule objects, which stay valid.
        Raises :class:`~repro.filterlists.compile.ArtifactError` with the
        serving snapshot untouched when the artifact fails validation.
        """
        new = Snapshot.from_image(path, revision)
        with self._reload_lock:
            old = self._snapshot
            self._snapshot = new  # the atomic publish
        self._reloads.inc()
        self._note_revision(new)
        old_matcher = getattr(old.oracle.matcher, "wrapped", old.oracle.matcher)
        close = getattr(old_matcher, "close", None)
        if close is not None:
            close()
        return {
            "revision": new.revision,
            "previous_revision": old.revision,
            "rule_count": new.rule_count,
            "artifact": str(path),
        }

    def _publish(self, build) -> dict:
        """Build the replacement snapshot off to the side, diff churn,
        publish atomically, and assemble the reload report.  ``build``
        receives the next revision number; if it raises, the current
        snapshot keeps serving."""
        started = time.perf_counter()
        with self._reload_lock:
            old = self._snapshot
            new = build(old.revision + 1)
            per_list, total = self._churn(old.lists, new.lists)
            self._snapshot = new  # the atomic publish
        self._reloads.inc()
        self._note_revision(new)
        return {
            "revision": new.revision,
            "previous_revision": old.revision,
            "rule_count": new.rule_count,
            "provenance": new.provenance,
            "lists": per_list,
            "churn": {
                "added": len(total.added),
                "removed": len(total.removed),
                "unchanged": total.unchanged,
                "summary": total.summary(),
            },
            "reload_seconds": time.perf_counter() - started,
        }

    def reload_text(
        self,
        *named_texts: tuple[str, str],
        provenance: str = "",
        strict: bool = False,
    ) -> dict:
        """Parse ``(name, text)`` pairs and reload with the result.

        With ``strict=True`` a candidate whose text produces *any* parse
        errors is rejected with :class:`ValueError` before anything is
        built — the serving snapshot and revision are untouched.  The
        reload endpoint uses this so a non-parsing candidate 400s instead
        of silently serving the salvageable subset of its rules.
        """
        parsed = tuple(
            parse_filter_list(text, name=name) for name, text in named_texts
        )
        if strict:
            for candidate in parsed:
                if candidate.error_lines:
                    raise ValueError(
                        f"list {candidate.name!r} failed to parse: "
                        f"{len(candidate.error_lines)} bad line(s), first: "
                        f"{candidate.error_lines[0]!r}"
                    )
        return self.reload(*parsed, provenance=provenance)

    @staticmethod
    def _churn(
        old_lists: tuple[ParsedList, ...], new_lists: tuple[ParsedList, ...]
    ) -> tuple[list[dict], ListDiff]:
        """Per-list and total rule churn, via ``diff_lists``.

        Lists are paired by name; an old list with no namesake counts as
        fully removed, a new one as fully added.
        """
        remaining = {parsed.name: parsed for parsed in old_lists}
        per_list: list[dict] = []
        total = ListDiff()
        for new in new_lists:
            old = remaining.pop(new.name, None)
            diff = diff_lists(old if old is not None else ParsedList(name=new.name), new)
            per_list.append(
                {
                    "name": new.name,
                    "added": len(diff.added),
                    "removed": len(diff.removed),
                    "unchanged": diff.unchanged,
                    "summary": diff.summary(),
                }
            )
            total.added.extend(diff.added)
            total.removed.extend(diff.removed)
            total.unchanged += diff.unchanged
        for name, old in remaining.items():
            diff = diff_lists(old, ParsedList(name=name))
            per_list.append(
                {
                    "name": name,
                    "added": 0,
                    "removed": len(diff.removed),
                    "unchanged": 0,
                    "summary": diff.summary(),
                }
            )
            total.removed.extend(diff.removed)
        return per_list, total

    # -- observability -----------------------------------------------------
    def healthz(self) -> dict:
        snapshot = self._snapshot
        return {
            "status": "ok",
            "revision": snapshot.revision,
            "rule_count": snapshot.rule_count,
            "provenance": snapshot.provenance,
            "uptime_seconds": self.uptime_seconds,
        }

    def metrics(self) -> dict:
        """Cache counters, latency percentiles, snapshot and uptime."""
        snapshot = self._snapshot
        stats = snapshot.oracle.cache_stats
        decisions = self._decisions_served.value
        batches = self._decisions_batches.value
        blocked = self._decisions_blocked.value
        reloads = self._reloads.value
        return {
            "uptime_seconds": self.uptime_seconds,
            "snapshot": {
                "revision": snapshot.revision,
                "rule_count": snapshot.rule_count,
                "provenance": snapshot.provenance,
                "lists": list(snapshot.list_names),
                # Coverage-gap ledger: rules the oracle skipped at index
                # time, per unsupported reason — silent drops would make
                # the service quietly under-block.
                "unsupported_rules": snapshot.oracle.unsupported_rule_count,
                "unsupported": snapshot.oracle.unsupported_counts,
            },
            "decisions": {
                "served": decisions,
                "batches": batches,
                "blocked": blocked,
                "reloads": reloads,
            },
            "cache": {
                "hits": stats.hits if stats else 0,
                "misses": stats.misses if stats else 0,
                "hit_rate": stats.hit_rate if stats else 0.0,
                "entries": len(snapshot.oracle.matcher),
            },
            "latency": self._latency.snapshot(),
        }

    def metrics_text(self) -> str:
        """:meth:`metrics` as Prometheus text exposition.

        Flattened from the *same* dict the JSON endpoint serves
        (:func:`repro.obs.metrics.prometheus_from_dict`), so the two
        formats cannot disagree about a value.
        """
        return prometheus_from_dict(self.metrics())

    # -- determinism ledger --------------------------------------------------
    def attach_ledger(self, ledger: Ledger) -> Ledger:
        """Record this service's determinism chain into *ledger*.

        While attached, every decision feeds an incremental
        :class:`~repro.obs.ledger.StreamHasher` keyed by the snapshot
        revision that answered it, and every published snapshot registers
        its identity.  :meth:`finalize_ledger` flushes the chain — one
        snapshot-identity stage plus one decision-stream digest per
        revision, in revision order — and detaches.  Recording is opt-in:
        an unattached service pays one ``None`` check per batch.
        """
        with self._ledger_lock:
            self._ledger = ledger
            self._decision_streams = {}
            snapshot = self._snapshot
            self._revision_identity = {snapshot.revision: snapshot.rule_count}
        return ledger

    def detach_ledger(self) -> None:
        """Stop recording without emitting anything (e.g. before a
        verification-only replay that must not pollute the chain)."""
        with self._ledger_lock:
            self._ledger = None
            self._decision_streams = {}
            self._revision_identity = {}

    def finalize_ledger(self) -> Ledger | None:
        """Flush per-revision stages into the attached ledger; detach.

        Returns the ledger, or ``None`` when none was attached.
        """
        with self._ledger_lock:
            ledger = self._ledger
            if ledger is None:
                return None
            streams = self._decision_streams
            identity = self._revision_identity
            self._ledger = None
            self._decision_streams = {}
            self._revision_identity = {}
        for revision in sorted(set(identity) | set(streams)):
            ledger.record(
                "serve.snapshot",
                {
                    "revision": revision,
                    "rule_count": identity.get(revision),
                },
                revision=revision,
            )
            hasher = streams.get(revision)
            ledger.record_digest(
                "serve.decisions",
                hasher.hexdigest() if hasher else StreamHasher().hexdigest(),
                revision=revision,
                decisions=hasher.count if hasher else 0,
            )
        return ledger

    def _note_revision(self, snapshot: Snapshot) -> None:
        if self._ledger is None:
            return
        with self._ledger_lock:
            if self._ledger is not None:
                self._revision_identity[snapshot.revision] = snapshot.rule_count

    def _ledger_observe(self, revision: int, items) -> None:
        with self._ledger_lock:
            if self._ledger is None:
                return
            hasher = self._decision_streams.get(revision)
            if hasher is None:
                hasher = self._decision_streams[revision] = StreamHasher()
            hasher.update_many(items)


def apply_reload_payload(
    service: BlockingService, payload: dict, artifact_dir
) -> dict:
    """Apply a ``POST /v1/reload`` JSON payload to a service.

    The one definition of the reload endpoint's semantics, shared by the
    threaded (:mod:`repro.serve.server`) and asyncio
    (:mod:`repro.serve.protocol`) front ends so the two cannot drift:

    * ``{}``                      — re-parse the embedded default lists;
    * ``{"lists": [{"name","text"}, ...]}`` — parse and swap in new text;
    * ``{"artifact": "<name>"}``  — adopt a compiled ``.tsoracle``.
      Artifacts embed pickle (compile.py's trust model: only load what
      you compiled), so clients never choose arbitrary server paths: the
      server must have been booted with ``--artifact``, and the name is
      resolved inside that artifact's directory (``artifact_dir``).

    Raises :class:`ValueError` (which both servers map to HTTP 400) for a
    malformed payload; :class:`~repro.filterlists.compile.ArtifactError`
    is a ValueError, so a bad artifact maps to 400 with the snapshot
    untouched as well.
    """
    from pathlib import Path

    artifact = payload.get("artifact")
    if artifact is not None:
        if payload.get("lists") is not None:
            raise ValueError("send 'lists' or 'artifact', not both")
        if not isinstance(artifact, str) or not artifact:
            raise ValueError("'artifact' must be a filesystem path")
        if artifact_dir is None:
            raise ValueError(
                "artifact reload is disabled: start the server with "
                "--artifact to opt in (reloads are then confined to "
                "that artifact's directory)"
            )
        if Path(artifact).name != artifact:
            raise ValueError(
                "'artifact' must be a bare file name; it is resolved "
                "inside the server's --artifact directory"
            )
        return service.reload_artifact(Path(artifact_dir) / artifact)
    provenance = payload.get("provenance", "")
    if not isinstance(provenance, str):
        raise ValueError("'provenance' must be a string")
    specs = payload.get("lists")
    if specs is None:
        return service.reload(provenance=provenance)
    if not isinstance(specs, list) or not specs:
        raise ValueError("'lists' must be a non-empty list of objects")
    named_texts = []
    for index, spec in enumerate(specs):
        if not isinstance(spec, dict) or "text" not in spec:
            raise ValueError(f"list #{index} needs a 'text' field")
        named_texts.append(
            (str(spec.get("name", f"list{index}")), spec["text"])
        )
    # Strict: a candidate that does not fully parse is a client error
    # (HTTP 400) with the serving snapshot and revision untouched —
    # never a partial reload of whatever lines survived.
    return service.reload_text(
        *named_texts, provenance=provenance, strict=True
    )
