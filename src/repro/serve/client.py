"""Client for the blocking-decision API, plus a threaded load generator.

:class:`BlockingClient` speaks the four-endpoint JSON protocol of
:mod:`repro.serve.server` over a persistent keep-alive connection.  One
client instance is bound to one connection and is **not** shared across
threads — :class:`LoadGenerator` gives each worker thread its own, which
is also how a real multi-threaded consumer should hold them.

:class:`LoadGenerator` is the measurement half: it drives N worker
threads of single or batched decide calls against a server and collects
every decision (with the snapshot revision each was answered under), so
``benchmarks/bench_serve.py`` can check throughput *and* prove that a
hot reload mid-load never dropped or mislabeled a request.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from dataclasses import dataclass, field

from .server import DEFAULT_PORT

__all__ = ["ServeError", "BlockingClient", "LoadGenerator", "LoadReport"]


class ServeError(RuntimeError):
    """An HTTP-level error response from the service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class BlockingClient:
    """Thin JSON client over one keep-alive connection (single-threaded)."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = DEFAULT_PORT, timeout: float = 10.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: http.client.HTTPConnection | None = None

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "BlockingClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _exchange(
        self, method: str, path: str, body: bytes | None, headers: dict
    ) -> tuple[int, bytes]:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        try:
            self._conn.request(method, path, body=body, headers=headers)
            response = self._conn.getresponse()
            return response.status, response.read()
        except (http.client.HTTPException, ConnectionError, OSError):
            self.close()
            raise

    def _request(self, method: str, path: str, payload: dict | None = None) -> dict:
        body = json.dumps(payload).encode("utf-8") if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        # A reused keep-alive socket may have been closed under us between
        # calls; one transparent replay on a fresh connection covers that.
        # Never replay a reload: it is the one non-idempotent endpoint, and
        # a response lost *after* the server acted would otherwise swap the
        # snapshot twice (the second churn report diffing the new lists
        # against themselves).  Fresh-connection failures are real errors.
        retriable = self._conn is not None and path != "/v1/reload"
        try:
            status, raw = self._exchange(method, path, body, headers)
        except (http.client.HTTPException, ConnectionError, OSError):
            if not retriable:
                raise
            status, raw = self._exchange(method, path, body, headers)
        parsed = json.loads(raw) if raw else {}
        if status >= 400:
            message = parsed.get("error", "") if isinstance(parsed, dict) else ""
            raise ServeError(status, message)
        return parsed

    # -- endpoints ---------------------------------------------------------
    def decide(
        self, url: str, resource_type: str = "other", page_url: str = ""
    ) -> dict:
        payload = {"url": url, "resource_type": resource_type}
        if page_url:
            payload["page_url"] = page_url
        return self._request("POST", "/v1/decide", payload)

    def decide_batch(self, requests: list) -> dict:
        """Batch decide; items are URL strings or request objects."""
        return self._request("POST", "/v1/decide", {"requests": list(requests)})

    def reload(self, lists: list | None = None) -> dict:
        """Hot-reload; ``lists`` is ``[(name, text), ...]`` or None for the
        embedded defaults."""
        if lists is None:
            return self._request("POST", "/v1/reload", {})
        specs = [{"name": name, "text": text} for name, text in lists]
        return self._request("POST", "/v1/reload", {"lists": specs})

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")


@dataclass
class LoadReport:
    """What a :class:`LoadGenerator` run observed."""

    decisions: list = field(default_factory=list)
    errors: list = field(default_factory=list)
    seconds: float = 0.0

    @property
    def requests(self) -> int:
        return len(self.decisions)

    @property
    def throughput_rps(self) -> float:
        if self.seconds <= 0:
            return 0.0
        return len(self.decisions) / self.seconds

    @property
    def revisions_seen(self) -> tuple:
        return tuple(sorted({d["revision"] for d in self.decisions}))


class LoadGenerator:
    """Threaded decide() load against one server, decisions collected.

    Workers stripe over ``urls`` (worker *i* takes every ``threads``-th
    URL) for ``rounds`` passes; with ``batch_size > 1`` each worker sends
    chunked ``/v1/decide`` batches instead of single calls.  Every
    decision's reported snapshot revision is kept, which is what lets the
    reload-under-load gate verify each answer against the offline oracle
    of the exact rule set that served it.
    """

    def __init__(
        self,
        host: str,
        port: int,
        urls: list,
        threads: int = 4,
        batch_size: int = 1,
        rounds: int = 1,
        timeout: float = 30.0,
    ) -> None:
        if threads < 1 or batch_size < 1 or rounds < 1:
            raise ValueError("threads, batch_size and rounds must be >= 1")
        self.host = host
        self.port = port
        self.urls = list(urls)
        self.threads = threads
        self.batch_size = batch_size
        self.rounds = rounds
        self.timeout = timeout

    #: Any of these on a call is a *recorded* failure, never a dead worker
    #: whose collected decisions silently vanish from the report.
    _CALL_ERRORS = (ServeError, http.client.HTTPException, OSError)

    def _worker(self, index: int, report: LoadReport, lock: threading.Lock) -> None:
        client = BlockingClient(self.host, self.port, timeout=self.timeout)
        mine = self.urls[index :: self.threads]
        decisions: list = []
        errors: list = []
        try:
            for _ in range(self.rounds):
                if self.batch_size > 1:
                    for start in range(0, len(mine), self.batch_size):
                        chunk = mine[start : start + self.batch_size]
                        try:
                            decisions.extend(client.decide_batch(chunk)["decisions"])
                        except self._CALL_ERRORS as error:
                            errors.append(f"batch@{start}: {error}")
                else:
                    for url in mine:
                        try:
                            decisions.append(client.decide(url))
                        except self._CALL_ERRORS as error:
                            errors.append(f"{url}: {error}")
        finally:
            # merge in the finally so even an unexpected worker death
            # surrenders what it measured instead of undercounting
            client.close()
            with lock:
                report.decisions.extend(decisions)
                report.errors.extend(errors)

    def run(self) -> LoadReport:
        report = LoadReport()
        lock = threading.Lock()
        workers = [
            threading.Thread(
                target=self._worker, args=(index, report, lock), daemon=True
            )
            for index in range(self.threads)
        ]
        started = time.perf_counter()
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        report.seconds = time.perf_counter() - started
        return report
