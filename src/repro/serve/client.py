"""Client for the blocking-decision API, plus a threaded load generator.

:class:`BlockingClient` speaks the four-endpoint JSON protocol of
:mod:`repro.serve.server` over a persistent keep-alive connection.  One
client instance is bound to one connection and is **not** shared across
threads — :class:`LoadGenerator` gives each worker thread its own, which
is also how a real multi-threaded consumer should hold them.

:class:`LoadGenerator` is the measurement half: it drives N worker
threads of single or batched decide calls against a server and collects
every decision (with the snapshot revision each was answered under), so
``benchmarks/bench_serve.py`` can check throughput *and* prove that a
hot reload mid-load never dropped or mislabeled a request.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import random
import threading
import time
from dataclasses import dataclass, field

from .server import DEFAULT_PORT

__all__ = [
    "ServeError",
    "BlockingClient",
    "LoadGenerator",
    "LoadReport",
    "OpenLoopLoadGenerator",
    "OpenLoopReport",
]


class ServeError(RuntimeError):
    """An HTTP-level error response from the service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class BlockingClient:
    """Thin JSON client over one keep-alive connection (single-threaded).

    ``timeout`` is the socket connect *and* read timeout, so a hung
    server surfaces as ``socket.timeout`` (an ``OSError``) instead of
    blocking the caller forever.  Idempotent calls (everything except
    ``/v1/reload``) are retried up to ``retries`` times on transport
    errors, with jittered exponential backoff between attempts; the
    jitter stream is seeded (``jitter_seed``) so retry schedules are
    reproducible in tests and benchmarks.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: float = 10.0,
        retries: int = 2,
        retry_base_seconds: float = 0.05,
        retry_cap_seconds: float = 1.0,
        jitter_seed: int = 0,
    ) -> None:
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.retry_base_seconds = retry_base_seconds
        self.retry_cap_seconds = retry_cap_seconds
        self._rng = random.Random(jitter_seed)
        self._conn: http.client.HTTPConnection | None = None

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "BlockingClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _exchange(
        self, method: str, path: str, body: bytes | None, headers: dict
    ) -> tuple[int, bytes]:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        try:
            self._conn.request(method, path, body=body, headers=headers)
            response = self._conn.getresponse()
            return response.status, response.read()
        except (http.client.HTTPException, ConnectionError, OSError):
            self.close()
            raise

    def _request(self, method: str, path: str, payload: dict | None = None) -> dict:
        body = json.dumps(payload).encode("utf-8") if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        # Never replay a reload: it is the one non-idempotent endpoint, and
        # a response lost *after* the server acted would otherwise swap the
        # snapshot twice (the second churn report diffing the new lists
        # against themselves).  Everything else is safe to retry: a reused
        # keep-alive socket closed under us gets one immediate, uncounted
        # replay on a fresh connection, and genuine transport failures
        # (reset, refused, read timeout) get up to ``retries`` further
        # attempts with jittered exponential backoff.
        idempotent = path != "/v1/reload"
        stale_replay = idempotent and self._conn is not None
        attempts_left = self.retries if idempotent else 0
        attempt = 0
        while True:
            try:
                status, raw = self._exchange(method, path, body, headers)
                break
            except (http.client.HTTPException, ConnectionError, OSError):
                if stale_replay:
                    stale_replay = False
                    continue
                if attempts_left <= 0:
                    raise
                attempts_left -= 1
                attempt += 1
                delay = min(
                    self.retry_cap_seconds,
                    self.retry_base_seconds * 2 ** (attempt - 1),
                )
                time.sleep(delay * (1.0 + self._rng.random()))
        parsed = json.loads(raw) if raw else {}
        if status >= 400:
            message = parsed.get("error", "") if isinstance(parsed, dict) else ""
            raise ServeError(status, message)
        return parsed

    # -- endpoints ---------------------------------------------------------
    def decide(
        self, url: str, resource_type: str = "other", page_url: str = ""
    ) -> dict:
        payload = {"url": url, "resource_type": resource_type}
        if page_url:
            payload["page_url"] = page_url
        return self._request("POST", "/v1/decide", payload)

    def decide_batch(self, requests: list) -> dict:
        """Batch decide; items are URL strings or request objects."""
        return self._request("POST", "/v1/decide", {"requests": list(requests)})

    def reload(self, lists: list | None = None) -> dict:
        """Hot-reload; ``lists`` is ``[(name, text), ...]`` or None for the
        embedded defaults."""
        if lists is None:
            return self._request("POST", "/v1/reload", {})
        specs = [{"name": name, "text": text} for name, text in lists]
        return self._request("POST", "/v1/reload", {"lists": specs})

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")


@dataclass
class LoadReport:
    """What a :class:`LoadGenerator` run observed."""

    decisions: list = field(default_factory=list)
    errors: list = field(default_factory=list)
    seconds: float = 0.0

    @property
    def requests(self) -> int:
        return len(self.decisions)

    @property
    def throughput_rps(self) -> float:
        if self.seconds <= 0:
            return 0.0
        return len(self.decisions) / self.seconds

    @property
    def revisions_seen(self) -> tuple:
        return tuple(sorted({d["revision"] for d in self.decisions}))


class LoadGenerator:
    """Threaded decide() load against one server, decisions collected.

    Workers stripe over ``urls`` (worker *i* takes every ``threads``-th
    URL) for ``rounds`` passes; with ``batch_size > 1`` each worker sends
    chunked ``/v1/decide`` batches instead of single calls.  Every
    decision's reported snapshot revision is kept, which is what lets the
    reload-under-load gate verify each answer against the offline oracle
    of the exact rule set that served it.
    """

    def __init__(
        self,
        host: str,
        port: int,
        urls: list,
        threads: int = 4,
        batch_size: int = 1,
        rounds: int = 1,
        timeout: float = 30.0,
    ) -> None:
        if threads < 1 or batch_size < 1 or rounds < 1:
            raise ValueError("threads, batch_size and rounds must be >= 1")
        self.host = host
        self.port = port
        self.urls = list(urls)
        self.threads = threads
        self.batch_size = batch_size
        self.rounds = rounds
        self.timeout = timeout

    #: Any of these on a call is a *recorded* failure, never a dead worker
    #: whose collected decisions silently vanish from the report.
    _CALL_ERRORS = (ServeError, http.client.HTTPException, OSError)

    def _worker(self, index: int, report: LoadReport, lock: threading.Lock) -> None:
        client = BlockingClient(self.host, self.port, timeout=self.timeout)
        mine = self.urls[index :: self.threads]
        decisions: list = []
        errors: list = []
        try:
            for _ in range(self.rounds):
                if self.batch_size > 1:
                    for start in range(0, len(mine), self.batch_size):
                        chunk = mine[start : start + self.batch_size]
                        try:
                            decisions.extend(client.decide_batch(chunk)["decisions"])
                        except self._CALL_ERRORS as error:
                            errors.append(f"batch@{start}: {error}")
                else:
                    for url in mine:
                        try:
                            decisions.append(client.decide(url))
                        except self._CALL_ERRORS as error:
                            errors.append(f"{url}: {error}")
        finally:
            # merge in the finally so even an unexpected worker death
            # surrenders what it measured instead of undercounting
            client.close()
            with lock:
                report.decisions.extend(decisions)
                report.errors.extend(errors)

    def run(self) -> LoadReport:
        report = LoadReport()
        lock = threading.Lock()
        workers = [
            threading.Thread(
                target=self._worker, args=(index, report, lock), daemon=True
            )
            for index in range(self.threads)
        ]
        started = time.perf_counter()
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        report.seconds = time.perf_counter() - started
        return report


@dataclass
class OpenLoopReport:
    """What an :class:`OpenLoopLoadGenerator` run observed.

    ``latencies`` are measured from each request's *scheduled* send time,
    not its actual send time — so a server that falls behind the offered
    arrival rate accrues queueing delay in its percentiles instead of
    quietly slowing the clock down (the closed-loop blind spot of
    :class:`LoadGenerator`, whose workers only offer the next request
    after the previous answer lands)."""

    offered_rps: float = 0.0
    decisions: list = field(default_factory=list)
    errors: list = field(default_factory=list)
    latencies: list = field(default_factory=list)
    seconds: float = 0.0

    @property
    def requests(self) -> int:
        return len(self.decisions)

    @property
    def achieved_rps(self) -> float:
        if self.seconds <= 0:
            return 0.0
        return len(self.decisions) / self.seconds

    @property
    def revisions_seen(self) -> tuple:
        return tuple(sorted({d["revision"] for d in self.decisions}))

    @property
    def worker_pids_seen(self) -> tuple:
        return tuple(
            sorted({d["worker"] for d in self.decisions if "worker" in d})
        )

    def percentile_ms(self, q: float) -> float:
        """Nearest-rank percentile of scheduled-send-to-response latency,
        in milliseconds."""
        if not self.latencies:
            return 0.0
        data = sorted(self.latencies)
        rank = -(-q * len(data) // 100)
        return data[min(len(data) - 1, max(0, int(rank) - 1))] * 1e3

    def summary(self) -> dict:
        return {
            "offered_rps": self.offered_rps,
            "achieved_rps": self.achieved_rps,
            "requests": self.requests,
            "errors": len(self.errors),
            "p50_ms": self.percentile_ms(50),
            "p99_ms": self.percentile_ms(99),
            "revisions_seen": list(self.revisions_seen),
        }


class OpenLoopLoadGenerator:
    """Fixed-arrival-rate decide load over pooled keep-alive connections.

    Request *i* is assigned the absolute deadline ``start + i / rate``;
    a deadline scheduler sleeps until each deadline and sends regardless
    of whether earlier responses have come back (up to ``connections``
    in-flight pipelines — requests stripe across the pool round-robin,
    and a connection whose previous exchange overruns sends late, with
    the lateness *charged to the measurement* because latency runs from
    the scheduled deadline).  This is the open-loop arrival model:
    offered load is a property of the schedule, not of the server's
    speed, which is what makes the recorded p99 an honest tail-latency
    number for ``BENCH_serve.json``.

    Runs on its own event loop via :meth:`run`, so callers stay
    synchronous (benchmarks, the smoke script).
    """

    def __init__(
        self,
        host: str,
        port: int,
        urls: list,
        rate_rps: float,
        connections: int = 8,
        timeout: float = 30.0,
    ) -> None:
        if rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        if connections < 1:
            raise ValueError("connections must be at least 1")
        if not urls:
            raise ValueError("urls must be non-empty")
        self.host = host
        self.port = port
        self.urls = list(urls)
        self.rate_rps = float(rate_rps)
        self.connections = connections
        self.timeout = timeout

    def _request_bytes(self, url: str) -> bytes:
        body = json.dumps({"url": url}).encode("utf-8")
        return (
            b"POST /v1/decide HTTP/1.1\r\n"
            b"Host: " + self.host.encode("latin-1") + b"\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: " + str(len(body)).encode("latin-1") + b"\r\n"
            b"\r\n" + body
        )

    @staticmethod
    async def _read_response(reader) -> tuple[int, bytes]:
        head = await reader.readuntil(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        status = int(lines[0].split()[1])
        length = 0
        for line in lines[1:]:
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        body = await reader.readexactly(length) if length else b""
        return status, body

    async def _connection_worker(
        self,
        index: int,
        start: float,
        report: OpenLoopReport,
    ) -> None:
        loop = asyncio.get_running_loop()
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            for i in range(index, len(self.urls), self.connections):
                deadline = start + i / self.rate_rps
                delay = deadline - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
                url = self.urls[i]
                try:
                    writer.write(self._request_bytes(url))
                    await writer.drain()
                    status, body = await asyncio.wait_for(
                        self._read_response(reader), timeout=self.timeout
                    )
                except (
                    ConnectionError,
                    OSError,
                    asyncio.TimeoutError,
                    asyncio.IncompleteReadError,
                ) as error:
                    report.errors.append(f"{url}: {error!r}")
                    # The pipeline on this connection is no longer
                    # trustworthy; reconnect before the next deadline.
                    writer.close()
                    reader, writer = await asyncio.open_connection(
                        self.host, self.port
                    )
                    continue
                latency = loop.time() - deadline
                payload = json.loads(body) if body else {}
                if status >= 400:
                    report.errors.append(
                        f"{url}: HTTP {status}: {payload.get('error', '')}"
                    )
                else:
                    report.decisions.append(payload)
                    report.latencies.append(latency)
        finally:
            writer.close()

    async def _run(self) -> OpenLoopReport:
        report = OpenLoopReport(offered_rps=self.rate_rps)
        loop = asyncio.get_running_loop()
        # Small lead-in so connection 0's first deadline is not already
        # in the past by the time the last connection is dialed.
        start = loop.time() + 0.05
        begun = time.perf_counter()
        await asyncio.gather(
            *(
                self._connection_worker(index, start, report)
                for index in range(self.connections)
            )
        )
        report.seconds = time.perf_counter() - begun
        return report

    def run(self) -> OpenLoopReport:
        return asyncio.run(self._run())
