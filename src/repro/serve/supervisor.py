"""Multi-process serving: N asyncio workers over one shared oracle image.

One Python process cannot use more than one core for decide work, and N
independent servers would hold N unpickled copies of the rule index.
:class:`ServeSupervisor` gets parallelism *and* shared memory:

* **Workers** are forked processes, each running an
  :class:`~repro.serve.protocol.AsyncBlockingServer` event loop over a
  :class:`~repro.serve.service.BlockingService` booted with
  ``image=artifact`` — the worker ``mmap``\\ s the artifact's oracle-image
  section read-only, so all N workers share one page-cache-resident copy
  of the rule bytes and pay only a small private skeleton each (the
  cold-RSS gate in ``BENCH_artifacts.json`` pins this).
* **One port.** Where the platform has ``SO_REUSEPORT`` (Linux), the
  parent binds a non-listening reservation socket and each worker joins
  the group with its own listening socket — the kernel load-balances
  connections across workers with no accept contention.  Elsewhere, the
  parent binds+listens a single socket that every forked worker accepts
  from (correct, just herd-prone); ``strategy`` reports which mode is
  live.
* **Control pipes.** The parent holds a duplex pipe per worker, watched
  by each worker's event loop (``loop.add_reader``).  A coordinated
  reload is: parent validates the new artifact *once*, picks the next
  revision number, publishes ``(path, revision)`` to every pipe, and
  collects per-worker acks — so every worker swaps to the same revision
  (via :meth:`~repro.serve.service.BlockingService.swap_image`, one
  atomic reference assignment per worker; in-flight batches finish on the
  snapshot they started with).  Workers decline HTTP ``/v1/reload`` —
  a single worker must never diverge from its siblings.
* **Shared metrics board.** A lock-free ``multiprocessing.Array`` of
  doubles with one writer per slot region: each worker periodically
  publishes its counters, revision, pid, and new latency samples into
  its slot; ``GET /metrics`` on *any* worker (and
  :meth:`ServeSupervisor.metrics`) merges all slots into one view with
  summed counters, cross-worker latency percentiles, per-worker pids,
  and a ``revision_consistent`` flag.
* **Graceful drain.** SIGTERM/SIGINT to the supervisor (or the process
  group) stops accepting, lets every in-flight request finish and flush,
  then exits 0; SIGHUP re-reads the boot artifact path as a coordinated
  reload.
* **Self-healing fleet.** A crashed worker is reaped (survivors report
  ``degraded`` on ``/healthz``, merged ``/metrics`` shows
  ``workers_alive < workers_spawned``) and then *restarted* by
  :meth:`ServeSupervisor.maintain` with per-slot exponential backoff and
  a restart cap; the replacement is converged to the fleet's current
  artifact revision before it counts as alive, restart totals surface as
  ``workers_restarted`` / ``restart_backoff_seconds``, and ``/healthz``
  returns to ``ok`` once the fleet is whole again.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import socket
import time
from pathlib import Path

from ..filterlists.compile import ArtifactError, read_artifact_meta
from ..obs import console
from ..obs.metrics import MetricsRegistry, SharedBoard, nearest_rank

__all__ = ["ServeSupervisor", "run_supervisor", "merge_board"]

# Shared metrics board layout: per-worker slot of named doubles plus a
# latency-sample ring, followed by a parent-owned fleet region — see
# :class:`repro.obs.metrics.SharedBoard`.  Single writer per region,
# torn reads acceptable (monitoring, not ledger).
_SLOT_FIELDS = (
    "pid", "revision", "served", "batches", "blocked", "reloads",
    "hits", "misses", "entries", "observed", "total_s", "cursor",
)
_FLEET_FIELDS = ("spawned", "alive", "restarted", "backoff")
DEFAULT_RING = 512

_PUBLISH_INTERVAL = 0.05


def _as_board(board, workers: int, ring: int) -> SharedBoard:
    """Accept either a :class:`SharedBoard` or the raw shared array a
    forked worker inherited, and return the named-field view."""
    if isinstance(board, SharedBoard):
        return board
    return SharedBoard(board, _SLOT_FIELDS, workers, ring, _FLEET_FIELDS)


def merge_board(board, workers: int, ring: int) -> dict:
    """Fold every worker's board slot into one ``/metrics`` view.

    Pure function of the shared array, so the parent and every worker
    compute the identical merged view.  Workers that have not published
    yet (pid still 0) are skipped.
    """
    view = _as_board(board, workers, ring)
    per_worker = []
    served = batches = blocked = reloads = hits = misses = entries = 0
    observed = 0
    total_s = 0.0
    samples: list[float] = []
    for index in range(workers):
        slot = view.read_slot(index)
        pid = int(slot["pid"])
        if pid == 0:
            continue
        row = {
            "worker": index,
            "pid": pid,
            "revision": int(slot["revision"]),
            "served": int(slot["served"]),
            "batches": int(slot["batches"]),
            "blocked": int(slot["blocked"]),
            "reloads": int(slot["reloads"]),
            "cache_hits": int(slot["hits"]),
            "cache_misses": int(slot["misses"]),
        }
        per_worker.append(row)
        served += row["served"]
        batches += row["batches"]
        blocked += row["blocked"]
        reloads += row["reloads"]
        hits += row["cache_hits"]
        misses += row["cache_misses"]
        entries += int(slot["entries"])
        observed += int(slot["observed"])
        total_s += slot["total_s"]
        samples.extend(view.read_samples(index))
    samples.sort()

    fleet = view.read_fleet()
    revisions = sorted({row["revision"] for row in per_worker})
    lookups = hits + misses
    return {
        "workers": per_worker,
        "worker_pids": [row["pid"] for row in per_worker],
        "workers_spawned": int(fleet.get("spawned", 0)),
        "workers_alive": int(fleet.get("alive", 0)),
        "workers_restarted": int(fleet.get("restarted", 0)),
        "restart_backoff_seconds": float(fleet.get("backoff", 0.0)),
        "revisions": revisions,
        "revision_consistent": len(revisions) <= 1,
        "decisions": {
            "served": served,
            "batches": batches,
            "blocked": blocked,
            "reloads": reloads,
        },
        "cache": {
            "hits": hits,
            "misses": misses,
            "hit_rate": (hits / lookups) if lookups else 0.0,
            "entries": entries,
        },
        "latency": {
            "observed": observed,
            "window": len(samples),
            "mean_ms": (total_s / observed * 1e3) if observed else 0.0,
            "p50_ms": nearest_rank(samples, 50) * 1e3,
            "p99_ms": nearest_rank(samples, 99) * 1e3,
        },
    }


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------

def _publish_slot(service, board: SharedBoard, index: int, cursor: int) -> int:
    """Copy this worker's counters + fresh latency samples into its board
    slot; returns the advanced latency cursor.  Reaches into the
    service's registry instruments deliberately — the supervisor is the
    one sanctioned cross-process reader, and ``service.metrics()`` would
    sort the whole latency window on every publish tick."""
    snapshot = service.snapshot
    stats = snapshot.oracle.cache_stats
    drained, fresh = service._latency.drain_since(cursor)
    board.write_slot(
        index,
        {
            "pid": os.getpid(),
            "revision": snapshot.revision,
            "served": service._decisions_served.value,
            "batches": service._decisions_batches.value,
            "blocked": service._decisions_blocked.value,
            "reloads": service._reloads.value,
            "hits": stats.hits if stats else 0,
            "misses": stats.misses if stats else 0,
            "entries": len(snapshot.oracle.matcher),
            "observed": service._latency.count,
            "total_s": service._latency.total,
        },
    )
    board.append_samples(index, fresh)
    return drained


def _worker_main(
    index: int,
    artifact: str,
    host: str,
    port: int,
    inherited_sock,
    reuse_port: bool,
    conn,
    board,
    workers: int,
    ring: int,
    incarnation: int = 1,
) -> None:
    """Entry point of one forked worker: asyncio server on the shared
    port, control pipe on the loop, board publisher, own drain signals.

    ``incarnation`` counts spawns of this worker slot (1 = original, 2 =
    first restart, …) — it is the execution coordinate the
    ``serve.worker`` fault-injection site matches on, so a chaos plan can
    crash exactly the first incarnation and prove the restarted one
    serves identically.
    """
    import asyncio

    from ..faults import FaultPlan
    from .protocol import AsyncBlockingServer
    from .service import BlockingService

    async def main() -> None:
        service = BlockingService(image=artifact)
        shared = _as_board(board, workers, ring)

        def health() -> dict:
            # Liveness plus fleet status: the parent keeps the board's
            # fleet region current as it reaps crashed siblings, so any
            # worker's /healthz reports "degraded" while the fleet is
            # short-handed — a probe hitting a live worker still sees
            # that capacity is reduced.
            payload = service.healthz()
            fleet = shared.read_fleet()
            spawned = int(fleet.get("spawned", 0))
            alive = int(fleet.get("alive", 0))
            payload["workers_spawned"] = spawned
            payload["workers_alive"] = alive
            if spawned and alive < spawned:
                payload["status"] = "degraded"
            return payload

        server = AsyncBlockingServer(
            service,
            host=host,
            port=port,
            sock=inherited_sock,
            reuse_port=reuse_port,
            supervised=True,
            metrics_provider=lambda: merge_board(shared, workers, ring),
            health_provider=health,
            worker_tag=os.getpid(),
        )
        await server.start()
        loop = asyncio.get_running_loop()
        stopping = asyncio.Event()
        cursor = _publish_slot(service, shared, index, 0)

        # Chaos hook (env-injected; None costs nothing): a ``crash``
        # fault at this (worker, incarnation) coordinate hard-exits the
        # process after ``seconds`` of normal serving — the supervisor's
        # maintain() loop must notice and restart us.
        plan = FaultPlan.from_env()
        fault = (
            plan.at("serve.worker", index, incarnation)
            if plan is not None
            else None
        )
        if fault is not None and fault.kind == "crash":
            loop.call_later(fault.seconds, os._exit, 72)

        def start_drain() -> None:
            stopping.set()

        # The supervisor normally signals drain over the pipe, but a
        # process-group SIGTERM/SIGINT (Ctrl-C) reaches workers directly.
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, start_drain)

        def on_control() -> None:
            try:
                while conn.poll():
                    message = conn.recv()
                    op = message.get("op")
                    if op == "reload":
                        try:
                            report = service.swap_image(
                                message["path"], message["revision"]
                            )
                        except (ArtifactError, OSError) as error:
                            conn.send(
                                {
                                    "op": "reload-error",
                                    "worker": os.getpid(),
                                    "error": str(error),
                                }
                            )
                        else:
                            report["op"] = "reload-ack"
                            report["worker"] = os.getpid()
                            conn.send(report)
                    elif op == "drain":
                        start_drain()
                    elif op == "ping":
                        conn.send({"op": "pong", "worker": os.getpid()})
            except EOFError:
                # Parent went away: drain and exit rather than serve
                # unsupervised forever.
                start_drain()

        loop.add_reader(conn.fileno(), on_control)
        conn.send(
            {"op": "ready", "worker": os.getpid(), "port": server.port}
        )

        async def publisher() -> None:
            local = cursor
            while not stopping.is_set():
                await asyncio.sleep(_PUBLISH_INTERVAL)
                local = _publish_slot(service, shared, index, local)

        publish_task = asyncio.create_task(publisher())
        await stopping.wait()
        loop.remove_reader(conn.fileno())
        await server.drain(timeout=10.0)
        publish_task.cancel()
        _publish_slot(service, shared, index, 0)
        conn.send({"op": "drained", "worker": os.getpid()})
        conn.close()

    asyncio.run(main())


# ---------------------------------------------------------------------------
# Parent supervisor
# ---------------------------------------------------------------------------

class ServeSupervisor:
    """Parent of N image-backed asyncio serve workers on one port.

    Requires a compiled ``.tsoracle`` artifact (version 3, carrying the
    oracle image): multi-process serving exists precisely to share that
    image's pages, and a coordinated reload needs an artifact path it can
    publish to every worker.  Embeddable (:meth:`start`/:meth:`shutdown`
    or context manager) for tests and benchmarks, or run blocking with
    :meth:`serve_forever` (the ``trackersift serve --workers N`` path).
    """

    def __init__(
        self,
        artifact: str | Path,
        workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        ring: int = DEFAULT_RING,
        max_worker_restarts: int = 5,
        restart_base_seconds: float = 0.5,
        restart_cap_seconds: float = 30.0,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.artifact = Path(artifact).resolve()
        # Validates magic/version/checksum up front: a bad artifact must
        # fail in the parent, not asynchronously in N children.
        self.artifact_meta = read_artifact_meta(self.artifact)
        self.workers = workers
        self.ring = ring
        # Restart policy: a dead worker slot is respawned after an
        # exponential per-slot backoff (base doubling to cap), at most
        # max_worker_restarts times per slot — a crash-looping worker
        # degrades the fleet instead of spinning the supervisor.
        self.max_worker_restarts = max_worker_restarts
        self.restart_base_seconds = restart_base_seconds
        self.restart_cap_seconds = restart_cap_seconds
        self._host = host
        self._port = port
        self._reserve_sock: socket.socket | None = None
        self._listen_sock: socket.socket | None = None
        # Index-stable worker slots: entry i belongs to worker slot i
        # forever; a dead worker leaves a None hole until maintain()
        # respawns it (restart bookkeeping is per-slot).
        self._processes: list = []
        self._pipes: list = []
        self._incarnations: list[int] = []
        self._restarts: list[int] = []
        self._backoffs: list[float] = []
        self._restart_at: list[float] = []
        self._total_restarts = 0
        self._total_backoff = 0.0
        self._context = None
        self._reuse_port = False
        self._board: SharedBoard | None = None
        self._revision = 1
        self._started = False
        self.registry = MetricsRegistry()
        self.registry.gauge(
            "workers_spawned",
            "serve workers forked at startup",
            fn=lambda: (
                self._board.read_fleet().get("spawned", 0.0)
                if self._board is not None
                else 0.0
            ),
        )
        self.registry.gauge(
            "workers_alive",
            "serve workers currently alive",
            fn=lambda: (
                self._board.read_fleet().get("alive", 0.0)
                if self._board is not None
                else 0.0
            ),
        )
        self.registry.gauge(
            "workers_restarted",
            "serve workers restarted after death",
            fn=lambda: (
                self._board.read_fleet().get("restarted", 0.0)
                if self._board is not None
                else 0.0
            ),
        )
        self.registry.gauge(
            "restart_backoff_seconds",
            "total backoff delay applied before worker restarts",
            fn=lambda: (
                self._board.read_fleet().get("backoff", 0.0)
                if self._board is not None
                else 0.0
            ),
        )

    # -- socket strategy ---------------------------------------------------
    @property
    def strategy(self) -> str:
        """``"reuseport"`` (per-worker listening sockets, kernel
        load-balanced) or ``"inherited"`` (one parent-listened socket all
        workers accept from)."""
        return "reuseport" if hasattr(socket, "SO_REUSEPORT") else "inherited"

    def _bind(self) -> None:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if self.strategy == "reuseport":
            # Reservation only — never listens.  Holding a bound
            # SO_REUSEPORT socket keeps the (possibly ephemeral) port
            # valid for workers joining and re-joining the group.
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            sock.bind((self._host, self._port))
            self._reserve_sock = sock
        else:
            sock.bind((self._host, self._port))
            sock.listen(512)
            self._listen_sock = sock
        self._host, self._port = sock.getsockname()[:2]

    @property
    def host(self) -> str:
        return self._host

    @property
    def port(self) -> int:
        return self._port

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self._port}"

    @property
    def worker_pids(self) -> list[int]:
        return [
            process.pid for process in self._processes if process is not None
        ]

    def _alive_count(self) -> int:
        return sum(
            1
            for process in self._processes
            if process is not None and process.is_alive()
        )

    # -- lifecycle ---------------------------------------------------------
    def _spawn_worker(self, index: int) -> None:
        """(Re)spawn worker slot ``index`` — pipe, process, bookkeeping."""
        self._incarnations[index] += 1
        parent_end, worker_end = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_worker_main,
            args=(
                index,
                str(self.artifact),
                self._host,
                self._port,
                self._listen_sock,
                self._reuse_port,
                worker_end,
                self._board.array,
                self.workers,
                self.ring,
                self._incarnations[index],
            ),
            name=f"trackersift-serve-worker-{index}",
        )
        process.start()
        worker_end.close()
        self._processes[index] = process
        self._pipes[index] = parent_end

    def _await_ready(self, index: int, timeout: float) -> dict:
        pipe = self._pipes[index]
        if pipe is None or timeout <= 0 or not pipe.poll(timeout):
            raise RuntimeError(
                f"worker {index} did not become ready within {timeout:.0f}s"
            )
        message = pipe.recv()
        if message.get("op") != "ready":
            raise RuntimeError(
                f"worker {index} sent {message!r} instead of ready"
            )
        return message

    def _converge_worker(self, index: int, timeout: float = 30.0) -> None:
        """Bring a freshly restarted worker to the fleet's revision.

        A restarted worker boots the *current* artifact but at revision 1;
        if the fleet has reloaded past that, publish a catch-up swap so
        ``revision_consistent`` holds again.
        """
        if self._revision <= 1:
            return
        pipe = self._pipes[index]
        pipe.send(
            {
                "op": "reload",
                "path": str(self.artifact),
                "revision": self._revision,
            }
        )
        if not pipe.poll(timeout):
            raise RuntimeError(f"worker {index} catch-up reload timed out")
        message = pipe.recv()
        if message.get("op") != "reload-ack":
            raise RuntimeError(
                f"worker {index} catch-up reload failed: {message!r}"
            )

    def start(self, ready_timeout: float = 30.0) -> "ServeSupervisor":
        if self._started:
            raise RuntimeError("supervisor already started")
        self._bind()
        # Fork, not spawn: workers inherit the board, pipes, and (in
        # inherited-socket mode) the listening socket without pickling.
        self._context = multiprocessing.get_context("fork")
        self._board = SharedBoard.create(
            self._context, _SLOT_FIELDS, self.workers, self.ring, _FLEET_FIELDS
        )
        self._reuse_port = self.strategy == "reuseport"
        self._processes = [None] * self.workers
        self._pipes = [None] * self.workers
        self._incarnations = [0] * self.workers
        self._restarts = [0] * self.workers
        self._backoffs = [self.restart_base_seconds] * self.workers
        self._restart_at = [0.0] * self.workers
        self._total_restarts = 0
        self._total_backoff = 0.0
        for index in range(self.workers):
            self._spawn_worker(index)
        deadline = time.monotonic() + ready_timeout
        for index in range(self.workers):
            try:
                self._await_ready(index, deadline - time.monotonic())
            except RuntimeError:
                self.shutdown(timeout=2.0)
                raise
        self._board.write_fleet(
            {
                "spawned": self.workers,
                "alive": self.workers,
                "restarted": 0,
                "backoff": 0.0,
            }
        )
        self._started = True
        return self

    def reap(self) -> list[dict]:
        """Remove exited workers from the fleet, keep serving degraded.

        A crashed worker used to silently shrink capacity (in REUSEPORT
        mode the kernel keeps load-balancing over the survivors) with no
        externally visible signal.  Now the parent notices, closes the
        dead worker's pipe, leaves an index-stable hole for
        :meth:`maintain` to refill, and updates the board's fleet region
        so every surviving worker's ``/healthz`` reports ``degraded`` and
        the merged ``/metrics`` carries ``workers_alive <
        workers_spawned``.  Returns one record per reaped worker.
        """
        reaped = []
        now = time.monotonic()
        for index, process in enumerate(self._processes):
            if process is None or process.is_alive():
                continue
            process.join(timeout=0)
            reaped.append(
                {
                    "worker": index,
                    "pid": process.pid,
                    "exitcode": process.exitcode,
                }
            )
            pipe = self._pipes[index]
            if pipe is not None:
                try:
                    pipe.close()
                except OSError:
                    pass
            self._processes[index] = None
            self._pipes[index] = None
            # Arm this slot's restart clock: maintain() respawns it once
            # the backoff window has passed.
            self._restart_at[index] = now + self._backoffs[index]
        if reaped and self._board is not None:
            self._board.write_fleet({"alive": self._alive_count()})
        return reaped

    def maintain(self, ready_timeout: float = 30.0) -> dict:
        """Reap dead workers and restart them with exponential backoff.

        The supervisor's periodic self-healing step (called every tick by
        :meth:`serve_forever`): each empty worker slot whose backoff
        window has passed and whose restart budget remains is respawned;
        the new worker is awaited ready and converged to the fleet's
        current revision, so it serves identically to the one it
        replaces.  Returns ``{"reaped": [...], "restarted": [...]}``.
        """
        events = {"reaped": self.reap(), "restarted": []}
        now = time.monotonic()
        for index in range(self.workers):
            if self._processes[index] is not None:
                continue
            if self._restarts[index] >= self.max_worker_restarts:
                continue
            if now < self._restart_at[index]:
                continue
            delay = self._backoffs[index]
            self._spawn_worker(index)
            self._restarts[index] += 1
            self._total_restarts += 1
            self._total_backoff += delay
            self._backoffs[index] = min(
                self._backoffs[index] * 2.0, self.restart_cap_seconds
            )
            try:
                self._await_ready(index, ready_timeout)
                self._converge_worker(index)
            except RuntimeError:
                # The replacement itself failed: clear the slot (its
                # restart budget was consumed) and try again next round
                # with a longer backoff.
                process = self._processes[index]
                if process is not None and process.is_alive():
                    process.kill()
                    process.join(timeout=2.0)
                pipe = self._pipes[index]
                if pipe is not None:
                    try:
                        pipe.close()
                    except OSError:
                        pass
                self._processes[index] = None
                self._pipes[index] = None
                self._restart_at[index] = now + self._backoffs[index]
                continue
            events["restarted"].append(
                {"worker": index, "pid": self._processes[index].pid}
            )
        if self._board is not None:
            self._board.write_fleet(
                {
                    "alive": self._alive_count(),
                    "restarted": self._total_restarts,
                    "backoff": self._total_backoff,
                }
            )
        return events

    def reload(
        self, artifact: str | Path | None = None, timeout: float = 30.0
    ) -> dict:
        """Coordinated cross-process artifact swap.

        Validates the artifact once in the parent, assigns the next
        revision number, publishes to every worker's control pipe, and
        waits for every ack.  Returns the merged report; raises
        :class:`~repro.filterlists.compile.ArtifactError` if the artifact
        fails validation (no worker is contacted) or ``RuntimeError`` if
        a worker fails or times out (workers that already swapped keep
        the new revision — the next reload re-converges them).
        """
        path = Path(artifact).resolve() if artifact is not None else self.artifact
        meta = read_artifact_meta(path)  # parent-side validation gate
        revision = self._revision + 1
        targets = [
            (index, pipe)
            for index, pipe in enumerate(self._pipes)
            if pipe is not None
        ]
        for _, pipe in targets:
            pipe.send({"op": "reload", "path": str(path), "revision": revision})
        acks = []
        deadline = time.monotonic() + timeout
        for index, pipe in targets:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not pipe.poll(remaining):
                raise RuntimeError(f"worker {index} reload ack timed out")
            message = pipe.recv()
            if message.get("op") != "reload-ack":
                raise RuntimeError(
                    f"worker {index} reload failed: "
                    f"{message.get('error', message)!r}"
                )
            acks.append(message)
        self._revision = revision
        self.artifact = path
        self.artifact_meta = meta
        return {
            "revision": revision,
            "artifact": str(path),
            "rule_count": meta.get("rule_count"),
            "workers": [
                {
                    "pid": ack["worker"],
                    "revision": ack["revision"],
                    "previous_revision": ack["previous_revision"],
                }
                for ack in acks
            ],
        }

    def metrics(self) -> dict:
        """The merged cross-worker metrics view (same function any
        worker's ``GET /metrics`` serves)."""
        return merge_board(self._board, self.workers, self.ring)

    def shutdown(self, timeout: float = 15.0) -> list[int]:
        """Graceful drain: publish drain to every pipe, join, escalate to
        terminate/kill only past the deadline.  Returns exit codes."""
        processes = [p for p in self._processes if p is not None]
        for pipe in self._pipes:
            if pipe is None:
                continue
            try:
                pipe.send({"op": "drain"})
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + timeout
        for process in processes:
            process.join(timeout=max(0.0, deadline - time.monotonic()))
        for process in processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - last resort
                process.kill()
                process.join(timeout=2.0)
        codes = [process.exitcode for process in processes]
        for pipe in self._pipes:
            if pipe is not None:
                pipe.close()
        for sock in (self._reserve_sock, self._listen_sock):
            if sock is not None:
                sock.close()
        self._reserve_sock = None
        self._listen_sock = None
        self._processes = []
        self._pipes = []
        self._started = False
        return codes

    def __enter__(self) -> "ServeSupervisor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        if self._started:
            self.shutdown()

    # -- CLI blocking mode -------------------------------------------------
    def serve_forever(self) -> int:
        """Block until SIGTERM/SIGINT, draining gracefully (exit 0).
        SIGHUP re-reads the boot artifact as a coordinated reload.
        Crashed workers are reaped and restarted with exponential backoff
        (the fleet serves degraded in between — every survivor's
        ``/healthz`` says so); only a fleet that is fully dead with every
        restart budget spent exits non-zero."""
        stop = {"flag": False}
        fleet_dead = False

        def on_stop(signum, frame) -> None:
            stop["flag"] = True

        def on_hup(signum, frame) -> None:
            try:
                report = self.reload(self.artifact)
                console.say(
                    f"trackersift serve: reloaded revision "
                    f"{report['revision']} on {len(report['workers'])} workers"
                )
            except (ArtifactError, RuntimeError, OSError) as error:
                console.say(f"trackersift serve: reload failed: {error}")

        previous = {
            signal.SIGTERM: signal.signal(signal.SIGTERM, on_stop),
            signal.SIGINT: signal.signal(signal.SIGINT, on_stop),
            signal.SIGHUP: signal.signal(signal.SIGHUP, on_hup),
        }
        try:
            while not stop["flag"]:
                time.sleep(0.2)
                events = self.maintain()
                for record in events["reaped"]:
                    console.say(
                        f"trackersift serve: worker pid {record['pid']} "
                        f"exited {record['exitcode']}; continuing degraded "
                        f"({self._alive_count()}/{self.workers} workers "
                        "alive)"
                    )
                for record in events["restarted"]:
                    console.say(
                        f"trackersift serve: worker {record['worker']} "
                        f"restarted as pid {record['pid']} "
                        f"({self._alive_count()}/{self.workers} workers "
                        "alive)"
                    )
                if self._alive_count() == 0 and all(
                    count >= self.max_worker_restarts
                    for count in self._restarts
                ):
                    console.say(
                        "trackersift serve: every worker has exited and "
                        "the restart budget is spent; shutting down"
                    )
                    fleet_dead = True
                    stop["flag"] = True
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
        codes = self.shutdown()
        if fleet_dead:
            return 1
        return 0 if all(code == 0 for code in codes) else 1


def run_supervisor(
    artifact: str,
    workers: int,
    host: str = "127.0.0.1",
    port: int = 0,
) -> int:
    """``trackersift serve --workers N --artifact ...`` entry point."""
    supervisor = ServeSupervisor(
        artifact, workers=workers, host=host, port=port
    )
    supervisor.start()
    meta = supervisor.artifact_meta
    console.say(
        f"trackersift serve: {workers} workers on {supervisor.url} "
        f"({supervisor.strategy} sockets, {meta.get('rule_count')} rules, "
        f"shared image {meta.get('image_bytes')} bytes)"
    )
    console.say(
        "endpoints: POST /v1/decide  GET /healthz  GET /metrics  "
        "(reload: SIGHUP to the supervisor)"
    )
    return supervisor.serve_forever()
