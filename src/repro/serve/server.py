"""Threaded JSON API over :class:`~repro.serve.service.BlockingService`.

Pure stdlib (``http.server``), matching the repo's no-third-party-deps
rule.  The surface is four endpoints:

* ``POST /v1/decide``   — ``{"url", "resource_type"?, "page_url"?}`` for a
  single decision, or ``{"requests": [...]}`` for a batch (each item a URL
  string or a request object); batches are decided against one snapshot.
* ``POST /v1/reload``   — ``{"lists": [{"name", "text"}, ...]}`` parses
  and swaps in a new snapshot and returns the rule-churn report; an empty
  body reloads the embedded default lists; ``{"artifact": "<name>"}``
  adopts a compiled ``.tsoracle`` without parsing — opt-in only: the
  server must have been started with ``--artifact``, and the name is
  resolved inside that artifact's directory (artifacts embed pickle, so
  clients never choose arbitrary server paths to deserialize).
* ``GET /healthz``      — liveness plus the serving snapshot revision.
* ``GET /metrics``      — cache hit/miss counters, decision latency
  p50/p99, snapshot revision, uptime.

Concurrency model: :class:`ThreadingHTTPServer` handles each connection
on its own daemon thread; a bounded semaphore caps how many requests are
*decided* concurrently (the ``--threads`` knob, held per request — never
across keep-alive idle gaps), so a traffic spike queues instead of
oversubscribing the host.  ``/healthz`` and ``/metrics`` bypass the cap:
a saturated server still answers its liveness probes.  The service
itself needs no per-endpoint locking — see :mod:`repro.serve.service`
for the snapshot swap argument.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import urlsplit

from ..filterlists.parser import parse_filter_list
from ..obs import console
from ..obs.metrics import (
    PROMETHEUS_CONTENT_TYPE,
    prometheus_from_dict,
    wants_prometheus,
)
from .service import BlockingService, apply_reload_payload

__all__ = ["BlockingServer", "load_list_files", "build_server", "run_server"]

DEFAULT_PORT = 8377
DEFAULT_THREADS = 8


class _ServeHandler(BaseHTTPRequestHandler):
    """Routes the four endpoints; every response is JSON."""

    protocol_version = "HTTP/1.1"  # keep-alive: clients reuse connections
    server_version = "trackersift-serve"
    # Socket timeout for every read: without it, a client that announces a
    # Content-Length and stalls mid-body would block its handler forever
    # *while holding a --threads slot* — a handful of such clients would
    # wedge the whole service.  Also reaps idle keep-alive connections.
    timeout = 30
    # Status line, headers and body must leave in one segment: the default
    # unbuffered wfile sends them separately, and the runt body packet then
    # sits out a Nagle/delayed-ACK round (~40 ms per decision on loopback).
    # ``handle_one_request`` flushes after every response, so buffering
    # composes correctly with keep-alive.
    wbufsize = 64 * 1024
    disable_nagle_algorithm = True

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        # Per-request stderr lines would swamp a load test; metrics carry
        # the observable state instead.
        pass

    # -- plumbing ----------------------------------------------------------
    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        if self.headers.get("Transfer-Encoding"):
            # BaseHTTPRequestHandler never decodes chunked bodies; reading
            # such a request as "empty" would silently turn a reload
            # carrying new lists into a reset-to-defaults.
            raise ValueError(
                "chunked request bodies are not supported; send Content-Length"
            )
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length > 0 else b""
        if not raw:
            return {}
        payload = json.loads(raw)
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    @property
    def _service(self) -> BlockingService:
        return self.server.service  # type: ignore[attr-defined]

    # -- endpoints ---------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        # Observability never queues behind decide traffic: /healthz and
        # /metrics skip the --threads slot, so a saturated server still
        # answers its liveness probes.
        self._handle_get()

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        # The --threads slot is held per *request*, never across the idle
        # gaps of a keep-alive connection: a pool of connected-but-quiet
        # clients must not starve new traffic.
        with self.server.slots:  # type: ignore[attr-defined]
            self._handle_post()

    def _send_text(self, status: int, body: str, content_type: str) -> None:
        encoded = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(encoded)))
        self.end_headers()
        self.wfile.write(encoded)

    def _handle_get(self) -> None:
        parts = urlsplit(self.path)
        if parts.path == "/healthz":
            self._send_json(200, self._service.healthz())
        elif parts.path == "/metrics":
            # Same dict both ways: JSON by default, Prometheus text for
            # ``?format=prometheus`` or ``Accept: text/plain`` scrapers.
            payload = self._service.metrics()
            if wants_prometheus(parts.query, self.headers.get("Accept", "")):
                self._send_text(
                    200,
                    prometheus_from_dict(payload),
                    PROMETHEUS_CONTENT_TYPE,
                )
            else:
                self._send_json(200, payload)
        elif parts.path in ("/v1/decide", "/v1/reload"):
            self._send_json(405, {"error": f"{self.path} requires POST"})
        else:
            self._send_json(404, {"error": f"unknown path: {self.path}"})

    def _handle_post(self) -> None:
        try:
            payload = self._read_json()
        except (ValueError, json.JSONDecodeError) as error:
            self._send_json(400, {"error": f"bad request body: {error}"})
            return
        try:
            if self.path == "/v1/decide":
                self._send_json(200, self._decide(payload))
            elif self.path == "/v1/reload":
                self._send_json(200, self._reload(payload))
            elif self.path in ("/healthz", "/metrics"):
                self._send_json(405, {"error": f"{self.path} requires GET"})
            else:
                self._send_json(404, {"error": f"unknown path: {self.path}"})
        except ValueError as error:
            self._send_json(400, {"error": str(error)})

    def _decide(self, payload: dict) -> dict:
        if "requests" in payload:
            requests = payload["requests"]
            if not isinstance(requests, list):
                raise ValueError("'requests' must be a list")
            return self._service.decide_batch(requests)
        return self._service.decide(
            payload.get("url", ""),
            payload.get("resource_type", "other"),
            payload.get("page_url", ""),
        )

    def _reload(self, payload: dict) -> dict:
        # One shared definition of the reload-payload semantics (artifact
        # confinement included) for both front ends — see
        # :func:`repro.serve.service.apply_reload_payload`.
        return apply_reload_payload(
            self._service,
            payload,
            self.server.artifact_dir,  # type: ignore[attr-defined]
        )


class _ThreadingServer(ThreadingHTTPServer):
    """Per-connection threads; the handler bounds per-request concurrency
    on :attr:`slots` (held while handling, released between keep-alive
    requests)."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address,
        service: BlockingService,
        threads: int,
        artifact_dir: Path | None = None,
    ) -> None:
        super().__init__(address, _ServeHandler)
        self.service = service
        self.slots = threading.BoundedSemaphore(threads)
        # Non-None iff the operator booted from a compiled artifact; the
        # only directory HTTP artifact reloads may read from.
        self.artifact_dir = artifact_dir


class BlockingServer:
    """The blocking-decision service behind a threaded HTTP endpoint.

    ``port=0`` binds an ephemeral port (read it back from :attr:`port`) —
    the pattern tests and benchmarks use.  Usable blocking
    (:meth:`serve_forever`, the CLI path) or embedded
    (:meth:`start`/:meth:`stop`, or as a context manager).
    """

    def __init__(
        self,
        service: BlockingService | None = None,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        threads: int = DEFAULT_THREADS,
        artifact_dir: str | Path | None = None,
    ) -> None:
        if threads < 1:
            raise ValueError("threads must be at least 1")
        self.service = service if service is not None else BlockingService()
        self.threads = threads
        self._httpd = _ThreadingServer(
            (host, port),
            self.service,
            threads,
            artifact_dir=(
                Path(artifact_dir).resolve() if artifact_dir is not None else None
            ),
        )
        self._thread: threading.Thread | None = None
        self._serving = False

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`stop` (CLI mode)."""
        self._serving = True
        try:
            self._httpd.serve_forever(poll_interval=0.1)
        finally:
            self._serving = False
            self._httpd.server_close()

    def start(self) -> "BlockingServer":
        """Serve on a background thread; returns once the socket accepts."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="trackersift-serve",
            daemon=True,
        )
        self._serving = True
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut down and release the port; safe on a never-started server
        (``BaseServer.shutdown`` would otherwise wait forever for a serve
        loop that never ran)."""
        if self._serving:
            self._httpd.shutdown()
            self._serving = False
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "BlockingServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def load_list_files(paths) -> tuple:
    """Parse filter-list text files into :class:`ParsedList` objects.

    The list name is the file stem, which is what reload churn reports
    key on.  Raises :class:`OSError` for unreadable paths.
    """
    parsed = []
    for raw in paths:
        path = Path(raw)
        parsed.append(parse_filter_list(path.read_text(encoding="utf-8"), name=path.stem))
    return tuple(parsed)


def build_server(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    threads: int = DEFAULT_THREADS,
    list_paths=(),
    artifact_path: str | None = None,
) -> BlockingServer:
    """Construct (but do not start) the server the CLI runs.

    ``artifact_path`` boots the service from a compiled ``.tsoracle``
    (one validated load, no parsing) instead of list text; it is mutually
    exclusive with ``list_paths``.
    """
    if artifact_path is not None and list_paths:
        raise ValueError("pass --lists or --artifact, not both")
    if artifact_path is not None:
        service = BlockingService(artifact=artifact_path)
        artifact_dir = Path(artifact_path).resolve().parent
    else:
        lists = load_list_files(list_paths) if list_paths else ()
        service = BlockingService(*lists)
        artifact_dir = None
    return BlockingServer(
        service,
        host=host,
        port=port,
        threads=threads,
        artifact_dir=artifact_dir,
    )


def run_server(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    threads: int = DEFAULT_THREADS,
    list_paths=(),
    artifact_path: str | None = None,
) -> int:
    """The ``trackersift serve`` entry point: serve until interrupted."""
    server = build_server(
        host=host,
        port=port,
        threads=threads,
        list_paths=list_paths,
        artifact_path=artifact_path,
    )
    snapshot = server.service.snapshot
    console.say(
        f"trackersift serve: listening on {server.url} "
        f"({threads} decide threads, {snapshot.rule_count} rules from "
        f"{', '.join(snapshot.list_names) or 'embedded defaults'})"
    )
    console.say(
        "endpoints: POST /v1/decide  POST /v1/reload  GET /healthz  GET /metrics"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        console.say("trackersift serve: shutting down")
    return 0
