"""Online blocking-decision service: the oracle, deployed.

TrackerSift's output is deployable blocking knowledge — filter rules a
content blocker consults per request.  This subpackage turns the repo's
offline oracle into that deployment:

* :mod:`repro.serve.service` — :class:`BlockingService`: atomically
  swappable oracle snapshots, hot :meth:`~BlockingService.reload` with a
  ``diff_lists`` churn report, metrics (cache counters, latency
  p50/p99, revision, uptime);
* :mod:`repro.serve.server` — :class:`BlockingServer`: the service
  behind a stdlib threaded JSON API (``POST /v1/decide``,
  ``POST /v1/reload``, ``GET /healthz``, ``GET /metrics``);
* :mod:`repro.serve.protocol` — :class:`AsyncBlockingServer`: the same
  API on one asyncio event loop, with HTTP/1.1 pipelining and
  cross-connection decide coalescing (plus :class:`AsyncServerThread`
  for embedding);
* :mod:`repro.serve.supervisor` — :class:`ServeSupervisor`: N forked
  asyncio workers on one port (``SO_REUSEPORT`` where available) over
  one shared memory-mapped oracle image, with coordinated reloads,
  merged ``/metrics``, and graceful drain;
* :mod:`repro.serve.client` — :class:`BlockingClient`, the closed-loop
  :class:`LoadGenerator`, and the fixed-arrival-rate
  :class:`OpenLoopLoadGenerator` driving ``benchmarks/bench_serve.py``.

Quick embedded use::

    from repro.serve import BlockingClient, BlockingServer

    with BlockingServer(port=0) as server:          # ephemeral port
        client = BlockingClient(server.host, server.port)
        print(client.decide("https://doubleclick.net/pixel/1.gif"))
        client.reload()                              # back to defaults
        client.close()

Or on the command line: ``trackersift serve --port 8377 --threads 8``,
or multi-process over a compiled artifact:
``trackersift serve --workers 4 --artifact rules.tsoracle``.
"""

from .client import (
    BlockingClient,
    LoadGenerator,
    LoadReport,
    OpenLoopLoadGenerator,
    OpenLoopReport,
    ServeError,
)
from .protocol import AsyncBlockingServer, AsyncServerThread
from .server import BlockingServer, build_server, load_list_files, run_server
from .service import BlockingService, Snapshot
from .supervisor import ServeSupervisor, run_supervisor

__all__ = [
    "BlockingService",
    "Snapshot",
    "BlockingServer",
    "AsyncBlockingServer",
    "AsyncServerThread",
    "ServeSupervisor",
    "run_supervisor",
    "build_server",
    "load_list_files",
    "run_server",
    "BlockingClient",
    "LoadGenerator",
    "LoadReport",
    "OpenLoopLoadGenerator",
    "OpenLoopReport",
    "ServeError",
]
