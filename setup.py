"""Legacy setup shim: enables editable installs on environments whose
setuptools/pip lack PEP 660 editable-wheel support (no `wheel` package
offline).  All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
