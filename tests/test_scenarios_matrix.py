"""The scenario × execution-path conformance matrix, golden-pinned.

Tier-1 runs the *fast* packs through every execution path and asserts
each (scenario, path) cell agrees with the canonical result and with the
committed golden manifest — this is the gate every future fast-path PR
answers to.  The full matrix (all packs, including the larger ones) runs
behind the ``slow`` marker and in ``trackersift scenario run --matrix``.
"""

from __future__ import annotations

import json

import pytest

from repro.scenarios import (
    EXECUTION_PATHS,
    SCENARIO_PACKS,
    ScenarioRunner,
    all_packs,
    fast_packs,
)
from repro.scenarios.runner import _PIPELINE_PATHS, _SHARDED_PATHS

FAST_NAMES = tuple(spec.name for spec in fast_packs())
SLOW_NAMES = tuple(
    spec.name for spec in all_packs() if spec.name not in FAST_NAMES
)


@pytest.fixture(scope="session")
def fast_outcomes():
    """One full matrix run per fast pack, shared by every cell assertion."""
    runner = ScenarioRunner()
    return {name: runner.run(SCENARIO_PACKS[name]) for name in FAST_NAMES}


@pytest.mark.tier1
@pytest.mark.parametrize("name", FAST_NAMES)
def test_fast_pack_runs_every_path(fast_outcomes, name):
    outcome = fast_outcomes[name]
    assert set(outcome.paths) == set(EXECUTION_PATHS)
    assert outcome.labeled_requests > 0
    assert outcome.trace_requests > 0


@pytest.mark.tier1
@pytest.mark.parametrize(
    "name,path",
    [(name, path) for name in FAST_NAMES for path in EXECUTION_PATHS],
)
def test_matrix_cell_identity(fast_outcomes, name, path):
    """Every (scenario, path) cell agrees with the canonical result."""
    outcome = fast_outcomes[name]
    record = outcome.paths[path]
    if path in _PIPELINE_PATHS:
        assert record.summary == outcome.summary, (
            f"{name}/{path}: report diverged"
        )
        assert record.requests == outcome.labeled_requests
    if path in _SHARDED_PATHS:
        assert record.shard_state_sha256 == outcome.shard_state_sha256, (
            f"{name}/{path}: ShardState JSON diverged"
        )
    if path == "service":
        assert record.decisions_sha256 == outcome.decisions_sha256, (
            f"{name}/{path}: decision stream diverged from the offline oracle"
        )
    assert not outcome.mismatches, outcome.mismatches


@pytest.mark.tier1
@pytest.mark.parametrize("name", FAST_NAMES)
def test_fast_pack_matches_golden(fast_outcomes, name):
    outcome = fast_outcomes[name]
    assert not outcome.golden_mismatches, outcome.golden_mismatches


@pytest.mark.tier1
@pytest.mark.parametrize("name", FAST_NAMES)
def test_ledger_chains_identical_across_pipeline_paths(fast_outcomes, name):
    """The determinism-ledger gate: every offline path fingerprints the
    same stage chain — not just the same final report.  A divergence
    names its first stage, which is the debugging entry point."""
    from repro.obs.ledger import diff_ledgers

    outcome = fast_outcomes[name]
    reference = outcome.paths[_PIPELINE_PATHS[0]].ledger
    assert reference is not None
    assert reference.stages() == (
        "filterlists", "matcher", "web", "crawl", "labels", "sift", "report",
    )
    for path in _PIPELINE_PATHS[1:]:
        ledger = outcome.paths[path].ledger
        assert ledger is not None, f"{name}/{path}: no ledger recorded"
        diff = diff_ledgers(reference, ledger)
        assert diff["identical"], (
            f"{name}/{path}: ledger diverged first at stage "
            f"{diff['stage']!r} (index {diff['index']})"
        )


@pytest.mark.tier1
@pytest.mark.parametrize("name", FAST_NAMES)
def test_service_ledger_covers_every_revision(fast_outcomes, name):
    """The serve path's ledger records a snapshot identity plus a
    decision-stream digest per revision; the runner has already checked
    it against the offline reference (any divergence would be in
    ``mismatches``, asserted empty by the cell tests)."""
    outcome = fast_outcomes[name]
    ledger = outcome.paths["service"].ledger
    assert ledger is not None
    assert set(ledger.stages()) == {"serve.snapshot", "serve.decisions"}
    assert len(ledger.entries) == 2 * outcome.revisions


@pytest.mark.slow
@pytest.mark.parametrize("name", SLOW_NAMES)
def test_full_matrix_pack(name):
    """The larger packs: full path matrix, golden-pinned (``-m slow``)."""
    outcome = ScenarioRunner().run(SCENARIO_PACKS[name])
    assert outcome.ok, outcome.problems()


# -- harness behaviour -------------------------------------------------------


def test_runner_rejects_unknown_path():
    with pytest.raises(ValueError, match="unknown execution path"):
        ScenarioRunner(paths=("batch", "teleport"))


def test_missing_golden_fails_loudly(tmp_path):
    runner = ScenarioRunner(
        paths=("stream-1", "service"), golden_dir=tmp_path
    )
    outcome = runner.run(SCENARIO_PACKS["tiny-and-huge-mix"])
    assert not outcome.mismatches
    assert any("missing" in m for m in outcome.golden_mismatches)


def test_tampered_golden_detected(tmp_path):
    runner = ScenarioRunner(paths=("stream-1", "service"), golden_dir=tmp_path)
    spec = SCENARIO_PACKS["tiny-and-huge-mix"]
    first = runner.run(spec, update_golden=True)
    assert first.ok

    golden_file = runner.golden_path(spec)
    golden = json.loads(golden_file.read_text(encoding="utf-8"))
    golden["decisions_sha256"] = "0" * 64
    golden_file.write_text(json.dumps(golden), encoding="utf-8")
    tampered = runner.run(spec)
    assert any("decisions_sha256" in m for m in tampered.golden_mismatches)


def test_edited_spec_invalidates_golden(tmp_path):
    """A golden generated from a different spec must not compare at all."""
    from dataclasses import replace

    runner = ScenarioRunner(paths=("stream-1",), golden_dir=tmp_path)
    spec = SCENARIO_PACKS["tiny-and-huge-mix"]
    runner.run(spec, update_golden=True)
    edited = replace(spec, threshold=3.0)
    outcome = runner.run(edited)
    assert any("different spec" in m for m in outcome.golden_mismatches)
