"""Concurrent-access stress tests for the thread-safe decision cache.

The online service (:mod:`repro.serve`) shares one
:class:`CachedMatcher` across all server threads, so the cache must keep
its counters exact and its decisions consistent under contention.  These
tests hammer it from many threads (synchronized on a barrier to maximize
interleaving) and check the invariants that used to be racy: counter
totals, decision correctness, and invalidation during rule additions.
"""

import threading

from repro.filterlists.cache import CachedMatcher, DecisionCache
from repro.filterlists.matcher import FilterMatcher, MatchResult
from repro.filterlists.rules import RequestContext, ResourceType

RULES = """\
||tracker.example^
||ads.example^$script
/pixel*
@@||tracker.example/allowed.js
-banner-$image,domain=news.example|~blog.news.example
"""

URLS = [
    "https://tracker.example/spy.js",
    "https://tracker.example/allowed.js",
    "https://ads.example/unit.js",
    "https://cdn.example/pixel/207.gif",
    "https://cdn.example/pixel/501.gif",  # digit-run twin of the above
    "https://clean.example/app.js",
    "https://news.site/-banner-top.png",
]


def _contexts():
    contexts = []
    for index, url in enumerate(URLS):
        contexts.append(
            RequestContext(
                url=url,
                resource_type=(
                    ResourceType.SCRIPT if url.endswith(".js") else ResourceType.IMAGE
                ),
                page_host="news.example" if index % 2 else "blog.news.example",
                third_party=True,
            )
        )
    return contexts


def _hammer(threads, per_thread_work):
    barrier = threading.Barrier(threads)
    errors: list = []

    def runner(index):
        barrier.wait()
        try:
            per_thread_work(index)
        except Exception as error:  # noqa: BLE001 - surfaced in the assert
            errors.append(error)

    workers = [
        threading.Thread(target=runner, args=(index,)) for index in range(threads)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    assert not errors


class TestConcurrentLookups:
    THREADS = 8
    ROUNDS = 150

    def test_counters_exact_and_decisions_consistent(self):
        matcher = FilterMatcher.from_text(RULES, name="stress")
        cached = CachedMatcher(matcher)
        contexts = _contexts()
        expected = {
            context: FilterMatcher.from_text(RULES, name="stress").match(context)
            for context in contexts
        }
        observed: dict[int, list] = {}

        def work(index):
            local = []
            # each thread walks the contexts at a different phase so hits
            # and misses interleave rather than serialize
            for round_number in range(self.ROUNDS):
                context = contexts[(index + round_number) % len(contexts)]
                local.append((context, cached.match(context)))
            observed[index] = local

        _hammer(self.THREADS, work)

        for local in observed.values():
            for context, result in local:
                want = expected[context]
                assert result.blocked == want.blocked
                assert (result.rule is None) == (want.rule is None)
                if result.rule is not None:
                    assert result.rule.text == want.rule.text
        stats = cached.stats
        assert stats.lookups == self.THREADS * self.ROUNDS
        assert stats.hits + stats.misses == stats.lookups
        # every distinct key was missed at least once, and the store never
        # grew beyond the distinct-key population
        assert stats.misses >= len(cached)
        assert len(cached) <= len(contexts)

    def test_rule_additions_mid_flight_never_serve_stale_decisions(self):
        matcher = FilterMatcher.from_text("||tracker.example^\n", name="stress")
        cached = CachedMatcher(matcher)
        late_context = RequestContext(
            url="https://late.example/tag.js",
            resource_type=ResourceType.SCRIPT,
        )
        stop = threading.Event()

        def work(index):
            if index == 0:
                from repro.filterlists.parser import parse_filter_list

                for step in range(10):
                    cached.add_rules(
                        parse_filter_list(f"||added{step}.example^\n").rules
                    )
                cached.add_rules(
                    parse_filter_list("||late.example^\n").rules
                )
                stop.set()
            else:
                while not stop.is_set():
                    cached.match(late_context)

        _hammer(4, work)

        # After the dust settles the cache must agree with the live rules:
        # the late rule blocks, and a fresh uncached matcher concurs.
        assert cached.match(late_context).blocked
        assert cached.wrapped.match(late_context).blocked
        assert cached.stats.hits + cached.stats.misses == cached.stats.lookups

    def test_concurrent_identical_misses_collapse_to_one_entry(self):
        matcher = FilterMatcher.from_text(RULES, name="stress")
        cached = CachedMatcher(matcher)
        context = _contexts()[0]

        _hammer(8, lambda index: [cached.match(context) for _ in range(50)])

        assert len(cached) == 1
        assert cached.stats.lookups == 8 * 50


class TestPickling:
    def test_warm_cache_crosses_process_boundaries(self):
        """The parallel shard workers pickle cache-enabled oracles; the
        lock must be dropped and rebuilt, the warm decisions must travel."""
        import pickle

        from repro.filterlists.oracle import FilterListOracle

        oracle = FilterListOracle(cache=True)
        assert oracle.should_block_url("https://doubleclick.net/x.js")
        clone = pickle.loads(pickle.dumps(oracle))
        # the transferred entry answers as a hit, and the fresh lock works
        hits_before = clone.cache_stats.hits
        assert clone.should_block_url("https://doubleclick.net/x.js")
        assert clone.cache_stats.hits == hits_before + 1
        clone.matcher.clear()  # exercises the rebuilt lock

    def test_cached_matcher_pickle_roundtrip_decides_identically(self):
        import pickle

        matcher = FilterMatcher.from_text(RULES, name="stress")
        cached = CachedMatcher(matcher)
        contexts = _contexts()
        expected = [cached.match(context).blocked for context in contexts]
        clone = pickle.loads(pickle.dumps(cached))
        assert [clone.match(c).blocked for c in contexts] == expected


class TestDecisionCacheUnit:
    def test_lookup_store_and_counters(self):
        cache = DecisionCache()
        result = MatchResult(blocked=True)
        assert cache.lookup(("k",)) is None  # not counted as hit
        cache.store(("k",), result)
        assert cache.lookup(("k",)) is result
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert len(cache) == 1

    def test_store_without_insert_counts_the_miss_only(self):
        cache = DecisionCache()
        cache.store(("k",), MatchResult(blocked=False), insert=False)
        assert cache.stats.misses == 1
        assert len(cache) == 0

    def test_max_entries_caps_the_store(self):
        cache = DecisionCache(max_entries=2)
        for key in ("a", "b", "c"):
            cache.store((key,), MatchResult(blocked=False))
        assert len(cache) == 2
        assert cache.max_entries == 2

    def test_clear(self):
        cache = DecisionCache()
        cache.store(("k",), MatchResult(blocked=False))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.misses == 1  # counters survive a clear
