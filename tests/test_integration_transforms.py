"""Integration: stacked transforms and persistence of transformed crawls."""

import pytest

from repro.core.hierarchy import sift_requests
from repro.core.pipeline import PipelineConfig, TrackerSiftPipeline
from repro.crawler.storage import RequestDatabase
from repro.labeling.labeler import RequestLabeler
from repro.webmodel import (
    add_internal_pages,
    anonymize_methods,
    apply_cname_cloaking,
    generate_web,
)

SITES = 100
SEED = 13


class TestStackedTransforms:
    @pytest.fixture(scope="class")
    def transformed(self):
        """All three opt-in transforms applied to one population."""
        web = generate_web(sites=SITES, seed=SEED)
        cloak = apply_cname_cloaking(web, fraction=0.3, seed=1)
        internal = add_internal_pages(web, pages_per_site=1, seed=2)
        anonymous = anonymize_methods(web, fraction=0.4, seed=3)
        pipeline = TrackerSiftPipeline(PipelineConfig(sites=SITES, seed=SEED))
        database, crawled, _ = pipeline.crawl(web)
        return web, cloak, internal, anonymous, database, crawled

    def test_all_transforms_took_effect(self, transformed):
        _, cloak, internal, anonymous, _, crawled = transformed
        assert cloak.cloaked_requests > 0
        assert internal.pages_added > 0
        assert anonymous.methods_anonymized > 0
        assert crawled == SITES + internal.pages_added

    def test_pipeline_still_runs_end_to_end(self, transformed):
        _, cloak, _, _, database, _ = transformed
        labeled = RequestLabeler(
            resolver=cloak.resolver, anonymous_by_position=True
        ).label_crawl(database)
        report = sift_requests(labeled.requests)
        assert report.total_requests == len(labeled.requests)
        assert 0.5 < report.final_separation <= 1.0

    def test_uncloaking_still_exact_with_other_transforms(self, transformed):
        _, cloak, _, _, database, _ = transformed
        plain = RequestLabeler().label_crawl(database)
        uncloaked = RequestLabeler(resolver=cloak.resolver).label_crawl(database)
        # internal pages may replay cloaked invocations, so the recovered
        # tracking is at least the number of distinct cloaked requests
        assert (
            uncloaked.tracking_count - plain.tracking_count
            >= cloak.cloaked_requests
        )

    def test_transformed_crawl_round_trips_through_sqlite(
        self, transformed, tmp_path
    ):
        _, cloak, _, _, database, _ = transformed
        path = tmp_path / "transformed.sqlite"
        database.to_sqlite(path)
        reloaded = RequestDatabase.from_sqlite(path)
        labeler = RequestLabeler(resolver=cloak.resolver)
        original = sift_requests(labeler.label_crawl(database).requests)
        restored = sift_requests(labeler.label_crawl(reloaded).requests)
        assert original.summary() == restored.summary()

    def test_transformed_crawl_round_trips_through_jsonl(
        self, transformed, tmp_path
    ):
        _, _, _, _, database, _ = transformed
        path = tmp_path / "transformed.jsonl"
        database.to_jsonl(path)
        reloaded = RequestDatabase.from_jsonl(path)
        assert len(reloaded) == len(database)
        assert reloaded.pages() == database.pages()


class TestTransformDeterminism:
    def test_transforms_are_seed_deterministic(self):
        def build():
            web = generate_web(sites=60, seed=5)
            apply_cname_cloaking(web, fraction=0.3, seed=1)
            add_internal_pages(web, pages_per_site=1, seed=2)
            anonymize_methods(web, fraction=0.4, seed=3)
            return web

        a, b = build(), build()
        assert [w.url for w in a.websites] == [w.url for w in b.websites]
        assert a.planned_request_count() == b.planned_request_count()
        urls_a = [
            r.url
            for s in a.scripts
            for m in s.methods
            for inv in m.invocations
            for r in inv.requests
        ]
        urls_b = [
            r.url
            for s in b.scripts
            for m in s.methods
            for inv in m.invocations
            for r in inv.requests
        ]
        assert urls_a == urls_b
