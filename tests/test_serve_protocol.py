"""The asyncio serve front end: framing, pipelining, coalescing, drain.

Proof obligations for ``repro.serve.protocol``:

* the hand-rolled HTTP/1.1 parser frames requests correctly — keep-alive
  reuse, ``Connection: close``, pipelined bursts answered in order — and
  rejects what it cannot trust (chunked bodies, malformed request lines,
  oversized headers) without wedging the connection loop;
* the cross-connection coalescer merges everything submitted in one
  event-loop tick into a *single* ``decide_validated`` call, splits
  results back per submitter, and keeps validation per-request (one bad
  request 400s alone);
* a supervised worker declines HTTP ``/v1/reload`` (reloads must be
  coordinated), honours ``metrics_provider``, and stamps decisions with
  its ``worker_tag``;
* graceful drain finishes in-flight requests before the server stops.
"""

import asyncio
import json
import socket
import time

import pytest

from repro.serve.client import BlockingClient, ServeError
from repro.serve.protocol import (
    AsyncBlockingServer,
    AsyncServerThread,
    _Coalescer,
    _parse_requests,
    _ProtocolError,
)
from repro.serve.service import BlockingService


# -- the parser, in isolation -------------------------------------------------


def _post(path: str, body: bytes, extra: str = "") -> bytes:
    return (
        f"POST {path} HTTP/1.1\r\nHost: x\r\n{extra}"
        f"Content-Length: {len(body)}\r\n\r\n"
    ).encode() + body


class TestParser:
    def test_incomplete_request_is_kept_as_remainder(self):
        data = _post("/v1/decide", b'{"url": "https://a.example/x"}')
        requests, rest = _parse_requests(data[:20])
        assert requests == [] and rest == data[:20]
        requests, rest = _parse_requests(data)
        assert len(requests) == 1 and rest == b""
        assert requests[0].method == "POST"
        assert requests[0].target == "/v1/decide"
        assert json.loads(requests[0].body)["url"] == "https://a.example/x"

    def test_pipelined_burst_splits_in_order(self):
        burst = b"".join(
            _post("/v1/decide", json.dumps({"url": f"https://a.example/{i}"}).encode())
            for i in range(5)
        ) + b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"
        requests, rest = _parse_requests(burst)
        assert [r.target for r in requests] == ["/v1/decide"] * 5 + ["/healthz"]
        assert rest == b""

    def test_http10_defaults_to_close(self):
        requests, _ = _parse_requests(b"GET /healthz HTTP/1.0\r\nHost: x\r\n\r\n")
        assert requests[0].keep_alive is False

    def test_connection_close_honoured(self):
        requests, _ = _parse_requests(
            b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n"
        )
        assert requests[0].keep_alive is False

    def test_chunked_rejected(self):
        with pytest.raises(_ProtocolError, match="chunked"):
            _parse_requests(
                b"POST /v1/decide HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
            )

    @pytest.mark.parametrize(
        "raw",
        [
            b"NOPE\r\n\r\n",
            b"GET /x\r\n\r\n",
            b"GET /x SPDY/3\r\n\r\n",
            b"GET /x HTTP/1.1\r\nbroken header line\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: nan\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
        ],
    )
    def test_malformed_framing_rejected(self, raw):
        with pytest.raises(_ProtocolError):
            _parse_requests(raw)

    def test_oversized_headers_rejected(self):
        with pytest.raises(_ProtocolError, match="headers too large"):
            _parse_requests(b"GET /x HTTP/1.1\r\nA: " + b"b" * 70_000)


# -- the coalescer, in isolation ----------------------------------------------


class _RecordingService(BlockingService):
    """Counts decide_validated drains so tests can see the merge."""

    def __init__(self) -> None:
        super().__init__()
        self.drains: list = []

    def decide_validated(self, validated, *, batches=1):
        self.drains.append((len(validated), batches))
        return super().decide_validated(validated, batches=batches)


class TestCoalescer:
    def test_same_tick_submissions_merge_into_one_oracle_call(self):
        service = _RecordingService()

        async def scenario():
            coalescer = _Coalescer(service, asyncio.get_running_loop())
            first = coalescer.submit(
                service.validate_requests(["https://a.example/1"]), False
            )
            second = coalescer.submit(
                service.validate_requests(
                    ["https://a.example/2", "https://a.example/3"]
                ),
                True,
            )
            (one, rev_a), (two, rev_b) = await asyncio.gather(first, second)
            return one, two, rev_a, rev_b

        one, two, rev_a, rev_b = asyncio.run(scenario())
        # One drain of 3 URLs, counted as 1 client-visible batch call.
        assert service.drains == [(3, 1)]
        assert len(one) == 1 and len(two) == 2
        assert rev_a == rev_b
        assert one[0]["url"].endswith("/1")
        assert [d["url"][-1] for d in two] == ["2", "3"]

    def test_batch_latency_records_one_sample_per_url(self):
        service = _RecordingService()

        async def scenario():
            coalescer = _Coalescer(service, asyncio.get_running_loop())
            await coalescer.submit(
                service.validate_requests(
                    [f"https://a.example/{i}" for i in range(7)]
                ),
                True,
            )

        asyncio.run(scenario())
        assert service._latency.count == 7

    def test_next_tick_work_forms_a_new_batch(self):
        service = _RecordingService()

        async def scenario():
            coalescer = _Coalescer(service, asyncio.get_running_loop())
            await coalescer.submit(
                service.validate_requests(["https://a.example/1"]), False
            )
            await coalescer.submit(
                service.validate_requests(["https://a.example/2"]), False
            )

        asyncio.run(scenario())
        assert service.drains == [(1, 0), (1, 0)]


# -- the server over real sockets ---------------------------------------------


@pytest.fixture()
def server():
    with AsyncServerThread() as thread:
        yield thread


class TestAsyncServer:
    def test_four_endpoints_roundtrip(self, server):
        with BlockingClient(server.host, server.port) as client:
            health = client.healthz()
            assert health["status"] == "ok" and health["revision"] == 1
            decision = client.decide("https://doubleclick.net/pixel/1.gif")
            assert decision["blocked"] is True
            batch = client.decide_batch(
                ["https://doubleclick.net/a.js", "https://example.org/ok"]
            )
            assert batch["count"] == 2 and batch["revision"] == 1
            metrics = client.metrics()
            assert metrics["decisions"]["served"] == 3

    def test_keep_alive_connection_is_reused(self, server):
        with BlockingClient(server.host, server.port) as client:
            for _ in range(5):
                client.healthz()
            # One connection handled all five exchanges.
            assert len(server.server._connections) == 1

    def test_pipelined_burst_over_raw_socket(self, server):
        body = json.dumps({"url": "https://doubleclick.net/t.js"}).encode()
        burst = _post("/v1/decide", body) * 4
        with socket.create_connection((server.host, server.port), timeout=10) as sock:
            sock.sendall(burst)
            received = b""
            deadline = time.monotonic() + 10
            while received.count(b"HTTP/1.1 200") < 4:
                assert time.monotonic() < deadline, received
                received += sock.recv(65536)
        assert received.count(b'"blocked": true') == 4

    def test_standalone_reload_supported(self, server):
        with BlockingClient(server.host, server.port) as client:
            report = client.reload([("tiny", "||fresh.example^\n")])
            assert report["revision"] == 2
            assert client.decide("https://fresh.example/x")["blocked"] is True

    def test_error_statuses(self, server):
        with BlockingClient(server.host, server.port) as client:
            with pytest.raises(ServeError) as missing:
                client._request("POST", "/v1/nowhere", {})
            assert missing.value.status == 404
            with pytest.raises(ServeError) as wrong_method:
                client._request("GET", "/v1/decide")
            assert wrong_method.value.status == 405
            with pytest.raises(ServeError) as bad_body:
                client._request("POST", "/v1/decide", {"url": ""})
            assert bad_body.value.status == 400

    def test_bad_batch_item_does_not_poison_neighbours(self, server):
        # Two pipelined decide calls, the first malformed: the second
        # still gets answered (validation is per-request, pre-merge).
        good = json.dumps({"url": "https://doubleclick.net/x.js"}).encode()
        bad = json.dumps({"url": ""}).encode()
        with socket.create_connection((server.host, server.port), timeout=10) as sock:
            sock.sendall(_post("/v1/decide", bad) + _post("/v1/decide", good))
            received = b""
            deadline = time.monotonic() + 10
            while received.count(b"\r\n\r\n") < 2:
                assert time.monotonic() < deadline, received
                received += sock.recv(65536)
        assert b"400" in received.split(b"\r\n")[0]
        assert received.count(b'"blocked": true') == 1

    def test_chunked_body_rejected_then_closed(self, server):
        with socket.create_connection((server.host, server.port), timeout=10) as sock:
            sock.sendall(
                b"POST /v1/decide HTTP/1.1\r\nHost: x\r\n"
                b"Transfer-Encoding: chunked\r\n\r\n"
            )
            response = sock.recv(65536)
            assert response.startswith(b"HTTP/1.1 400")
            # Framing is untrustworthy after that: server closes.
            assert sock.recv(65536) == b""


class TestSupervisedMode:
    def test_reload_declined_and_hooks_applied(self):
        merged = {"merged": True, "worker_pids": [41, 42]}
        with AsyncServerThread(
            supervised=True,
            metrics_provider=lambda: merged,
            worker_tag=4242,
        ) as thread:
            with BlockingClient(thread.host, thread.port) as client:
                with pytest.raises(ServeError) as declined:
                    client.reload()
                assert declined.value.status == 400
                assert "supervis" in declined.value.message
                assert client.metrics() == merged
                decision = client.decide("https://doubleclick.net/a.js")
                assert decision["worker"] == 4242
                batch = client.decide_batch(["https://doubleclick.net/b.js"])
                assert batch["decisions"][0]["worker"] == 4242


class TestDrain:
    def test_drain_finishes_in_flight_work(self):
        async def scenario():
            server = await AsyncBlockingServer().start()
            reader, writer = await asyncio.open_connection(
                server.host, server.port
            )
            body = json.dumps(
                {"requests": [f"https://doubleclick.net/{i}" for i in range(50)]}
            ).encode()
            writer.write(_post("/v1/decide", body))
            await writer.drain()
            # Drain while the batch is in flight: the response must still
            # arrive, complete, before the server lets go.
            await server.drain(timeout=10.0)
            head = await reader.readuntil(b"\r\n\r\n")
            assert b"200" in head.split(b"\r\n")[0]
            length = int(
                [
                    line.partition(b":")[2]
                    for line in head.split(b"\r\n")
                    if line.lower().startswith(b"content-length")
                ][0]
            )
            payload = json.loads(await reader.readexactly(length))
            assert payload["count"] == 50
            writer.close()
            return server

        server = asyncio.run(scenario())
        assert server.draining

    def test_drain_closes_idle_connections(self):
        async def scenario():
            server = await AsyncBlockingServer().start()
            reader, writer = await asyncio.open_connection(
                server.host, server.port
            )
            await asyncio.sleep(0.05)  # let the server register it as idle
            await server.drain(timeout=5.0)
            assert await reader.read(1) == b""  # peer closed
            writer.close()

        asyncio.run(scenario())
