"""Surrogate scripts and guard inference (paper §5 extensions)."""

import pytest

from repro.browser.breakage import BreakageLevel
from repro.core.classifier import ResourceClass
from repro.core.guards import (
    InvocationObservation,
    evaluate_guard,
    infer_guard,
    mixed_method_guards,
)
from repro.core.surrogate import generate_surrogate, validate_surrogate
from repro.webmodel.resources import Category


def mixed_scripts_with_results(study):
    """(website, script) pairs whose script the sift classified mixed."""
    mixed_urls = {
        key
        for key, res in study.report.script.resources.items()
        if res.resource_class is ResourceClass.MIXED
    }
    pairs = []
    for site in study.web.websites:
        for script in site.scripts:
            if script.url in mixed_urls:
                pairs.append((site, script))
    return pairs


class TestSurrogateGeneration:
    def test_removes_tracking_methods_only(self, study):
        pairs = mixed_scripts_with_results(study)
        assert pairs
        checked = 0
        for site, script in pairs[:20]:
            surrogate = generate_surrogate(script, study.report)
            method_level = study.report.method.resources
            for name in surrogate.removed_methods:
                result = method_level.get(f"{script.url}@{name}")
                assert result is not None
                assert result.resource_class is ResourceClass.TRACKING
            checked += 1
        assert checked

    def test_unseen_methods_kept(self, study):
        site, script = mixed_scripts_with_results(study)[0]
        surrogate = generate_surrogate(script, study.report)
        assert set(surrogate.removed_methods) | set(surrogate.kept_methods) == {
            m.name for m in script.methods
        }

    def test_remove_mixed_strips_more(self, study):
        pairs = mixed_scripts_with_results(study)
        conservative_total = aggressive_total = 0
        for _, script in pairs:
            conservative_total += len(
                generate_surrogate(script, study.report).removed_methods
            )
            aggressive_total += len(
                generate_surrogate(script, study.report, remove_mixed=True).removed_methods
            )
        assert aggressive_total >= conservative_total

    def test_policy_adapter(self, study):
        _, script = mixed_scripts_with_results(study)[0]
        surrogate = generate_surrogate(script, study.report)
        policy = surrogate.policy
        for method in surrogate.removed_methods:
            assert policy.blocks_invocation(script.url, method, {})
        for method in surrogate.kept_methods:
            assert not policy.blocks_invocation(script.url, method, {})


class TestSurrogateValidation:
    def test_surrogates_remove_tracking_keep_functional(self, study):
        pairs = mixed_scripts_with_results(study)
        validated = 0
        safe = 0
        for site, script in pairs[:25]:
            surrogate = generate_surrogate(script, study.report)
            if surrogate.is_noop:
                continue
            outcome = validate_surrogate(site, script, surrogate)
            validated += 1
            assert outcome.functional_removed == 0, script.url
            assert outcome.tracking_removed > 0
            if outcome.breakage is BreakageLevel.NONE:
                safe += 1
        assert validated > 0
        # method-granular surrogates should mostly avoid breakage — that is
        # the paper's pitch versus script-level blocking
        assert safe / validated > 0.8

    def test_script_blocking_breaks_more_than_surrogates(self, study):
        from repro.browser.breakage import assess_breakage

        pairs = mixed_scripts_with_results(study)[:25]
        script_breaks = surrogate_breaks = cases = 0
        for site, script in pairs:
            surrogate = generate_surrogate(script, study.report)
            if surrogate.is_noop:
                continue
            cases += 1
            block_outcome = assess_breakage(site, frozenset({script.url}))
            surrogate_outcome = validate_surrogate(site, script, surrogate)
            script_breaks += block_outcome.level is not BreakageLevel.NONE
            surrogate_breaks += surrogate_outcome.breakage is not BreakageLevel.NONE
        assert cases > 0
        assert surrogate_breaks <= script_breaks


class TestGuardInference:
    def obs(self, event, tracking, caller="https://a/x.js@main"):
        return InvocationObservation(
            args={"event": event}, caller=caller, is_tracking=tracking
        )

    def test_disjoint_values_produce_invariant(self):
        observations = [
            self.obs("imp", True),
            self.obs("click", True),
            self.obs("load", False),
            self.obs("render", False),
        ]
        guard = infer_guard("https://a/s.js", "m2", observations)
        assert not guard.vacuous
        assert guard.should_block({"event": "imp"})
        assert not guard.should_block({"event": "load"})
        assert not guard.should_block({"event": "never-seen"})

    def test_overlapping_values_are_rejected(self):
        observations = [
            self.obs("send", True),
            self.obs("send", False),
        ]
        guard = infer_guard("https://a/s.js", "m2", observations)
        assert "event" not in guard.arg_invariants

    def test_caller_invariant(self):
        observations = [
            self.obs("send", True, caller="https://t/track.js@t"),
            self.obs("send", False, caller="https://a/user.js@k"),
        ]
        guard = infer_guard("https://a/s.js", "m2", observations)
        assert guard.should_block({"event": "send"}, caller="https://t/track.js@t")
        assert not guard.should_block({"event": "send"}, caller="https://a/user.js@k")

    def test_evaluation_perfect_on_separable(self):
        observations = [self.obs("imp", True) for _ in range(20)] + [
            self.obs("load", False) for _ in range(20)
        ]
        guard = infer_guard("https://a/s.js", "m2", observations)
        evaluation = evaluate_guard(guard, observations)
        assert evaluation.precision == 1.0
        assert not evaluation.breaks_functionality

    def test_policy_adapter(self):
        observations = [self.obs("imp", True), self.obs("load", False)]
        guard = infer_guard("https://a/s.js", "m2", observations)
        script, method, predicate = guard.as_policy_guard()
        assert (script, method) == ("https://a/s.js", "m2")
        assert predicate(script, method, {"event": "imp"})


class TestGuardsOnStudy:
    def test_guards_rarely_block_functional(self, study):
        # Most mixed methods carry separable contexts and get perfect
        # guards; the generator's deliberately non-separable minority can
        # mislead inference on a small train split, so we assert aggregate
        # precision, not perfection.
        results = mixed_method_guards(study.web)
        assert results
        true_blocks = sum(e.true_blocks for _, e in results)
        false_blocks = sum(e.false_blocks for _, e in results)
        assert true_blocks / (true_blocks + false_blocks) > 0.9
        perfect = sum(1 for _, e in results if not e.breaks_functionality)
        assert perfect / len(results) > 0.8

    def test_separable_majority_gets_nonvacuous_guards(self, study):
        results = mixed_method_guards(study.web)
        nonvacuous = sum(1 for g, _ in results if not g.vacuous)
        assert nonvacuous / len(results) > 0.5

    def test_web_scripts_cover_mixed_category(self, study):
        mixed_methods = [
            m
            for s in study.web.scripts
            for m in s.methods
            if m.category is Category.MIXED
        ]
        assert mixed_methods
