"""Cross-module property tests: hypothesis-built mini-webs through the
whole measurement pipeline."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.browser.engine import BrowserEngine
from repro.core.classifier import ResourceClass
from repro.core.hierarchy import sift_requests
from repro.crawler.storage import RequestDatabase
from repro.labeling.labeler import RequestLabeler
from repro.webmodel.resources import (
    Category,
    Frame,
    Invocation,
    MethodSpec,
    PlannedRequest,
    ScriptSpec,
)
from repro.webmodel.website import Website

SITE = "https://www.prop.example/"

# Strategy: a "method blueprint" is (name_index, [(host_index, tracking)]).
_method_blueprints = st.lists(
    st.tuples(
        st.integers(0, 4),  # method name index
        st.lists(
            st.tuples(st.integers(0, 3), st.booleans()),  # (host, tracking)
            min_size=1,
            max_size=6,
        ),
    ),
    min_size=1,
    max_size=5,
)

_HOSTS = ("i0.wp.com", "cdn.gstatic.com", "api.google.com", "static.w.org")
_NAMES = ("alpha", "beta", "gamma", "delta", "epsilon")


def _build_site(blueprints) -> Website:
    script = ScriptSpec(
        url="https://cdn.example/prop.js",
        category=Category.MIXED,
        sites=[SITE],
    )
    counter = 0
    methods: dict[str, MethodSpec] = {}
    for name_index, requests in blueprints:
        name = _NAMES[name_index]
        method = methods.get(name)
        if method is None:
            method = MethodSpec(name=name, category=Category.MIXED)
            methods[name] = method
            script.methods.append(method)
        for host_index, tracking in requests:
            counter += 1
            host = _HOSTS[host_index]
            path = f"/pixel/{counter}.gif" if tracking else f"/img/logo-{counter}.png"
            method.invocations.append(
                Invocation(
                    site=SITE,
                    requests=[
                        PlannedRequest(
                            url=f"https://{host}{path}",
                            tracking=tracking,
                            resource_type="image",
                        )
                    ],
                    caller_chain=(Frame(f"{SITE}#inline-0", "main"),),
                )
            )
    return Website(url=SITE, rank=1, scripts=[script])


class TestPipelineProperties:
    @given(blueprints=_method_blueprints)
    @settings(max_examples=60, deadline=None)
    def test_label_counts_match_intent(self, blueprints):
        site = _build_site(blueprints)
        page = BrowserEngine().load(site)
        labeled = RequestLabeler().label_crawl(
            RequestDatabase.from_events(page.requests)
        )
        planned_tracking = sum(
            tracking for _, reqs in blueprints for _, tracking in reqs
        )
        planned_total = sum(len(reqs) for _, reqs in blueprints)
        assert labeled.tracking_count == planned_tracking
        assert len(labeled.requests) == planned_total

    @given(blueprints=_method_blueprints)
    @settings(max_examples=60, deadline=None)
    def test_sift_partitions_requests_at_every_level(self, blueprints):
        site = _build_site(blueprints)
        page = BrowserEngine().load(site)
        labeled = RequestLabeler().label_crawl(
            RequestDatabase.from_events(page.requests)
        )
        report = sift_requests(labeled.requests)
        previous_mixed = len(labeled.requests)
        for level in report.levels:
            total = level.request_count()
            assert total == previous_mixed
            parts = sum(
                level.request_count(c)
                for c in (
                    ResourceClass.TRACKING,
                    ResourceClass.FUNCTIONAL,
                    ResourceClass.MIXED,
                )
            )
            assert parts == total
            previous_mixed = level.request_count(ResourceClass.MIXED)

    @given(blueprints=_method_blueprints)
    @settings(max_examples=40, deadline=None)
    def test_every_classified_ratio_is_in_band(self, blueprints):
        site = _build_site(blueprints)
        page = BrowserEngine().load(site)
        labeled = RequestLabeler().label_crawl(
            RequestDatabase.from_events(page.requests)
        )
        report = sift_requests(labeled.requests)
        for level in report.levels:
            for resource in level.resources.values():
                ratio = resource.ratio
                if resource.resource_class is ResourceClass.TRACKING:
                    assert ratio >= 2.0
                elif resource.resource_class is ResourceClass.FUNCTIONAL:
                    assert ratio <= -2.0
                else:
                    assert -2.0 < ratio < 2.0 or math.isnan(ratio) is False

    @given(blueprints=_method_blueprints)
    @settings(max_examples=30, deadline=None)
    def test_storage_round_trip_preserves_sift(self, blueprints, tmp_path_factory):
        site = _build_site(blueprints)
        page = BrowserEngine().load(site)
        database = RequestDatabase.from_events(page.requests)
        path = tmp_path_factory.mktemp("prop") / "crawl.jsonl"
        database.to_jsonl(path)
        reloaded = RequestDatabase.from_jsonl(path)
        labeler = RequestLabeler()
        a = sift_requests(labeler.label_crawl(database).requests)
        b = sift_requests(labeler.label_crawl(reloaded).requests)
        assert a.summary() == b.summary()

    @given(blueprints=_method_blueprints, threshold=st.floats(0.5, 3.5))
    @settings(max_examples=40, deadline=None)
    def test_separation_factor_decreases_with_threshold(
        self, blueprints, threshold
    ):
        """A wider mixed band can only push requests downward (less pure)."""
        site = _build_site(blueprints)
        page = BrowserEngine().load(site)
        labeled = RequestLabeler().label_crawl(
            RequestDatabase.from_events(page.requests)
        )
        tight = sift_requests(labeled.requests, threshold=threshold)
        loose = sift_requests(labeled.requests, threshold=threshold + 0.5)
        for tight_level, loose_level in zip(tight.levels, loose.levels):
            assert (
                loose_level.separation_factor
                <= tight_level.separation_factor + 1e-12
            )
