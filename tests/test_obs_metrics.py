"""Metrics registry: instruments, Prometheus exposition, shared board.

The exposition tests validate against the Prometheus text format rules
(one sample per line, ``# TYPE`` before samples, ``le`` buckets
cumulative and ending at ``+Inf``) rather than just substring-matching,
because a scraper is the real consumer.
"""

from __future__ import annotations

import multiprocessing
import re

import pytest

from repro.obs.metrics import (
    PROMETHEUS_CONTENT_TYPE,
    LatencyWindow,
    MetricsRegistry,
    SharedBoard,
    nearest_rank,
    prometheus_from_dict,
    wants_prometheus,
)

SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?[0-9.e+-]+|[0-9.]+)$"
)


def assert_valid_exposition(text: str) -> dict[str, str]:
    """Parse Prometheus text exposition; returns {metric line: value}."""
    samples: dict[str, str] = {}
    typed: set[str] = set()
    assert text.endswith("\n")
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            parts = line.split()
            assert parts[3] in ("counter", "gauge", "histogram")
            typed.add(parts[2])
            continue
        if line.startswith("#") or not line:
            continue
        assert SAMPLE_LINE.match(line), f"bad sample line: {line!r}"
        name, value = line.rsplit(" ", 1)
        samples[name] = value
        base = name.split("{")[0]
        for suffix in ("_bucket", "_sum", "_count"):
            base = base.removesuffix(suffix)
        assert any(base.startswith(t.removesuffix("_bucket")) for t in typed | {base}), name
    return samples


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("requests") is registry.counter("requests")
        registry.counter("requests").inc(3)
        assert registry.as_dict()["counters"]["requests"] == 3

    def test_name_collisions_across_kinds_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="different kind"):
            registry.gauge("x")

    def test_callback_gauge_reads_live_state(self):
        state = {"alive": 3}
        registry = MetricsRegistry()
        gauge = registry.gauge("workers_alive", fn=lambda: state["alive"])
        state["alive"] = 1
        assert gauge.value == 1.0
        with pytest.raises(RuntimeError, match="callback-backed"):
            gauge.set(9)

    def test_histogram_buckets_are_cumulative_to_inf(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.005, 0.05, 5.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 4
        assert list(snap["buckets"].values()) == [2, 3, 3, 4]
        assert list(snap["buckets"])[-1] == "+Inf"

    def test_prometheus_text_is_valid_and_complete(self):
        registry = MetricsRegistry()
        registry.counter("decisions", "decisions served").inc(6)
        registry.gauge("revision").set(2)
        registry.histogram("decide_seconds", buckets=(0.1,)).observe(0.05)
        registry.latency("decide_latency").observe(0.002)
        text = registry.prometheus_text()
        samples = assert_valid_exposition(text)
        assert samples["trackersift_decisions"] == "6"
        assert samples["trackersift_revision"] == "2"
        assert samples['trackersift_decide_seconds_bucket{le="0.1"}'] == "1"
        assert samples["trackersift_decide_seconds_count"] == "1"
        assert "trackersift_decide_latency_observed" in samples
        assert "# HELP trackersift_decisions decisions served" in text


class TestLatencyWindow:
    def test_percentiles_and_batch_observe(self):
        window = LatencyWindow(size=100)
        window.observe_many(0.010, 9)
        window.observe(0.100)
        snap = window.snapshot()
        assert snap["observed"] == 10
        assert snap["p50_ms"] == pytest.approx(10.0)
        assert snap["p99_ms"] == pytest.approx(100.0)

    def test_drain_since_is_incremental(self):
        window = LatencyWindow(size=10)
        window.observe_many(0.001, 3)
        cursor, fresh = window.drain_since(0)
        assert cursor == 3 and len(fresh) == 3
        cursor, fresh = window.drain_since(cursor)
        assert fresh == []
        window.observe(0.002)
        cursor, fresh = window.drain_since(cursor)
        assert fresh == [0.002]

    def test_nearest_rank_bounds(self):
        assert nearest_rank([], 99) == 0.0
        assert nearest_rank([1.0], 50) == 1.0
        assert nearest_rank([1.0, 2.0, 3.0, 4.0], 50) == 2.0


class TestContentNegotiation:
    def test_query_param_wins(self):
        assert wants_prometheus("format=prometheus", "")
        assert wants_prometheus("a=b&format=prometheus", "application/json")
        assert not wants_prometheus("format=json", "")

    def test_accept_header(self):
        assert wants_prometheus("", "text/plain")
        assert wants_prometheus("", "text/plain; version=0.0.4")
        assert not wants_prometheus("", "application/json")
        assert not wants_prometheus("", "")

    def test_content_type_pinned(self):
        assert PROMETHEUS_CONTENT_TYPE.startswith("text/plain")


class TestPrometheusFromDict:
    def test_flattens_nested_numeric_leaves(self):
        payload = {
            "decisions": {"served": 6, "blocked": 2},
            "workers": [{"alive": True}, {"alive": False}],
            "revision": 3,
            "status": "serving",  # strings carry no numeric value
        }
        text = prometheus_from_dict(payload)
        samples = assert_valid_exposition(text)
        assert samples["trackersift_decisions_served"] == "6"
        assert samples["trackersift_workers_0_alive"] == "1"
        assert samples["trackersift_workers_1_alive"] == "0"
        assert samples["trackersift_revision"] == "3"
        assert not any("status" in name for name in samples)

    def test_sanitizes_awkward_keys(self):
        text = prometheus_from_dict({"p99-ms": 1.5})
        assert "trackersift_p99_ms 1.5" in text


class TestSharedBoard:
    FIELDS = ("cursor", "decisions", "errors")

    def _board(self, workers=2, ring=4, fleet=("spawned", "alive")):
        return SharedBoard.create(
            multiprocessing.get_context("fork"),
            self.FIELDS,
            workers,
            ring,
            fleet_fields=fleet,
        )

    def test_slots_are_independent(self):
        board = self._board()
        board.write_slot(0, {"decisions": 5})
        board.write_slot(1, {"decisions": 7, "errors": 1})
        assert board.read_slot(0)["decisions"] == 5.0
        assert board.read_slot(0)["errors"] == 0.0
        assert board.read_slot(1) == {"cursor": 0.0, "decisions": 7.0, "errors": 1.0}

    def test_sample_ring_wraps_and_bounds_valid_reads(self):
        board = self._board(ring=3)
        board.append_samples(0, [0.1, 0.2])
        assert board.read_samples(0) == pytest.approx([0.1, 0.2])
        board.append_samples(0, [0.3, 0.4])  # wraps: cursor 4, ring 3
        assert len(board.read_samples(0)) == 3
        assert board.read_slot(0)["cursor"] == 4.0

    def test_fleet_region_is_separate_from_slots(self):
        board = self._board()
        board.write_fleet({"spawned": 4, "alive": 3})
        board.write_slot(1, {"errors": 9})
        assert board.read_fleet() == {"spawned": 4.0, "alive": 3.0}

    def test_ring_requires_cursor_field(self):
        with pytest.raises(ValueError, match="cursor"):
            SharedBoard.create(
                multiprocessing.get_context("fork"), ("decisions",), 1, 4
            )

    def test_fleet_survives_fork(self):
        """A forked child sees the parent's fleet writes — the mechanism
        behind every worker's /healthz degrading when a sibling dies."""
        ctx = multiprocessing.get_context("fork")
        board = self._board()
        board.write_fleet({"spawned": 2, "alive": 2})

        def child(array, queue):
            view = SharedBoard(
                array, self.FIELDS, 2, 4, fleet_fields=("spawned", "alive")
            )
            queue.put(view.read_fleet())

        queue = ctx.Queue()
        process = ctx.Process(target=child, args=(board.array, queue))
        process.start()
        fleet = queue.get(timeout=10)
        process.join(timeout=10)
        assert fleet == {"spawned": 2.0, "alive": 2.0}
