"""Bootstrap confidence intervals."""

import pytest

from repro.analysis.confidence import (
    ConfidenceInterval,
    bootstrap_metric,
    bootstrap_separation_factors,
)


class TestBootstrapMetric:
    def test_interval_brackets_point(self, small_study):
        interval = bootstrap_metric(
            small_study.labeled.requests,
            lambda report: report.final_separation,
            name="final separation",
            replicates=40,
            seed=5,
        )
        assert interval.low <= interval.point <= interval.high
        assert interval.replicates == 40
        assert 0 < interval.width < 0.2

    def test_deterministic(self, small_study):
        a = bootstrap_metric(
            small_study.labeled.requests,
            lambda r: r.final_separation,
            replicates=20,
            seed=9,
        )
        b = bootstrap_metric(
            small_study.labeled.requests,
            lambda r: r.final_separation,
            replicates=20,
            seed=9,
        )
        assert (a.low, a.high) == (b.low, b.high)

    def test_seed_changes_interval(self, small_study):
        a = bootstrap_metric(
            small_study.labeled.requests,
            lambda r: r.final_separation,
            replicates=20,
            seed=1,
        )
        b = bootstrap_metric(
            small_study.labeled.requests,
            lambda r: r.final_separation,
            replicates=20,
            seed=2,
        )
        assert (a.low, a.high) != (b.low, b.high)

    def test_level_validation(self, small_study):
        with pytest.raises(ValueError):
            bootstrap_metric(
                small_study.labeled.requests,
                lambda r: r.final_separation,
                level=1.5,
            )

    def test_replicate_validation(self, small_study):
        with pytest.raises(ValueError):
            bootstrap_metric(
                small_study.labeled.requests,
                lambda r: r.final_separation,
                replicates=1,
            )

    def test_empty_requests_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_metric([], lambda r: 0.0)

    def test_wider_level_never_narrower(self, small_study):
        narrow = bootstrap_metric(
            small_study.labeled.requests,
            lambda r: r.final_separation,
            replicates=40,
            level=0.5,
            seed=3,
        )
        wide = bootstrap_metric(
            small_study.labeled.requests,
            lambda r: r.final_separation,
            replicates=40,
            level=0.99,
            seed=3,
        )
        assert wide.width >= narrow.width


class TestSeparationFactorIntervals:
    def test_all_levels_plus_cumulative(self, small_study):
        intervals = bootstrap_separation_factors(
            small_study.labeled.requests, replicates=25
        )
        assert len(intervals) == 5
        names = [i.metric for i in intervals]
        assert names[0] == "domain separation factor"
        assert names[-1] == "cumulative separation factor"

    def test_paper_values_inside_intervals(self, small_study):
        intervals = bootstrap_separation_factors(
            small_study.labeled.requests, replicates=40
        )
        paper = {
            "domain separation factor": 0.54,
            "hostname separation factor": 0.24,
            "script separation factor": 0.84,
            "method separation factor": 0.72,
            "cumulative separation factor": 0.98,
        }
        for interval in intervals:
            target = paper[interval.metric]
            # generously widened interval must cover the paper's value
            assert abs(interval.point - target) < 0.12, interval.metric


class TestIntervalObject:
    def test_contains(self):
        interval = ConfidenceInterval("x", 0.5, 0.4, 0.6, 0.95, 10)
        assert interval.contains(0.5)
        assert not interval.contains(0.7)
        assert interval.width == pytest.approx(0.2)
