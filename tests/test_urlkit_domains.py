"""Domain helpers: hostname extraction, same-site, third-party, matching."""

from repro.urlkit import (
    host_matches_domain,
    hostname,
    is_third_party,
    registrable_domain,
    same_site,
)


class TestHostname:
    def test_from_url(self):
        assert hostname("https://cdn.google.com/ads-1") == "cdn.google.com"

    def test_from_bare_host(self):
        assert hostname("CDN.Google.com") == "cdn.google.com"

    def test_from_scheme_relative(self):
        assert hostname("//stats.wp.com/x.js") == "stats.wp.com"


class TestRegistrableDomain:
    def test_from_url(self):
        assert registrable_domain("https://i0.wp.com/img.png") == "wp.com"

    def test_multi_label_suffix(self):
        assert registrable_domain("https://a.b.example.co.uk/") == "example.co.uk"

    def test_none_for_ip(self):
        assert registrable_domain("http://192.168.0.1/x") is None


class TestSameSite:
    def test_same_registrable_domain(self):
        assert same_site("https://i0.wp.com/a", "https://stats.wp.com/b")

    def test_different_domains(self):
        assert not same_site("https://wp.com/", "https://wordpress.com/")

    def test_ips_same_site_only_if_equal(self):
        assert same_site("http://10.0.0.1/", "http://10.0.0.1/x")
        assert not same_site("http://10.0.0.1/", "http://10.0.0.2/")


class TestThirdParty:
    def test_first_party_subdomain(self):
        assert not is_third_party(
            "https://cdn.shop.example/x.js", "https://www.shop.example/"
        )

    def test_third_party_tracker(self):
        assert is_third_party(
            "https://google-analytics.com/collect", "https://news.example/"
        )


class TestHostMatchesDomain:
    def test_exact(self):
        assert host_matches_domain("google.com", "google.com")

    def test_subdomain(self):
        assert host_matches_domain("cdn.google.com", "google.com")

    def test_suffix_but_not_label_boundary(self):
        assert not host_matches_domain("notgoogle.com", "google.com")

    def test_reverse_not_matching(self):
        assert not host_matches_domain("google.com", "cdn.google.com")

    def test_invalid_input_is_false(self):
        assert not host_matches_domain("", "google.com")
        assert not host_matches_domain("google.com", "")
