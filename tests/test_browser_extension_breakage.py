"""Capture extension and breakage grading."""

from repro.browser.breakage import (
    BreakageAnalyzer,
    BreakageLevel,
    assess_breakage,
    grade_breakage,
)
from repro.browser.devtools import RequestWillBeSent, ResponseReceived
from repro.browser.engine import BrowserEngine
from repro.browser.extension import CaptureStats, CrawlExtension
from repro.crawler.storage import RequestDatabase
from repro.webmodel.resources import Category
from repro.webmodel.website import Functionality, FunctionalityTier, Website

from tests.helpers import SITE, make_site


class TestExtension:
    def test_capture_counts(self):
        site, _ = make_site()
        page = BrowserEngine().load(site)
        db = RequestDatabase()
        extension = CrawlExtension(db)
        extension.capture_page(page)
        assert extension.stats.pages == 1
        assert extension.stats.requests_seen == len(page.requests)
        assert extension.stats.script_initiated == 2
        assert len(db) == len(page.requests)

    def test_drop_non_script_mode(self):
        site, _ = make_site()
        page = BrowserEngine().load(site)
        db = RequestDatabase()
        extension = CrawlExtension(db, keep_non_script=False)
        extension.capture_page(page)
        assert extension.stats.dropped_non_script > 0
        assert all(r.script_initiated for r in db.requests())

    def test_on_request_hook(self):
        site, _ = make_site()
        page = BrowserEngine().load(site)
        seen = []
        extension = CrawlExtension(RequestDatabase(), on_request=seen.append)
        extension.capture_page(page)
        assert len(seen) == len(page.requests)

    def test_default_stats(self):
        stats = CaptureStats()
        assert stats.pages == 0 and stats.requests_seen == 0


def site_with_features(core_dep: str | None, secondary_dep: str | None) -> Website:
    site = Website(url=SITE, rank=1)
    features = []
    if core_dep is not None:
        features.append(
            Functionality(
                name="menu",
                tier=FunctionalityTier.CORE,
                required_scripts=frozenset({core_dep}),
            )
        )
    if secondary_dep is not None:
        features.append(
            Functionality(
                name="media widgets",
                tier=FunctionalityTier.SECONDARY,
                required_scripts=frozenset({secondary_dep}),
            )
        )
    site.functionalities = features
    return site


class TestGrading:
    def test_major_when_core_breaks(self):
        site = site_with_features("https://a/x.js", "https://a/y.js")
        treatment = site.functionality_status(
            blocked_scripts=frozenset({"https://a/x.js"})
        )
        control = site.functionality_status()
        level, core, secondary = grade_breakage(control, treatment, site)
        assert level is BreakageLevel.MAJOR
        assert core == ("menu",)

    def test_minor_when_only_secondary_breaks(self):
        site = site_with_features("https://a/x.js", "https://a/y.js")
        treatment = site.functionality_status(
            blocked_scripts=frozenset({"https://a/y.js"})
        )
        level, _, secondary = grade_breakage(
            site.functionality_status(), treatment, site
        )
        assert level is BreakageLevel.MINOR
        assert secondary == ("media widgets",)

    def test_none_when_nothing_breaks(self):
        site = site_with_features("https://a/x.js", None)
        level, _, _ = grade_breakage(
            site.functionality_status(),
            site.functionality_status(blocked_scripts=frozenset({"https://a/unrelated.js"})),
            site,
        )
        assert level is BreakageLevel.NONE


class TestAssessBreakage:
    def test_blocking_mixed_script_reports_breakage(self):
        site, script = make_site()
        report = assess_breakage(site, frozenset({script.url}))
        assert report.level is BreakageLevel.MAJOR
        assert report.requests_removed == 2
        assert report.tracking_requests_removed == 1
        assert "images" in report.comment or report.comment == "images missing"

    def test_blocking_nothing_is_none(self):
        site, _ = make_site()
        report = assess_breakage(site, frozenset())
        assert report.level is BreakageLevel.NONE
        assert report.comment == "no visible functionality breakage"

    def test_page_did_not_load_comment(self):
        site = site_with_features("https://a/x.js", None)
        site.functionalities[0] = Functionality(
            name="page load",
            tier=FunctionalityTier.CORE,
            required_scripts=frozenset({"https://a/x.js"}),
        )
        report = assess_breakage(site, frozenset({"https://a/x.js"}))
        assert report.comment == "page did not load"

    def test_analyzer_summary(self):
        site, script = make_site()
        analyzer = BreakageAnalyzer()
        reports = analyzer.analyze(
            [(site, frozenset({script.url})), (site, frozenset())]
        )
        summary = analyzer.summary(reports)
        assert summary[BreakageLevel.MAJOR] == 1
        assert summary[BreakageLevel.NONE] == 1


class TestEventRoundTrips:
    def test_request_dict_round_trip(self):
        site, _ = make_site()
        page = BrowserEngine().load(site)
        for event in page.requests:
            assert RequestWillBeSent.from_dict(event.to_dict()) == event

    def test_response_dict_round_trip(self):
        site, _ = make_site()
        page = BrowserEngine().load(site)
        for event in page.responses:
            assert ResponseReceived.from_dict(event.to_dict()) == event
