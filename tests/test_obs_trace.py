"""Structured tracing: span nesting, adoption, summaries, engine spans.

The engine's observability contract has two halves:

1. The tracing primitives behave — nesting follows the context, worker
   exports re-parent without id aliasing, summaries attribute self time
   correctly, and disabled tracing costs a shared no-op.
2. The instrumented pipeline emits the expected span tree — every stage
   of a parallel run shows up, including the worker-side spans shipped
   back through :class:`~repro.core.parallel.ShardOutcome`, and the
   worker_*_seconds overhead notes agree with those spans.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import PipelineConfig, TrackerSiftPipeline
from repro.obs.trace import (
    Tracer,
    add_span,
    current_tracer,
    read_spans,
    render_summary,
    span,
    summarize_spans,
)


class TestTracer:
    def test_nesting_follows_context(self):
        tracer = Tracer()
        with tracer.activate():
            with span("outer") as outer:
                with span("inner") as inner:
                    pass
        assert inner.parent_id == outer.span_id
        assert not outer.parent_id  # the no-parent sentinel
        # Children complete first, so they append first.
        assert [r.name for r in tracer.records] == ["inner", "outer"]

    def test_span_without_tracer_is_shared_noop(self):
        assert current_tracer() is None
        first = span("anything", key=1)
        second = span("else")
        assert first is second  # the whole cost of disabled tracing
        with first:
            pass
        assert add_span("late", 0.5) is None

    def test_add_records_synthetic_duration(self):
        tracer = Tracer()
        with tracer.activate():
            with span("parent") as parent:
                record = tracer.add("accumulated", 1.25, shard=3)
        assert record.duration == 1.25
        assert record.parent_id == parent.span_id
        assert record.attrs == {"shard": 3}

    def test_adopt_remaps_ids_and_reparents_roots(self):
        worker = Tracer()
        with worker.activate():
            with worker.span("worker.compute"):
                worker.add("shard.crawl", 0.1)
        exported = worker.export()

        parent = Tracer()
        with parent.activate():
            with parent.span("fanout") as fanout:
                assert parent.adopt(exported) == 2
                # Adopting the same export twice must never alias ids.
                assert parent.adopt(exported) == 2
        by_name: dict[str, list] = {}
        for record in parent.records:
            by_name.setdefault(record.name, []).append(record)
        assert len(by_name["worker.compute"]) == 2
        assert len({r.span_id for r in parent.records}) == len(parent.records)
        for compute in by_name["worker.compute"]:
            assert compute.parent_id == fanout.span_id
        compute_ids = {r.span_id for r in by_name["worker.compute"]}
        for crawl in by_name["shard.crawl"]:
            assert crawl.parent_id in compute_ids

    def test_exception_still_closes_and_records_span(self):
        tracer = Tracer()
        with tracer.activate():
            with pytest.raises(RuntimeError):
                with span("doomed"):
                    raise RuntimeError("boom")
        assert [r.name for r in tracer.records] == ["doomed"]

    def test_jsonl_roundtrip(self, tmp_path):
        tracer = Tracer()
        with tracer.activate():
            with span("a", sites=2):
                tracer.add("b", 0.5)
        path = tracer.write_jsonl(tmp_path / "spans.jsonl")
        records = read_spans(path)
        assert [r["name"] for r in records] == ["b", "a"]
        assert records[1]["attrs"] == {"sites": 2}


class TestSummaries:
    def _record(self, span_id, parent_id, name, duration):
        return {
            "span_id": span_id,
            "parent_id": parent_id,
            "name": name,
            "start": 0.0,
            "duration": duration,
            "attrs": {},
        }

    def test_self_time_subtracts_children(self):
        records = [
            self._record(1, 0, "run", 10.0),
            self._record(2, 1, "crawl", 6.0),
            self._record(3, 1, "sift", 3.0),
        ]
        summary = summarize_spans(records)
        assert summary["wall_seconds"] == 10.0
        assert summary["stages"]["run"]["self_seconds"] == pytest.approx(1.0)
        assert summary["stages"]["crawl"]["total_seconds"] == 6.0

    def test_critical_path_picks_heaviest_chain(self):
        records = [
            self._record(1, 0, "run", 10.0),
            self._record(2, 1, "light", 1.0),
            self._record(3, 1, "heavy", 6.0),
            self._record(4, 3, "leaf", 5.0),
        ]
        summary = summarize_spans(records)
        names = [hop["name"] for hop in summary["critical_path"]]
        assert names == ["run", "heavy", "leaf"]
        assert summary["critical_path_seconds"] == pytest.approx(21.0)
        rendered = render_summary(summary)
        assert "critical path" in rendered
        assert "heavy" in rendered

    def test_read_spans_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"name": "ok"}\nnot json\n', encoding="utf-8")
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            read_spans(path)
        path.write_text('{"nameless": true}\n', encoding="utf-8")
        with pytest.raises(ValueError, match="need at least a 'name'"):
            read_spans(path)


class TestPipelineSpans:
    def _traced_run(self, workers: int) -> Tracer:
        tracer = Tracer()
        config = PipelineConfig(sites=40, seed=9, cluster_nodes=4)
        with tracer.activate():
            TrackerSiftPipeline(config, workers=workers).run()
        return tracer

    def test_sequential_run_emits_stage_tree(self):
        tracer = self._traced_run(workers=1)
        names = {record.name for record in tracer.records}
        assert {"web.generate", "shard", "shard.crawl", "shard.label", "sift"} <= names
        shard_spans = [r for r in tracer.records if r.name == "shard"]
        assert len(shard_spans) == 4

    def test_parallel_run_adopts_worker_spans(self):
        tracer = self._traced_run(workers=2)
        by_name: dict[str, list] = {}
        for record in tracer.records:
            by_name.setdefault(record.name, []).append(record)
        # Worker-side spans came back through ShardOutcome and were
        # re-parented under the fanout span.
        assert len(by_name["worker.compute"]) == 4
        assert len(by_name["worker.transfer"]) == 4
        assert "fanout" in by_name and "fanout.materialize" in by_name
        fanout_id = by_name["fanout"][0].span_id
        for compute in by_name["worker.compute"]:
            assert compute.parent_id == fanout_id
        # The in-shard tree shipped too (parent was tracing).
        assert len(by_name["shard"]) == 4

    def test_overhead_notes_derive_from_spans(self):
        tracer = Tracer()
        config = PipelineConfig(sites=40, seed=9, cluster_nodes=4)
        with tracer.activate():
            result = TrackerSiftPipeline(config, workers=2).run()
        notes = result.notes
        spans_total = sum(
            r.duration
            for r in tracer.records
            if r.name in ("worker.startup", "worker.transfer", "worker.compute")
        )
        notes_total = (
            notes["worker_startup_seconds"]
            + notes["worker_transfer_seconds"]
            + notes["worker_compute_seconds"]
        )
        assert notes_total == pytest.approx(spans_total)
