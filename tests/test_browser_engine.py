"""Page-load engine: event emission, blocking policies, coverage gaps."""

from repro.browser.engine import BlockingPolicy, BrowserEngine
from repro.webmodel.resources import (
    Category,
    Frame,
    Invocation,
    MethodSpec,
    PlannedRequest,
    ScriptKind,
    ScriptSpec,
)
from repro.webmodel.website import Functionality, FunctionalityTier, Website

from tests.helpers import SITE, make_site


class TestLoad:
    def test_emits_document_and_script_fetches_without_stacks(self):
        site, script = make_site()
        page = BrowserEngine().load(site)
        parser_initiated = [r for r in page.requests if not r.script_initiated]
        urls = {r.url for r in parser_initiated}
        assert SITE in urls
        assert script.url in urls

    def test_emits_script_initiated_with_stacks(self):
        site, _ = make_site()
        page = BrowserEngine().load(site)
        scripted = page.script_initiated_requests
        assert len(scripted) == 2
        for event in scripted:
            assert event.call_stack is not None
            assert event.top_level_url == SITE

    def test_async_chain_becomes_parent_stack(self):
        site, _ = make_site()
        page = BrowserEngine().load(site)
        image = next(r for r in page.script_initiated_requests if r.resource_type == "image")
        assert image.call_stack.parent is not None
        flattened = [f.url for f in image.call_stack.flattened()]
        assert flattened[-1] == f"{SITE}loader.js"

    def test_responses_paired(self):
        site, _ = make_site()
        page = BrowserEngine().load(site)
        request_ids = {r.request_id for r in page.requests}
        response_ids = {r.request_id for r in page.responses}
        assert request_ids == response_ids

    def test_timestamps_advance_between_loads(self):
        site, _ = make_site()
        engine = BrowserEngine()
        first = engine.load(site)
        second = engine.load(site)
        assert min(r.timestamp for r in second.requests) > max(
            r.timestamp for r in first.requests
        )

    def test_mime_types(self):
        site, _ = make_site()
        page = BrowserEngine().load(site)
        mimes = {r.url: r.mime_type for r in page.responses}
        assert mimes[SITE] == "text/html"


class TestBlockingPolicy:
    def test_blocked_script_suppresses_requests_and_breaks_feature(self):
        site, script = make_site()
        policy = BlockingPolicy(blocked_scripts=frozenset({script.url}))
        page = BrowserEngine().load(site, policy=policy)
        assert page.script_initiated_requests == []
        assert page.functionality == {"images": False}
        assert ("https://cdn.example/app.js", "sendBeacon") in page.blocked_invocations

    def test_removed_method_suppresses_only_that_method(self):
        site, script = make_site()
        policy = BlockingPolicy(
            removed_methods=frozenset({(script.url, "sendBeacon")})
        )
        page = BrowserEngine().load(site, policy=policy)
        urls = [r.url for r in page.script_initiated_requests]
        assert urls == ["https://cdn.example/img/logo-1.png"]
        assert page.functionality == {"images": True}

    def test_guard_blocks_matching_invocations(self):
        site, script = make_site()
        policy = BlockingPolicy(
            guards=(
                (
                    script.url,
                    "sendBeacon",
                    lambda s, m, args: args.get("event") == "imp",
                ),
            )
        )
        page = BrowserEngine().load(site, policy=policy)
        urls = [r.url for r in page.script_initiated_requests]
        assert urls == ["https://cdn.example/img/logo-1.png"]

    def test_none_policy_blocks_nothing(self):
        policy = BlockingPolicy.none()
        assert not policy.blocks_invocation("any", "method", {})


class TestCoverage:
    def test_full_coverage_observes_everything(self):
        site, _ = make_site(coverage=1.0)
        page = BrowserEngine().load(site)
        assert len(page.script_initiated_requests) == 2

    def test_coverage_gap_is_deterministic_per_seed(self):
        site, _ = make_site(coverage=0.5)
        a = len(BrowserEngine(seed=3).load(site).script_initiated_requests)
        b = len(BrowserEngine(seed=3).load(site).script_initiated_requests)
        assert a == b

    def test_some_seed_misses_low_coverage_method(self):
        site, _ = make_site(coverage=0.05)
        observed = [
            len(BrowserEngine(seed=s).load(site).script_initiated_requests)
            for s in range(20)
        ]
        assert min(observed) == 1  # the render() path goes unobserved
        assert max(observed) <= 2
